#pragma once

// The Collect Agent: DCDB's data broker. It subscribes to the MQTT broker,
// maintains its own sensor caches over the full system's sensor space, and
// forwards all readings to the Storage Backend. Wintermute operators
// instantiated in a Collect Agent see every sensor in the system, with
// cache-first/storage-fallback reads through the Query Engine.

#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "mqtt/broker.h"
#include "persist/wal.h"
#include "sensors/sensor_cache.h"
#include "storage/storage_backend.h"

namespace wm::collectagent {

struct CollectAgentConfig {
    std::string name = "collectagent";
    /// MQTT subscription filter; "#" receives everything.
    std::string filter = "#";
    /// When non-empty, the agent subscribes to these filters *instead of*
    /// `filter` — sharded deployments give each agent its owned topic
    /// subtrees (e.g. "/rack0/#", "/rack2/#"). The filters of the agents
    /// sharing a broker must be disjoint so per-topic sequence dedup stays
    /// exactly-once: a topic must be ingested by exactly one agent.
    std::vector<std::string> filters;
    common::TimestampNs cache_window_ns = 180 * common::kNsPerSec;
    /// Forward received readings to the storage backend.
    bool forward_to_storage = true;
    /// Readings held in quarantine after storage refuses them, awaiting
    /// retryQuarantined(); beyond this the oldest quarantined reading is
    /// dropped (and counted). 0 disables quarantine entirely.
    std::size_t quarantine_max = 4096;
    /// Journal for the quarantine: quarantined readings are logged here and
    /// replayed into the quarantine on construction, so a crash between
    /// refusal and drain loses nothing. Empty disables journaling.
    std::string quarantine_wal_path;
};

class CollectAgent {
  public:
    /// The agent subscribes on `broker` and writes to `storage` (unsharded
    /// or sharded, behind the Storage interface); both must outlive the
    /// agent.
    CollectAgent(CollectAgentConfig config, mqtt::Broker& broker,
                 storage::Storage& storage);
    ~CollectAgent();

    CollectAgent(const CollectAgent&) = delete;
    CollectAgent& operator=(const CollectAgent&) = delete;

    /// Subscribes to the broker (one subscription per configured filter);
    /// idempotent.
    void start();
    /// Unsubscribes; already-delivered messages are fully processed.
    void stop();
    bool running() const { return running_.load(std::memory_order_acquire); }

    sensors::CacheStore& cacheStore() { return cache_store_; }
    storage::Storage& storage() { return storage_; }
    const std::string& name() const { return config_.name; }

    std::uint64_t messagesReceived() const { return messages_received_.load(); }
    std::uint64_t readingsStored() const { return readings_stored_.load(); }

    // Graceful degradation (docs/RESILIENCE.md): a storage failure
    // quarantines the refused readings and bumps a per-sensor error stat
    // instead of losing the whole batch. Caches are always updated, so the
    // Query Engine keeps serving recent data during a storage outage.

    /// Re-attempts storage insertion of quarantined readings (oldest
    /// first); returns how many drained. Call periodically, or after the
    /// storage backend recovers.
    std::size_t retryQuarantined();

    std::size_t quarantinedReadings() const;
    /// Storage insert failures recorded against one sensor topic.
    std::uint64_t storageErrors(const std::string& topic) const;
    std::uint64_t storageErrorsTotal() const { return storage_errors_total_.load(); }
    /// Messages lost to the injected "collectagent.ingest" fault point.
    std::uint64_t messagesDropped() const { return messages_dropped_.load(); }
    /// Quarantined readings evicted because the quarantine overflowed.
    std::uint64_t quarantineOverflow() const { return quarantine_overflow_.load(); }
    /// Sequenced messages dropped as duplicates of already-seen publishes
    /// (at-least-once replay after a restart; docs/RESILIENCE.md).
    std::uint64_t dedupDrops() const { return dedup_drops_.load(); }
    /// Quarantined readings recovered from the quarantine journal at
    /// construction.
    std::uint64_t quarantineWalReplayed() const { return quarantine_wal_replayed_.load(); }

  private:
    void onMessage(const mqtt::Message& message);
    void quarantine(const std::string& topic, const sensors::ReadingVector& readings);

    /// Rewrites the quarantine journal to match the in-memory quarantine
    /// (after a drain or an overflow made appended history stale).
    void rewriteQuarantineWal() WM_REQUIRES(quarantine_mutex_);

    CollectAgentConfig config_;
    mqtt::Broker& broker_;
    storage::Storage& storage_;
    sensors::CacheStore cache_store_;
    /// Serialises start()/stop() so concurrent lifecycle calls cannot leak a
    /// subscription. Holding it across subscribe/unsubscribe is legal:
    /// kCollectAgent ranks below kBroker.
    common::Mutex lifecycle_mutex_{"CollectAgent", common::LockRank::kCollectAgent};
    std::vector<mqtt::SubscriptionId> subscriptions_ WM_GUARDED_BY(lifecycle_mutex_);
    // Atomic: running() reads it without the lock.
    std::atomic<bool> running_{false};
    std::atomic<std::uint64_t> messages_received_{0};
    std::atomic<std::uint64_t> readings_stored_{0};

    struct QuarantinedReading {
        std::string topic;
        sensors::Reading reading;
    };
    mutable common::Mutex quarantine_mutex_{
        "CollectAgent.quarantine", common::LockRank::kCollectAgentQuarantine};
    std::deque<QuarantinedReading> quarantine_ WM_GUARDED_BY(quarantine_mutex_);
    std::map<std::string, std::uint64_t> storage_errors_ WM_GUARDED_BY(quarantine_mutex_);
    std::atomic<std::uint64_t> storage_errors_total_{0};
    std::atomic<std::uint64_t> messages_dropped_{0};
    std::atomic<std::uint64_t> quarantine_overflow_{0};

    /// Highest sequence seen per topic; deliberately kept across
    /// stop()/start() so a supervisor restart of the agent still rejects
    /// replayed duplicates.
    std::map<std::string, std::uint64_t> last_sequence_ WM_GUARDED_BY(quarantine_mutex_);
    std::atomic<std::uint64_t> dedup_drops_{0};

    std::unique_ptr<persist::WalWriter> quarantine_wal_ WM_GUARDED_BY(quarantine_mutex_);
    std::atomic<std::uint64_t> quarantine_wal_replayed_{0};
};

}  // namespace wm::collectagent
