#include "pusher/pusher.h"

#include "common/logging.h"

namespace wm::pusher {

Pusher::Pusher(PusherConfig config, mqtt::Broker* broker)
    : config_(std::move(config)),
      broker_(broker),
      cache_store_(config_.cache_window_ns),
      pool_(config_.worker_threads),
      scheduler_(pool_) {}

Pusher::~Pusher() {
    stop();
    scheduler_.stop();
}

void Pusher::addGroup(SensorGroupPtr group) {
    // Create cache entries up front so the Query Engine can discover the
    // sensor space before the first sample arrives.
    for (const auto& metadata : group->sensors()) {
        cache_store_.getOrCreate(metadata);
    }
    SensorGroup* raw = group.get();
    common::MutexLock lock(groups_mutex_);
    groups_.push_back(std::move(group));
    if (running_.load()) {
        task_ids_.push_back(scheduler_.schedulePeriodic(
            raw->intervalNs(), [this, raw](common::TimestampNs t) { tickGroup(*raw, t); }));
    }
}

void Pusher::start() {
    if (running_.exchange(true)) return;
    common::MutexLock lock(groups_mutex_);
    for (const auto& group : groups_) {
        SensorGroup* raw = group.get();
        task_ids_.push_back(scheduler_.schedulePeriodic(
            raw->intervalNs(), [this, raw](common::TimestampNs t) { tickGroup(*raw, t); }));
    }
    WM_LOG(kInfo, "pusher") << config_.name << ": started " << groups_.size()
                            << " sensor groups";
}

void Pusher::stop() {
    if (!running_.exchange(false)) return;
    common::MutexLock lock(groups_mutex_);
    for (common::TaskId id : task_ids_) scheduler_.cancel(id);
    task_ids_.clear();
    pool_.waitIdle();
    WM_LOG(kInfo, "pusher") << config_.name << ": stopped";
}

void Pusher::sampleOnce(common::TimestampNs t) {
    std::vector<SensorGroup*> groups;
    {
        common::MutexLock lock(groups_mutex_);
        groups.reserve(groups_.size());
        for (const auto& group : groups_) groups.push_back(group.get());
    }
    for (SensorGroup* group : groups) tickGroup(*group, t);
}

void Pusher::tickGroup(SensorGroup& group, common::TimestampNs t) {
    const std::vector<SampledReading> sampled = group.read(t);
    for (const auto& item : sampled) {
        sensors::SensorCache* cache = cache_store_.find(item.topic);
        if (cache == nullptr) cache = &cache_store_.getOrCreate(item.topic);
        cache->store(item.reading);
    }
    readings_sampled_.fetch_add(sampled.size(), std::memory_order_relaxed);
    if (broker_ != nullptr) {
        for (const auto& item : sampled) {
            if (!cache_store_.publishAllowed(item.topic)) continue;
            broker_->publish({item.topic, {item.reading}});
            messages_published_.fetch_add(1, std::memory_order_relaxed);
        }
    }
}

std::size_t Pusher::groupCount() const {
    common::MutexLock lock(groups_mutex_);
    return groups_.size();
}

}  // namespace wm::pusher
