#include "pusher/pusher.h"

#include "common/fault.h"
#include "common/logging.h"

namespace wm::pusher {

Pusher::Pusher(PusherConfig config, mqtt::Broker* broker)
    : config_(std::move(config)),
      broker_(broker),
      cache_store_(config_.cache_window_ns),
      pool_(config_.worker_threads),
      scheduler_(pool_),
      retry_rng_(config_.retry_seed),
      backoff_(config_.publish_retry, &retry_rng_),
      sequence_epoch_(static_cast<std::uint64_t>(common::nowNs())) {}

Pusher::~Pusher() {
    stop();
    scheduler_.stop();
}

void Pusher::addGroup(SensorGroupPtr group) {
    // Create cache entries up front so the Query Engine can discover the
    // sensor space before the first sample arrives.
    for (const auto& metadata : group->sensors()) {
        cache_store_.getOrCreate(metadata);
    }
    SensorGroup* raw = group.get();
    common::MutexLock lock(groups_mutex_);
    groups_.push_back(std::move(group));
    if (running_.load()) {
        task_ids_.push_back(scheduler_.schedulePeriodic(
            raw->intervalNs(), [this, raw](common::TimestampNs t) { tickGroup(*raw, t); }));
    }
}

void Pusher::start() {
    if (running_.exchange(true)) return;
    common::MutexLock lock(groups_mutex_);
    for (const auto& group : groups_) {
        SensorGroup* raw = group.get();
        task_ids_.push_back(scheduler_.schedulePeriodic(
            raw->intervalNs(), [this, raw](common::TimestampNs t) { tickGroup(*raw, t); }));
    }
    WM_LOG(kInfo, "pusher") << config_.name << ": started " << groups_.size()
                            << " sensor groups";
}

void Pusher::stop() {
    if (!running_.exchange(false)) return;
    common::MutexLock lock(groups_mutex_);
    for (common::TaskId id : task_ids_) scheduler_.cancel(id);
    task_ids_.clear();
    pool_.waitIdle();
    WM_LOG(kInfo, "pusher") << config_.name << ": stopped";
}

void Pusher::sampleOnce(common::TimestampNs t) {
    std::vector<SensorGroup*> groups;
    {
        common::MutexLock lock(groups_mutex_);
        groups.reserve(groups_.size());
        for (const auto& group : groups_) groups.push_back(group.get());
    }
    for (SensorGroup* group : groups) tickGroup(*group, t);
}

void Pusher::tickGroup(SensorGroup& group, common::TimestampNs t) {
    if (const auto fault = common::fault::check("pusher.sample")) {
        // A crashed or hung reader: this group contributes nothing this tick.
        if (fault.action != common::fault::Action::kDelay) return;
        common::fault::applyDelay(fault.delay_ns);
    }
    const std::vector<SampledReading> sampled = group.read(t);
    for (const auto& item : sampled) {
        // Id-keyed hot path: two atomic loads, no hash, no store lock.
        sensors::SensorCache* cache = item.id != sensors::kInvalidTopicId
                                          ? cache_store_.find(item.id)
                                          : cache_store_.find(item.topic);
        if (cache == nullptr) cache = &cache_store_.getOrCreate(item.topic);
        cache->store(item.reading);
    }
    readings_sampled_.fetch_add(sampled.size(), std::memory_order_relaxed);
    if (broker_ == nullptr) return;

    common::MutexLock lock(buffer_mutex_);
    // Buffered readings go first so the per-topic time order the Collect
    // Agent sees is preserved; new readings queue behind a non-empty buffer.
    bool broker_accepting = flushBuffered(t);
    for (const auto& item : sampled) {
        // The publish flag lives in the interned-topic entry; the id path
        // reads it lock-free (no per-reading hash + CacheStore lock).
        const bool allowed = item.id != sensors::kInvalidTopicId
                                 ? cache_store_.publishAllowed(item.id)
                                 : cache_store_.publishAllowed(item.topic);
        if (!allowed) continue;
        mqtt::Message message{item.topic, {item.reading}};
        // Stamped once, here: a buffered or replayed copy of this message
        // keeps its sequence, so downstream dedup recognises it.
        message.sequence = sequence_epoch_ + ++topic_counters_[item.topic];
        if (broker_accepting && broker_->publish(message) >= 0) {
            messages_published_.fetch_add(1, std::memory_order_relaxed);
            recordPublished(message);
            continue;
        }
        if (broker_accepting) {
            // First refusal this tick: open the backoff window.
            next_retry_ns_ = t + backoff_.nextDelayNs();
            broker_accepting = false;
        }
        bufferReading(std::move(message));
    }
}

bool Pusher::flushBuffered(common::TimestampNs t) {
    if (buffer_.empty()) return true;
    if (t < next_retry_ns_) return false;
    publish_retries_.fetch_add(1, std::memory_order_relaxed);
    while (!buffer_.empty()) {
        if (broker_->publish(buffer_.front()) < 0) {
            // Still down: back off further (bounded, jittered).
            next_retry_ns_ = t + backoff_.nextDelayNs();
            return false;
        }
        messages_published_.fetch_add(1, std::memory_order_relaxed);
        recordPublished(buffer_.front());
        buffer_.pop_front();
    }
    backoff_.reset();
    next_retry_ns_ = 0;
    WM_LOG(kInfo, "pusher") << config_.name << ": broker recovered, buffer drained";
    return true;
}

void Pusher::bufferReading(mqtt::Message message) {
    if (config_.publish_buffer_max == 0) {
        readings_dropped_.fetch_add(1, std::memory_order_relaxed);
        return;
    }
    while (buffer_.size() >= config_.publish_buffer_max) {
        buffer_.pop_front();  // oldest-first drop
        readings_dropped_.fetch_add(1, std::memory_order_relaxed);
    }
    buffer_.push_back(std::move(message));
}

void Pusher::recordPublished(const mqtt::Message& message) {
    if (config_.replay_ring_max == 0) return;
    while (replay_ring_.size() >= config_.replay_ring_max) replay_ring_.pop_front();
    replay_ring_.push_back(message);
}

std::size_t Pusher::replayRecent() {
    if (broker_ == nullptr) return 0;
    common::MutexLock lock(buffer_mutex_);
    std::size_t replayed = 0;
    for (const auto& message : replay_ring_) {
        // A refusal means the broker is down again: stop HERE, keeping ring
        // order intact. Skipping past a refusal to deliver a later message
        // would let the consumer's cumulative per-topic watermark cover the
        // skipped one, turning every future redelivery into a dedup drop —
        // a permanent loss dressed up as a duplicate. The undelivered tail
        // stays in the ring for the next replay.
        if (broker_->publish(message) < 0) break;
        ++replayed;
    }
    messages_replayed_.fetch_add(replayed, std::memory_order_relaxed);
    if (replayed > 0) {
        WM_LOG(kInfo, "pusher") << config_.name << ": replayed " << replayed
                                << " recent message(s) for consumer recovery";
    }
    return replayed;
}

std::size_t Pusher::bufferedReadings() const {
    common::MutexLock lock(buffer_mutex_);
    return buffer_.size();
}

std::size_t Pusher::groupCount() const {
    common::MutexLock lock(groups_mutex_);
    return groups_.size();
}

}  // namespace wm::pusher
