#pragma once

// Adapter between the simulator's NodeModel and the sampling plugins: the
// plugins ask for "the node state at timestamp t" and the adapter advances
// the physics model lazily to that time. Several sensor groups (perfsim,
// sysfssim, procfssim) share one SimulatedNode, just as real plugins share
// one physical node.

#include <memory>

#include "common/mutex.h"
#include "common/time_utils.h"
#include "simulator/node_model.h"

namespace wm::pusher {

class SimulatedNode {
  public:
    SimulatedNode(std::size_t num_cores, std::uint64_t seed,
                  simulator::NodeCharacteristics characteristics = {})
        : model_(num_cores, seed, characteristics) {}

    /// Advances the model to `t` (no-op if t is in the past) and returns a
    /// snapshot of the node state. Thread-safe.
    simulator::NodeSample sampleAt(common::TimestampNs t) {
        common::MutexLock lock(mutex_);
        if (last_time_ == 0) {
            last_time_ = t;
            // Warm up so counters are non-zero on the first sample.
            model_.advance(0.1);
        } else if (t > last_time_) {
            // Integrate in bounded slices so thermal dynamics stay accurate
            // across long gaps (e.g. coarse sampling intervals).
            double dt = static_cast<double>(t - last_time_) /
                        static_cast<double>(common::kNsPerSec);
            while (dt > 0.0) {
                const double slice = std::min(dt, 5.0);
                model_.advance(slice);
                dt -= slice;
            }
            last_time_ = t;
        }
        return model_.sample();
    }

    void startApp(simulator::AppKind kind) {
        common::MutexLock lock(mutex_);
        model_.startApp(kind);
    }

    /// DVFS actuation entry point for feedback-loop operators.
    void setFrequencyScale(double scale) {
        common::MutexLock lock(mutex_);
        model_.setFrequencyScale(scale);
    }

    /// Anomaly-campaign entry point (src/scenario): the perturbation applies
    /// to all physics integrated after this call.
    void setPerturbation(const simulator::NodePerturbation& perturbation) {
        common::MutexLock lock(mutex_);
        model_.setPerturbation(perturbation);
    }

    simulator::NodePerturbation perturbation() const {
        common::MutexLock lock(mutex_);
        return model_.perturbation();
    }

    double frequencyScale() const {
        common::MutexLock lock(mutex_);
        return model_.frequencyScale();
    }

    simulator::AppKind currentApp() const {
        common::MutexLock lock(mutex_);
        return model_.currentApp();
    }

    std::size_t coreCount() const { return core_count_cached(); }

  private:
    std::size_t core_count_cached() const {
        common::MutexLock lock(mutex_);
        return model_.coreCount();
    }

    mutable common::Mutex mutex_{"SimulatedNode", common::LockRank::kSimNode};
    simulator::NodeModel model_ WM_GUARDED_BY(mutex_);
    common::TimestampNs last_time_ WM_GUARDED_BY(mutex_) = 0;
};

using SimulatedNodePtr = std::shared_ptr<SimulatedNode>;

}  // namespace wm::pusher
