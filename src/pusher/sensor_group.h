#pragma once

// Monitoring plugin interface of the Pusher. A plugin contributes one or
// more sensor groups; each group samples a set of sensors at a common
// interval. This mirrors DCDB's plugin architecture (perfevent, sysFS,
// ProcFS, OPA, ...) — here the hardware-facing plugins are backed by the
// cluster simulator (see DESIGN.md, substitutions), while the tester plugin
// is a faithful port of the synthetic-load plugin the paper's Fig. 5 uses.

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/time_utils.h"
#include "sensors/metadata.h"
#include "sensors/reading.h"
#include "sensors/topic_table.h"

namespace wm::pusher {

/// One sampled value bound to its sensor topic. Groups that intern their
/// topics once at construction fill `id`; the Pusher then stores and
/// publish-checks the reading through the handle — no per-sample string
/// hashing, no CacheStore lock (docs/PERFORMANCE.md). Groups that leave
/// `id` invalid fall back to the string path.
struct SampledReading {
    std::string topic;
    sensors::Reading reading;
    sensors::TopicId id = sensors::kInvalidTopicId;
};

class SensorGroup {
  public:
    virtual ~SensorGroup() = default;

    /// Group name, for logging and the REST API.
    virtual const std::string& name() const = 0;

    /// Sampling interval of the group.
    virtual common::TimestampNs intervalNs() const = 0;

    /// Static metadata of every sensor the group produces.
    virtual std::vector<sensors::SensorMetadata> sensors() const = 0;

    /// Samples all sensors at the nominal tick timestamp `t`.
    virtual std::vector<SampledReading> read(common::TimestampNs t) = 0;
};

using SensorGroupPtr = std::unique_ptr<SensorGroup>;

}  // namespace wm::pusher
