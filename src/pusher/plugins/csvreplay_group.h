#pragma once

// CSV replay monitoring plugin: feeds recorded sensor traces through the
// Pusher as if they were sampled live. Rows use the storage backend's CSV
// schema ("topic,timestamp,value"). At each sampling tick the plugin emits
// every recorded reading belonging to the next slice of the recorded time
// axis, re-stamped onto the live timeline — so a trace captured at any rate
// replays at the configured interval, optionally looping.
//
// This is the bridge between offline data (production traces, the storage
// backend's dumpCsv output, or external datasets) and the online analysis
// stack: operators, pipelines and models run identically on replayed data.

#include <string>
#include <vector>

#include "pusher/sensor_group.h"

namespace wm::pusher {

struct CsvReplayConfig {
    std::string name = "csvreplay";
    /// CSV file with "topic,timestamp,value" rows (header optional).
    std::string path;
    common::TimestampNs interval_ns = common::kNsPerSec;
    /// Recorded time covered per tick; defaults to interval_ns (1:1 replay).
    common::TimestampNs slice_ns = 0;
    /// Restart from the beginning when the trace is exhausted.
    bool loop = true;
    /// Prefix prepended to every replayed topic (e.g. "/replay").
    std::string topic_prefix;
};

class CsvReplayGroup final : public SensorGroup {
  public:
    explicit CsvReplayGroup(CsvReplayConfig config);

    /// False when the trace file could not be read or held no valid rows.
    bool loaded() const { return !rows_.empty(); }
    std::size_t rowCount() const { return rows_.size(); }
    /// True once a non-looping replay has emitted every row.
    bool exhausted() const { return !config_.loop && cursor_ >= rows_.size(); }

    const std::string& name() const override { return config_.name; }
    common::TimestampNs intervalNs() const override { return config_.interval_ns; }
    std::vector<sensors::SensorMetadata> sensors() const override;
    std::vector<SampledReading> read(common::TimestampNs t) override;

  private:
    struct Row {
        std::string topic;
        common::TimestampNs timestamp;
        double value;
        sensors::TopicId id = sensors::kInvalidTopicId;  // interned at load
    };

    CsvReplayConfig config_;
    std::vector<Row> rows_;          // sorted by recorded timestamp
    std::size_t cursor_ = 0;         // next row to emit
    common::TimestampNs replay_position_ = 0;  // recorded-time watermark
};

}  // namespace wm::pusher
