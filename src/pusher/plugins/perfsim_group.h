#pragma once

// perfevent-style monitoring plugin backed by the simulator: per-CPU
// monotonic hardware counters (cycles, instructions, cache misses, vector
// operations, branch misses) under "<node>/cpuK/<counter>".

#include <string>
#include <vector>

#include "pusher/sensor_group.h"
#include "pusher/sim_node.h"

namespace wm::pusher {

struct PerfsimGroupConfig {
    std::string name = "perfsim";
    /// Node path prefix, e.g. "/rack0/chassis0/server0".
    std::string node_path;
    common::TimestampNs interval_ns = common::kNsPerSec;
    /// Whether raw counters are published over MQTT. Pipelines that derive
    /// metrics locally (perfmetrics) keep the raw counters Pusher-local.
    bool publish = true;
};

class PerfsimGroup final : public SensorGroup {
  public:
    PerfsimGroup(PerfsimGroupConfig config, SimulatedNodePtr node);

    const std::string& name() const override { return config_.name; }
    common::TimestampNs intervalNs() const override { return config_.interval_ns; }
    std::vector<sensors::SensorMetadata> sensors() const override;
    std::vector<SampledReading> read(common::TimestampNs t) override;

    /// The per-CPU counter names this plugin exposes.
    static const std::vector<std::string>& counterNames();

  private:
    PerfsimGroupConfig config_;
    SimulatedNodePtr node_;
    /// Per-core, per-counter topics and interned ids, laid out
    /// core-major in counterNames() order; precomputed once.
    std::vector<std::string> topics_;
    std::vector<sensors::TopicId> ids_;
};

}  // namespace wm::pusher
