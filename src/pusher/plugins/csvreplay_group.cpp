#include "pusher/plugins/csvreplay_group.h"

#include <algorithm>
#include <fstream>
#include <set>

#include "common/logging.h"
#include "common/string_utils.h"

namespace wm::pusher {

CsvReplayGroup::CsvReplayGroup(CsvReplayConfig config) : config_(std::move(config)) {
    if (config_.slice_ns <= 0) config_.slice_ns = config_.interval_ns;
    std::ifstream in(config_.path);
    if (!in.is_open()) {
        WM_LOG(kError, "csvreplay") << config_.name << ": cannot open " << config_.path;
        return;
    }
    std::string line;
    while (std::getline(in, line)) {
        if (line.empty() || common::startsWith(line, "topic,")) continue;
        const std::size_t c1 = line.find(',');
        const std::size_t c2 = line.find(',', c1 + 1);
        if (c1 == std::string::npos || c2 == std::string::npos) continue;
        Row row;
        try {
            row.topic = common::normalizePath(config_.topic_prefix +
                                              line.substr(0, c1));
            row.timestamp = std::stoll(line.substr(c1 + 1, c2 - c1 - 1));
            row.value = std::stod(line.substr(c2 + 1));
        } catch (...) {
            continue;  // skip malformed rows
        }
        row.id = sensors::TopicTable::instance().intern(row.topic);
        rows_.push_back(std::move(row));
    }
    std::sort(rows_.begin(), rows_.end(),
              [](const Row& a, const Row& b) { return a.timestamp < b.timestamp; });
    if (!rows_.empty()) replay_position_ = rows_.front().timestamp;
    WM_LOG(kInfo, "csvreplay") << config_.name << ": loaded " << rows_.size()
                               << " rows from " << config_.path;
}

std::vector<sensors::SensorMetadata> CsvReplayGroup::sensors() const {
    std::set<std::string> topics;
    for (const auto& row : rows_) topics.insert(row.topic);
    std::vector<sensors::SensorMetadata> out;
    out.reserve(topics.size());
    for (const auto& topic : topics) {
        sensors::SensorMetadata metadata;
        metadata.topic = topic;
        metadata.interval_ns = config_.interval_ns;
        out.push_back(std::move(metadata));
    }
    return out;
}

std::vector<SampledReading> CsvReplayGroup::read(common::TimestampNs t) {
    std::vector<SampledReading> out;
    if (rows_.empty()) return out;
    if (cursor_ >= rows_.size()) {
        if (!config_.loop) return out;
        cursor_ = 0;
        replay_position_ = rows_.front().timestamp;
    }
    // Emit all rows inside the next slice of the recorded time axis,
    // re-stamped onto the live timeline.
    const common::TimestampNs slice_end = replay_position_ + config_.slice_ns;
    while (cursor_ < rows_.size() && rows_[cursor_].timestamp < slice_end) {
        out.push_back({rows_[cursor_].topic, {t, rows_[cursor_].value}, rows_[cursor_].id});
        ++cursor_;
    }
    replay_position_ = slice_end;
    return out;
}

}  // namespace wm::pusher
