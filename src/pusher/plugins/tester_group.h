#pragma once

// The tester monitoring plugin: produces a configurable number of monotonic
// synthetic sensors with negligible sampling cost. This is the baseline data
// source of the paper's Fig. 5 overhead experiment (1000 monotonic sensors
// at a 1 s interval).

#include <string>
#include <vector>

#include "pusher/sensor_group.h"

namespace wm::pusher {

struct TesterGroupConfig {
    std::string name = "tester";
    /// Topic prefix under which sensors are created; sensor i becomes
    /// "<prefix>/test<i>".
    std::string prefix = "/test";
    std::size_t num_sensors = 1000;
    common::TimestampNs interval_ns = common::kNsPerSec;
    /// Per-tick increment of each monotonic sensor.
    double increment = 1.0;
};

class TesterGroup final : public SensorGroup {
  public:
    explicit TesterGroup(TesterGroupConfig config);

    const std::string& name() const override { return config_.name; }
    common::TimestampNs intervalNs() const override { return config_.interval_ns; }
    std::vector<sensors::SensorMetadata> sensors() const override;
    std::vector<SampledReading> read(common::TimestampNs t) override;

    std::uint64_t ticks() const { return ticks_; }

  private:
    TesterGroupConfig config_;
    std::vector<std::string> topics_;
    /// Interned handles parallel to topics_, resolved once here so every
    /// sampled reading carries its TopicId (docs/PERFORMANCE.md).
    std::vector<sensors::TopicId> ids_;
    double value_ = 0.0;
    std::uint64_t ticks_ = 0;
};

}  // namespace wm::pusher
