#include "pusher/plugins/sysfssim_group.h"

#include "common/string_utils.h"

namespace wm::pusher {

SysfssimGroup::SysfssimGroup(SysfssimGroupConfig config, SimulatedNodePtr node)
    : config_(std::move(config)), node_(std::move(node)) {}

std::vector<sensors::SensorMetadata> SysfssimGroup::sensors() const {
    std::vector<sensors::SensorMetadata> out;
    sensors::SensorMetadata power;
    power.topic = common::pathJoin(config_.node_path, "power");
    power.unit = "W";
    power.interval_ns = config_.interval_ns;
    out.push_back(std::move(power));
    sensors::SensorMetadata temp;
    temp.topic = common::pathJoin(config_.node_path, "temp");
    temp.unit = "C";
    temp.interval_ns = config_.interval_ns;
    out.push_back(std::move(temp));
    return out;
}

std::vector<SampledReading> SysfssimGroup::read(common::TimestampNs t) {
    const simulator::NodeSample sample = node_->sampleAt(t);
    return {
        {common::pathJoin(config_.node_path, "power"), {t, sample.power_w}},
        {common::pathJoin(config_.node_path, "temp"), {t, sample.temperature_c}},
    };
}

}  // namespace wm::pusher
