#include "pusher/plugins/sysfssim_group.h"

#include "common/string_utils.h"

namespace wm::pusher {

SysfssimGroup::SysfssimGroup(SysfssimGroupConfig config, SimulatedNodePtr node)
    : config_(std::move(config)),
      node_(std::move(node)),
      power_topic_(common::pathJoin(config_.node_path, "power")),
      temp_topic_(common::pathJoin(config_.node_path, "temp")),
      power_id_(sensors::TopicTable::instance().intern(power_topic_)),
      temp_id_(sensors::TopicTable::instance().intern(temp_topic_)) {}

std::vector<sensors::SensorMetadata> SysfssimGroup::sensors() const {
    std::vector<sensors::SensorMetadata> out;
    sensors::SensorMetadata power;
    power.topic = common::pathJoin(config_.node_path, "power");
    power.unit = "W";
    power.interval_ns = config_.interval_ns;
    out.push_back(std::move(power));
    sensors::SensorMetadata temp;
    temp.topic = common::pathJoin(config_.node_path, "temp");
    temp.unit = "C";
    temp.interval_ns = config_.interval_ns;
    out.push_back(std::move(temp));
    return out;
}

std::vector<SampledReading> SysfssimGroup::read(common::TimestampNs t) {
    const simulator::NodeSample sample = node_->sampleAt(t);
    return {
        {power_topic_, {t, sample.power_w}, power_id_},
        {temp_topic_, {t, sample.temperature_c}, temp_id_},
    };
}

}  // namespace wm::pusher
