#include "pusher/plugins/tester_group.h"

#include "common/string_utils.h"

namespace wm::pusher {

TesterGroup::TesterGroup(TesterGroupConfig config) : config_(std::move(config)) {
    topics_.reserve(config_.num_sensors);
    for (std::size_t i = 0; i < config_.num_sensors; ++i) {
        topics_.push_back(common::pathJoin(config_.prefix, "test" + std::to_string(i)));
    }
}

std::vector<sensors::SensorMetadata> TesterGroup::sensors() const {
    std::vector<sensors::SensorMetadata> out;
    out.reserve(topics_.size());
    for (const auto& topic : topics_) {
        sensors::SensorMetadata metadata;
        metadata.topic = topic;
        metadata.interval_ns = config_.interval_ns;
        metadata.monotonic = true;
        out.push_back(std::move(metadata));
    }
    return out;
}

std::vector<SampledReading> TesterGroup::read(common::TimestampNs t) {
    value_ += config_.increment;
    ++ticks_;
    std::vector<SampledReading> out;
    out.reserve(topics_.size());
    for (const auto& topic : topics_) {
        out.push_back({topic, {t, value_}});
    }
    return out;
}

}  // namespace wm::pusher
