#include "pusher/plugins/tester_group.h"

#include "common/string_utils.h"

namespace wm::pusher {

TesterGroup::TesterGroup(TesterGroupConfig config) : config_(std::move(config)) {
    topics_.reserve(config_.num_sensors);
    ids_.reserve(config_.num_sensors);
    for (std::size_t i = 0; i < config_.num_sensors; ++i) {
        topics_.push_back(common::pathJoin(config_.prefix, "test" + std::to_string(i)));
        ids_.push_back(sensors::TopicTable::instance().intern(topics_.back()));
    }
}

std::vector<sensors::SensorMetadata> TesterGroup::sensors() const {
    std::vector<sensors::SensorMetadata> out;
    out.reserve(topics_.size());
    for (const auto& topic : topics_) {
        sensors::SensorMetadata metadata;
        metadata.topic = topic;
        metadata.interval_ns = config_.interval_ns;
        metadata.monotonic = true;
        out.push_back(std::move(metadata));
    }
    return out;
}

std::vector<SampledReading> TesterGroup::read(common::TimestampNs t) {
    value_ += config_.increment;
    ++ticks_;
    std::vector<SampledReading> out;
    out.reserve(topics_.size());
    for (std::size_t i = 0; i < topics_.size(); ++i) {
        out.push_back({topics_[i], {t, value_}, ids_[i]});
    }
    return out;
}

}  // namespace wm::pusher
