#include "pusher/plugins/facilitysim_group.h"

#include "common/string_utils.h"

namespace wm::pusher {

FacilitysimGroup::FacilitysimGroup(FacilitysimGroupConfig config,
                                   SimulatedFacilityPtr facility)
    : config_(std::move(config)), facility_(std::move(facility)) {}

std::vector<sensors::SensorMetadata> FacilitysimGroup::sensors() const {
    std::vector<sensors::SensorMetadata> out;
    const struct {
        const char* name;
        const char* unit;
    } kSensors[] = {{"inlet-temp", "C"},    {"return-temp", "C"},
                    {"outdoor-temp", "C"},  {"cooling-power", "W"},
                    {"it-power", "W"},      {"pue", ""}};
    for (const auto& sensor : kSensors) {
        sensors::SensorMetadata metadata;
        metadata.topic = common::pathJoin(config_.prefix, sensor.name);
        metadata.unit = sensor.unit;
        metadata.interval_ns = config_.interval_ns;
        out.push_back(std::move(metadata));
    }
    return out;
}

std::vector<SampledReading> FacilitysimGroup::read(common::TimestampNs t) {
    const simulator::FacilitySample sample = facility_->sampleAt(t);
    return {
        {common::pathJoin(config_.prefix, "inlet-temp"), {t, sample.inlet_temp_c}},
        {common::pathJoin(config_.prefix, "return-temp"), {t, sample.return_temp_c}},
        {common::pathJoin(config_.prefix, "outdoor-temp"), {t, sample.outdoor_temp_c}},
        {common::pathJoin(config_.prefix, "cooling-power"), {t, sample.cooling_power_w}},
        {common::pathJoin(config_.prefix, "it-power"), {t, sample.it_power_w}},
        {common::pathJoin(config_.prefix, "pue"), {t, sample.pue}},
    };
}

}  // namespace wm::pusher
