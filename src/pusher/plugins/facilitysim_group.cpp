#include "pusher/plugins/facilitysim_group.h"

#include "common/string_utils.h"

namespace wm::pusher {

FacilitysimGroup::FacilitysimGroup(FacilitysimGroupConfig config,
                                   SimulatedFacilityPtr facility)
    : config_(std::move(config)), facility_(std::move(facility)) {
    static const char* kNames[] = {"inlet-temp",    "return-temp", "outdoor-temp",
                                   "cooling-power", "it-power",    "pue"};
    for (const char* name : kNames) {
        topics_.push_back(common::pathJoin(config_.prefix, name));
        ids_.push_back(sensors::TopicTable::instance().intern(topics_.back()));
    }
}

std::vector<sensors::SensorMetadata> FacilitysimGroup::sensors() const {
    std::vector<sensors::SensorMetadata> out;
    const struct {
        const char* name;
        const char* unit;
    } kSensors[] = {{"inlet-temp", "C"},    {"return-temp", "C"},
                    {"outdoor-temp", "C"},  {"cooling-power", "W"},
                    {"it-power", "W"},      {"pue", ""}};
    for (const auto& sensor : kSensors) {
        sensors::SensorMetadata metadata;
        metadata.topic = common::pathJoin(config_.prefix, sensor.name);
        metadata.unit = sensor.unit;
        metadata.interval_ns = config_.interval_ns;
        out.push_back(std::move(metadata));
    }
    return out;
}

std::vector<SampledReading> FacilitysimGroup::read(common::TimestampNs t) {
    const simulator::FacilitySample sample = facility_->sampleAt(t);
    const double values[] = {sample.inlet_temp_c,   sample.return_temp_c,
                             sample.outdoor_temp_c, sample.cooling_power_w,
                             sample.it_power_w,     sample.pue};
    std::vector<SampledReading> out;
    out.reserve(topics_.size());
    for (std::size_t i = 0; i < topics_.size(); ++i) {
        out.push_back({topics_[i], {t, values[i]}, ids_[i]});
    }
    return out;
}

}  // namespace wm::pusher
