#pragma once

// Facility-level monitoring plugin backed by the cooling-circuit model:
// sensors under "/facility/..." (inlet/return/outdoor temperatures, cooling
// power, IT power, PUE). The IT load is supplied by a callback so the
// facility integrates whatever cluster feeds it — holistic monitoring from
// the facility down to the CPUs, as the paper's title promises.

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/mutex.h"

#include "pusher/sensor_group.h"
#include "simulator/facility_model.h"

namespace wm::pusher {

struct FacilitysimGroupConfig {
    std::string name = "facilitysim";
    std::string prefix = "/facility";
    common::TimestampNs interval_ns = common::kNsPerSec;
};

/// Thread-safe wrapper shared between the sampling plugin and actuators.
class SimulatedFacility {
  public:
    explicit SimulatedFacility(simulator::FacilityCharacteristics characteristics = {},
                               std::function<double()> it_power_source = nullptr)
        : model_(characteristics), it_power_source_(std::move(it_power_source)) {}

    simulator::FacilitySample sampleAt(common::TimestampNs t) {
        common::MutexLock lock(mutex_);
        if (last_time_ == 0) {
            last_time_ = t;
            model_.advance(1.0, currentItPower());
        } else if (t > last_time_) {
            double dt = static_cast<double>(t - last_time_) /
                        static_cast<double>(common::kNsPerSec);
            while (dt > 0.0) {
                const double slice = std::min(dt, 60.0);
                model_.advance(slice, currentItPower());
                dt -= slice;
            }
            last_time_ = t;
        }
        return model_.sample();
    }

    void setInletSetpoint(double temp_c) {
        common::MutexLock lock(mutex_);
        model_.setInletSetpoint(temp_c);
    }

    /// Anomaly-campaign entry point (src/scenario): the perturbation applies
    /// to all loop physics integrated after this call.
    void setPerturbation(const simulator::FacilityPerturbation& perturbation) {
        common::MutexLock lock(mutex_);
        model_.setPerturbation(perturbation);
    }

    double inletSetpoint() const {
        common::MutexLock lock(mutex_);
        return model_.inletSetpoint();
    }

  private:
    double currentItPower() const {
        return it_power_source_ ? it_power_source_() : 0.0;
    }

    // kSimFacility ranks below kSimNode: sampleAt() invokes the IT power
    // callback under this lock, and that callback typically reads the
    // SimulatedNode models.
    mutable common::Mutex mutex_{"SimulatedFacility", common::LockRank::kSimFacility};
    simulator::FacilityModel model_ WM_GUARDED_BY(mutex_);
    std::function<double()> it_power_source_;  // immutable after construction
    common::TimestampNs last_time_ WM_GUARDED_BY(mutex_) = 0;
};

using SimulatedFacilityPtr = std::shared_ptr<SimulatedFacility>;

class FacilitysimGroup final : public SensorGroup {
  public:
    FacilitysimGroup(FacilitysimGroupConfig config, SimulatedFacilityPtr facility);

    const std::string& name() const override { return config_.name; }
    common::TimestampNs intervalNs() const override { return config_.interval_ns; }
    std::vector<sensors::SensorMetadata> sensors() const override;
    std::vector<SampledReading> read(common::TimestampNs t) override;

  private:
    FacilitysimGroupConfig config_;
    SimulatedFacilityPtr facility_;
    /// Topics and interned ids, precomputed once (one per facility sensor).
    std::vector<std::string> topics_;
    std::vector<sensors::TopicId> ids_;
};

}  // namespace wm::pusher
