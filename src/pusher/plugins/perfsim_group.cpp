#include "pusher/plugins/perfsim_group.h"

#include "common/string_utils.h"
#include "simulator/topology.h"

namespace wm::pusher {

PerfsimGroup::PerfsimGroup(PerfsimGroupConfig config, SimulatedNodePtr node)
    : config_(std::move(config)), node_(std::move(node)) {
    const std::size_t cores = node_->coreCount();
    topics_.reserve(cores * counterNames().size());
    ids_.reserve(cores * counterNames().size());
    for (std::size_t core = 0; core < cores; ++core) {
        const std::string cpu_path =
            simulator::Topology::cpuPath(config_.node_path, core);
        for (const auto& counter : counterNames()) {
            topics_.push_back(common::pathJoin(cpu_path, counter));
            ids_.push_back(sensors::TopicTable::instance().intern(topics_.back()));
        }
    }
}

const std::vector<std::string>& PerfsimGroup::counterNames() {
    static const std::vector<std::string> names = {
        "cpu-cycles", "instructions", "cache-misses", "vector-ops", "branch-misses"};
    return names;
}

std::vector<sensors::SensorMetadata> PerfsimGroup::sensors() const {
    std::vector<sensors::SensorMetadata> out;
    const std::size_t cores = node_->coreCount();
    out.reserve(cores * counterNames().size());
    for (std::size_t core = 0; core < cores; ++core) {
        const std::string cpu_path =
            simulator::Topology::cpuPath(config_.node_path, core);
        for (const auto& counter : counterNames()) {
            sensors::SensorMetadata metadata;
            metadata.topic = common::pathJoin(cpu_path, counter);
            metadata.interval_ns = config_.interval_ns;
            metadata.monotonic = true;
            metadata.publish = config_.publish;
            out.push_back(std::move(metadata));
        }
    }
    return out;
}

std::vector<SampledReading> PerfsimGroup::read(common::TimestampNs t) {
    const simulator::NodeSample sample = node_->sampleAt(t);
    std::vector<SampledReading> out;
    const std::size_t per_core = counterNames().size();
    const std::size_t cores = std::min(sample.cores.size(), topics_.size() / per_core);
    out.reserve(cores * per_core);
    for (std::size_t core = 0; core < cores; ++core) {
        const simulator::CoreCounters& counters = sample.cores[core];
        const double values[] = {counters.cycles, counters.instructions,
                                 counters.cache_misses, counters.vector_ops,
                                 counters.branch_misses};
        const std::size_t base = core * per_core;
        for (std::size_t i = 0; i < per_core; ++i) {
            out.push_back({topics_[base + i], {t, values[i]}, ids_[base + i]});
        }
    }
    return out;
}

}  // namespace wm::pusher
