#include "pusher/plugins/perfsim_group.h"

#include "common/string_utils.h"
#include "simulator/topology.h"

namespace wm::pusher {

PerfsimGroup::PerfsimGroup(PerfsimGroupConfig config, SimulatedNodePtr node)
    : config_(std::move(config)), node_(std::move(node)) {}

const std::vector<std::string>& PerfsimGroup::counterNames() {
    static const std::vector<std::string> names = {
        "cpu-cycles", "instructions", "cache-misses", "vector-ops", "branch-misses"};
    return names;
}

std::vector<sensors::SensorMetadata> PerfsimGroup::sensors() const {
    std::vector<sensors::SensorMetadata> out;
    const std::size_t cores = node_->coreCount();
    out.reserve(cores * counterNames().size());
    for (std::size_t core = 0; core < cores; ++core) {
        const std::string cpu_path =
            simulator::Topology::cpuPath(config_.node_path, core);
        for (const auto& counter : counterNames()) {
            sensors::SensorMetadata metadata;
            metadata.topic = common::pathJoin(cpu_path, counter);
            metadata.interval_ns = config_.interval_ns;
            metadata.monotonic = true;
            metadata.publish = config_.publish;
            out.push_back(std::move(metadata));
        }
    }
    return out;
}

std::vector<SampledReading> PerfsimGroup::read(common::TimestampNs t) {
    const simulator::NodeSample sample = node_->sampleAt(t);
    std::vector<SampledReading> out;
    out.reserve(sample.cores.size() * counterNames().size());
    for (std::size_t core = 0; core < sample.cores.size(); ++core) {
        const std::string cpu_path =
            simulator::Topology::cpuPath(config_.node_path, core);
        const simulator::CoreCounters& counters = sample.cores[core];
        out.push_back({common::pathJoin(cpu_path, "cpu-cycles"), {t, counters.cycles}});
        out.push_back(
            {common::pathJoin(cpu_path, "instructions"), {t, counters.instructions}});
        out.push_back(
            {common::pathJoin(cpu_path, "cache-misses"), {t, counters.cache_misses}});
        out.push_back({common::pathJoin(cpu_path, "vector-ops"), {t, counters.vector_ops}});
        out.push_back(
            {common::pathJoin(cpu_path, "branch-misses"), {t, counters.branch_misses}});
    }
    return out;
}

}  // namespace wm::pusher
