#pragma once

// ProcFS-style monitoring plugin backed by the simulator: node-level memory
// availability and the accumulated CPU idle-time counter ("col_idle",
// /proc/stat semantics) under "<node>/memfree" and "<node>/col_idle".

#include <string>
#include <vector>

#include "pusher/sensor_group.h"
#include "pusher/sim_node.h"

namespace wm::pusher {

struct ProcfssimGroupConfig {
    std::string name = "procfssim";
    std::string node_path;
    common::TimestampNs interval_ns = common::kNsPerSec;
};

class ProcfssimGroup final : public SensorGroup {
  public:
    ProcfssimGroup(ProcfssimGroupConfig config, SimulatedNodePtr node);

    const std::string& name() const override { return config_.name; }
    common::TimestampNs intervalNs() const override { return config_.interval_ns; }
    std::vector<sensors::SensorMetadata> sensors() const override;
    std::vector<SampledReading> read(common::TimestampNs t) override;

  private:
    ProcfssimGroupConfig config_;
    SimulatedNodePtr node_;
    std::string memfree_topic_;
    std::string idle_topic_;
    sensors::TopicId memfree_id_ = sensors::kInvalidTopicId;
    sensors::TopicId idle_id_ = sensors::kInvalidTopicId;
};

}  // namespace wm::pusher
