#include "pusher/plugins/procfssim_group.h"

#include "common/string_utils.h"

namespace wm::pusher {

ProcfssimGroup::ProcfssimGroup(ProcfssimGroupConfig config, SimulatedNodePtr node)
    : config_(std::move(config)),
      node_(std::move(node)),
      memfree_topic_(common::pathJoin(config_.node_path, "memfree")),
      idle_topic_(common::pathJoin(config_.node_path, "col_idle")),
      memfree_id_(sensors::TopicTable::instance().intern(memfree_topic_)),
      idle_id_(sensors::TopicTable::instance().intern(idle_topic_)) {}

std::vector<sensors::SensorMetadata> ProcfssimGroup::sensors() const {
    std::vector<sensors::SensorMetadata> out;
    sensors::SensorMetadata memfree;
    memfree.topic = common::pathJoin(config_.node_path, "memfree");
    memfree.unit = "GB";
    memfree.interval_ns = config_.interval_ns;
    out.push_back(std::move(memfree));
    sensors::SensorMetadata idle;
    idle.topic = common::pathJoin(config_.node_path, "col_idle");
    idle.unit = "cs";
    idle.interval_ns = config_.interval_ns;
    idle.monotonic = true;
    out.push_back(std::move(idle));
    return out;
}

std::vector<SampledReading> ProcfssimGroup::read(common::TimestampNs t) {
    const simulator::NodeSample sample = node_->sampleAt(t);
    return {
        {memfree_topic_, {t, sample.memory_free_gb}, memfree_id_},
        {idle_topic_, {t, sample.idle_time_total}, idle_id_},
    };
}

}  // namespace wm::pusher
