#pragma once

// Scenario ground-truth monitoring plugin: publishes the label stream of an
// anomaly campaign (src/scenario) as a per-node sensor
// "<node>/anomaly-label" — 0 while the node is healthy, otherwise the
// numeric id of the most severe anomaly class active on the node. Online
// operators may consume it as a teaching signal (the classifier's
// labelSensor), and the evaluation harness uses it to cross-check that
// injected campaigns actually reached the sensor plane.
//
// The label source is a callback so the pusher layer stays independent of
// the scenario library (which itself links the pusher).

#include <functional>
#include <string>
#include <vector>

#include "pusher/sensor_group.h"

namespace wm::pusher {

struct ScenariosimGroupConfig {
    std::string name = "scenariosim";
    std::string node_path;
    common::TimestampNs interval_ns = common::kNsPerSec;
};

class ScenariosimGroup final : public SensorGroup {
  public:
    /// `label_source` maps a sample timestamp to the node's current label.
    ScenariosimGroup(ScenariosimGroupConfig config,
                     std::function<double(common::TimestampNs)> label_source);

    const std::string& name() const override { return config_.name; }
    common::TimestampNs intervalNs() const override { return config_.interval_ns; }
    std::vector<sensors::SensorMetadata> sensors() const override;
    std::vector<SampledReading> read(common::TimestampNs t) override;

  private:
    ScenariosimGroupConfig config_;
    std::function<double(common::TimestampNs)> label_source_;
    std::string label_topic_;
    sensors::TopicId label_id_ = sensors::kInvalidTopicId;
};

}  // namespace wm::pusher
