#include "pusher/plugins/scenariosim_group.h"

#include "common/string_utils.h"

namespace wm::pusher {

ScenariosimGroup::ScenariosimGroup(
    ScenariosimGroupConfig config,
    std::function<double(common::TimestampNs)> label_source)
    : config_(std::move(config)),
      label_source_(std::move(label_source)),
      label_topic_(common::pathJoin(config_.node_path, "anomaly-label")),
      label_id_(sensors::TopicTable::instance().intern(label_topic_)) {}

std::vector<sensors::SensorMetadata> ScenariosimGroup::sensors() const {
    sensors::SensorMetadata label;
    label.topic = label_topic_;
    label.unit = "class";
    label.interval_ns = config_.interval_ns;
    return {label};
}

std::vector<SampledReading> ScenariosimGroup::read(common::TimestampNs t) {
    const double label = label_source_ ? label_source_(t) : 0.0;
    return {{label_topic_, {t, label}, label_id_}};
}

}  // namespace wm::pusher
