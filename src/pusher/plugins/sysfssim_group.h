#pragma once

// sysFS-style monitoring plugin backed by the simulator: node-level power
// (as measured at the supply) and temperature sensors under
// "<node>/power" and "<node>/temp".

#include <string>
#include <vector>

#include "pusher/sensor_group.h"
#include "pusher/sim_node.h"

namespace wm::pusher {

struct SysfssimGroupConfig {
    std::string name = "sysfssim";
    std::string node_path;
    common::TimestampNs interval_ns = common::kNsPerSec;
};

class SysfssimGroup final : public SensorGroup {
  public:
    SysfssimGroup(SysfssimGroupConfig config, SimulatedNodePtr node);

    const std::string& name() const override { return config_.name; }
    common::TimestampNs intervalNs() const override { return config_.interval_ns; }
    std::vector<sensors::SensorMetadata> sensors() const override;
    std::vector<SampledReading> read(common::TimestampNs t) override;

  private:
    SysfssimGroupConfig config_;
    SimulatedNodePtr node_;
    std::string power_topic_;
    std::string temp_topic_;
    sensors::TopicId power_id_ = sensors::kInvalidTopicId;
    sensors::TopicId temp_id_ = sensors::kInvalidTopicId;
};

}  // namespace wm::pusher
