#pragma once

// The Pusher: DCDB's per-node monitoring daemon. It samples all configured
// sensor groups on their intervals, stores readings into the local sensor
// cache (the hot path the Wintermute Query Engine reads from) and publishes
// them over MQTT towards a Collect Agent. Wintermute operators instantiated
// in a Pusher see exactly the locally-sampled sensors.

#include <atomic>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/retry.h"
#include "common/scheduler.h"
#include "common/thread_pool.h"
#include "mqtt/broker.h"
#include "pusher/sensor_group.h"
#include "sensors/sensor_cache.h"

namespace wm::pusher {

struct PusherConfig {
    /// Identifier for logs (typically the node path).
    std::string name = "pusher";
    /// Sensor cache retention window (the paper uses 180 s in Fig. 5).
    common::TimestampNs cache_window_ns = 180 * common::kNsPerSec;
    /// Worker threads for sampling dispatch.
    std::size_t worker_threads = 2;
    /// Readings buffered while the broker refuses publishes; beyond this
    /// the oldest buffered reading is dropped (and counted). 0 disables
    /// buffering: refused publishes are dropped immediately.
    std::size_t publish_buffer_max = 4096;
    /// Pacing of republish attempts for buffered readings. max_attempts
    /// is ignored here — the Pusher retries for as long as readings are
    /// buffered, with the delay capped at max_backoff_ns.
    common::RetryPolicy publish_retry{};
    /// Seed for the retry jitter (determinism contract).
    std::uint64_t retry_seed = 0x9E3779B9ULL;
    /// Published messages retained for at-least-once replay after a
    /// consumer restart (replayRecent()); 0 disables the ring. Replayed
    /// duplicates are dropped downstream by per-topic sequence numbers.
    std::size_t replay_ring_max = 1024;
};

class Pusher {
  public:
    /// `broker` receives published readings; may be nullptr for cache-only
    /// operation (e.g. overhead benchmarks without a Collect Agent).
    explicit Pusher(PusherConfig config, mqtt::Broker* broker = nullptr);
    ~Pusher();

    Pusher(const Pusher&) = delete;
    Pusher& operator=(const Pusher&) = delete;

    /// Registers a sensor group (before or after start()). Creates cache
    /// entries for all its sensors.
    void addGroup(SensorGroupPtr group);

    /// Begins scheduled sampling of all groups.
    void start();

    /// Stops sampling; in-flight ticks complete.
    void stop();
    bool running() const { return running_.load(); }

    /// Manually ticks every group once at timestamp `t` (synchronously, on
    /// the calling thread). Used for deterministic virtual-time runs.
    void sampleOnce(common::TimestampNs t);

    sensors::CacheStore& cacheStore() { return cache_store_; }
    const sensors::CacheStore& cacheStore() const { return cache_store_; }
    const std::string& name() const { return config_.name; }

    std::uint64_t readingsSampled() const { return readings_sampled_.load(); }
    std::uint64_t messagesPublished() const { return messages_published_.load(); }
    std::size_t groupCount() const;

    // Resilience counters (docs/RESILIENCE.md). Buffered readings are
    // republished oldest-first once the broker recovers; every reading is
    // either published exactly once or counted as dropped.
    std::size_t bufferedReadings() const;
    std::uint64_t readingsDropped() const { return readings_dropped_.load(); }
    std::uint64_t publishRetries() const { return publish_retries_.load(); }

    /// At-least-once recovery hook: republishes the retained ring of
    /// recently published messages (oldest first), e.g. after the Collect
    /// Agent restarted and may have lost in-flight deliveries. Safe to call
    /// any time — consumers deduplicate by sequence number. Returns how
    /// many messages the broker accepted.
    std::size_t replayRecent();
    std::uint64_t messagesReplayed() const { return messages_replayed_.load(); }

    /// The epoch baked into every stamped sequence; wm_pusherd forwards it
    /// in the wire CONNECT so the server can tell a restarted pusher (new,
    /// higher epoch) from a reconnecting one.
    std::uint64_t sequenceEpoch() const { return sequence_epoch_; }

  private:
    void tickGroup(SensorGroup& group, common::TimestampNs t);

    /// Republishes buffered readings (oldest first) if the backoff window
    /// has elapsed at tick time `t`. Returns true when the buffer is empty
    /// afterwards (the broker is accepting again).
    bool flushBuffered(common::TimestampNs t) WM_REQUIRES(buffer_mutex_);

    /// Buffers a refused reading, dropping the oldest beyond the cap.
    void bufferReading(mqtt::Message message) WM_REQUIRES(buffer_mutex_);

    /// Retains a successfully published message in the replay ring.
    void recordPublished(const mqtt::Message& message) WM_REQUIRES(buffer_mutex_);

    PusherConfig config_;
    mqtt::Broker* broker_;
    sensors::CacheStore cache_store_;
    common::ThreadPool pool_;
    common::PeriodicScheduler scheduler_;
    mutable common::Mutex groups_mutex_{"Pusher.groups", common::LockRank::kPusher};
    std::vector<SensorGroupPtr> groups_ WM_GUARDED_BY(groups_mutex_);
    std::vector<common::TaskId> task_ids_ WM_GUARDED_BY(groups_mutex_);
    std::atomic<bool> running_{false};
    std::atomic<std::uint64_t> readings_sampled_{0};
    std::atomic<std::uint64_t> messages_published_{0};

    // Publish buffer: ordered, bounded, shared by all group ticks.
    mutable common::Mutex buffer_mutex_{"Pusher.buffer",
                                        common::LockRank::kPusherBuffer};
    std::deque<mqtt::Message> buffer_ WM_GUARDED_BY(buffer_mutex_);
    common::Rng retry_rng_ WM_GUARDED_BY(buffer_mutex_);
    common::Backoff backoff_ WM_GUARDED_BY(buffer_mutex_);
    common::TimestampNs next_retry_ns_ WM_GUARDED_BY(buffer_mutex_) = 0;
    std::atomic<std::uint64_t> readings_dropped_{0};
    std::atomic<std::uint64_t> publish_retries_{0};

    /// Sequence epoch: construction wall-clock, so sequences stay monotone
    /// per topic across a daemon restart (a restarted Pusher's first
    /// sequence exceeds anything the previous incarnation stamped).
    const std::uint64_t sequence_epoch_;
    std::map<std::string, std::uint64_t> topic_counters_ WM_GUARDED_BY(buffer_mutex_);
    /// Recently published messages kept for replayRecent(), bounded by
    /// config_.replay_ring_max.
    std::deque<mqtt::Message> replay_ring_ WM_GUARDED_BY(buffer_mutex_);
    std::atomic<std::uint64_t> messages_replayed_{0};
};

}  // namespace wm::pusher
