// Tests for the facility cooling-circuit model, its monitoring plugin, and
// an end-to-end infrastructure-management feedback loop (energy-aware inlet
// temperature control — the first taxonomy class of paper Section II-A).

#include <gtest/gtest.h>

#include "core/hosting.h"
#include "core/operator_manager.h"
#include "plugins/registry.h"
#include "pusher/plugins/facilitysim_group.h"
#include "pusher/pusher.h"
#include "simulator/facility_model.h"

namespace wm::simulator {
namespace {

TEST(FacilityModel, ReturnTempTracksItLoad) {
    FacilityModel facility;
    // Let the loop settle at 200 kW.
    for (int i = 0; i < 100; ++i) facility.advance(10.0, 200e3);
    const double dt200 = facility.sample().return_temp_c - facility.sample().inlet_temp_c;
    for (int i = 0; i < 100; ++i) facility.advance(10.0, 400e3);
    const double dt400 = facility.sample().return_temp_c - facility.sample().inlet_temp_c;
    EXPECT_NEAR(dt400, 2.0 * dt200, 0.1);  // dT proportional to load
    EXPECT_GT(dt200, 1.0);
}

TEST(FacilityModel, InletFollowsSetpointWithLag) {
    FacilityModel facility;
    facility.setInletSetpoint(48.0);
    facility.advance(10.0, 100e3);
    EXPECT_LT(facility.sample().inlet_temp_c, 47.0);  // not instantaneous
    for (int i = 0; i < 100; ++i) facility.advance(10.0, 100e3);
    EXPECT_NEAR(facility.sample().inlet_temp_c, 48.0, 0.1);
}

TEST(FacilityModel, SetpointIsClamped) {
    FacilityModel facility;
    facility.setInletSetpoint(5.0);
    EXPECT_DOUBLE_EQ(facility.inletSetpoint(), 30.0);
    facility.setInletSetpoint(90.0);
    EXPECT_DOUBLE_EQ(facility.inletSetpoint(), 50.0);
}

TEST(FacilityModel, WarmWaterEnablesFreeCooling) {
    // At a warm inlet setpoint the return stays above the outdoor
    // temperature and the chiller is idle; a cold setpoint forces lift.
    FacilityCharacteristics characteristics;
    characteristics.outdoor_swing_c = 0.0;
    characteristics.outdoor_mean_c = 35.0;

    FacilityModel warm(characteristics);
    warm.setInletSetpoint(45.0);
    for (int i = 0; i < 200; ++i) warm.advance(10.0, 300e3);
    FacilityModel cold(characteristics);
    cold.setInletSetpoint(30.0);
    for (int i = 0; i < 200; ++i) cold.advance(10.0, 300e3);

    EXPECT_LT(warm.sample().cooling_power_w, cold.sample().cooling_power_w);
    EXPECT_LT(warm.sample().pue, cold.sample().pue);
    EXPECT_GT(cold.sample().pue, 1.05);
}

TEST(FacilityModel, PueIsOneWithoutLoad) {
    FacilityModel facility;
    facility.advance(10.0, 0.0);
    EXPECT_DOUBLE_EQ(facility.sample().pue, 1.0);
}

TEST(FacilityModel, OutdoorTemperatureIsDiurnal) {
    FacilityCharacteristics characteristics;
    characteristics.outdoor_mean_c = 15.0;
    characteristics.outdoor_swing_c = 8.0;
    FacilityModel facility(characteristics);
    double min_t = 1e9;
    double max_t = -1e9;
    for (int i = 0; i < 24 * 6; ++i) {  // one day in 10 min steps
        facility.advance(600.0, 100e3);
        min_t = std::min(min_t, facility.sample().outdoor_temp_c);
        max_t = std::max(max_t, facility.sample().outdoor_temp_c);
    }
    EXPECT_NEAR(min_t, 7.0, 0.5);
    EXPECT_NEAR(max_t, 23.0, 0.5);
}

}  // namespace
}  // namespace wm::simulator

namespace wm::pusher {
namespace {

using common::kNsPerSec;
using common::TimestampNs;

TEST(FacilitysimGroup, ExposesFacilitySensors) {
    auto facility = std::make_shared<SimulatedFacility>(
        simulator::FacilityCharacteristics{}, [] { return 250e3; });
    FacilitysimGroup group({}, facility);
    EXPECT_EQ(group.sensors().size(), 6u);
    const auto readings = group.read(10 * kNsPerSec);
    ASSERT_EQ(readings.size(), 6u);
    EXPECT_EQ(readings[0].topic, "/facility/inlet-temp");
    // IT power flows through from the callback.
    EXPECT_DOUBLE_EQ(readings[4].reading.value, 250e3);
}

TEST(FacilityFeedback, InfrastructureLoopHoldsReturnTemperature) {
    // Infrastructure feedback: a controller operator holds the loop's
    // return-water temperature at its design target by adjusting the inlet
    // setpoint (the knob the facility exposes). End-to-end:
    // facilitysim -> cache -> controller -> actuate -> facility responds.
    simulator::FacilityCharacteristics characteristics;
    characteristics.outdoor_swing_c = 0.0;
    auto facility = std::make_shared<SimulatedFacility>(characteristics,
                                                        [] { return 300e3; });

    Pusher pusher(PusherConfig{"facility-host"});
    FacilitysimGroupConfig group_config;
    pusher.addGroup(std::make_unique<FacilitysimGroup>(group_config, facility));

    core::QueryEngine engine;
    engine.setCacheStore(&pusher.cacheStore());
    auto context = core::makeHostContext(engine, &pusher.cacheStore(), nullptr, nullptr);
    context.actuate = [&facility](const std::string& knob, const std::string& target,
                                  double value) {
        if (knob != "inlet-setpoint" || target != "/facility") return false;
        facility->setInletSetpoint(value);
        return true;
    };
    core::OperatorManager manager(std::move(context));
    plugins::registerBuiltinPlugins(manager);
    pusher.sampleOnce(kNsPerSec);
    engine.rebuildTree();

    // Hold the return temperature at 45 C. The controller's knob starts at
    // knobMax = 50, where the return sits at ~54 C; the loop must pull the
    // inlet down until return ~= 45 (i.e. inlet ~= 41 at this load).
    const auto config = common::parseConfig(R"(
operator returnhold {
    interval 10s
    knob inlet-setpoint
    setpoint 45
    gain 30
    knobMin 30
    knobMax 50
    deadband 0.002
    input {
        sensor "<topdown>return-temp"
    }
    output {
        sensor "<topdown>inlet-setpoint"
    }
}
)");
    ASSERT_TRUE(config.ok) << config.error;
    ASSERT_EQ(manager.loadPlugin("controller", config.root), 1);

    TimestampNs t = 10 * kNsPerSec;
    for (int i = 0; i < 300; ++i, t += 10 * kNsPerSec) {
        pusher.sampleOnce(t);
        manager.tickAll(t);
    }
    const auto final_sample = facility->sampleAt(t);
    // At 300 kW the loop dT is ~4 K, so the converged inlet is ~41 C.
    EXPECT_NEAR(final_sample.return_temp_c, 45.0, 0.6);
    EXPECT_NEAR(facility->inletSetpoint(), 41.0, 0.8);
    // The knob value is itself monitored.
    const auto* knob_sensor = pusher.cacheStore().find("/facility/inlet-setpoint");
    ASSERT_NE(knob_sensor, nullptr);
    EXPECT_NEAR(knob_sensor->latest()->value, facility->inletSetpoint(), 0.5);
}

}  // namespace
}  // namespace wm::pusher
