// Tests for operator-level outputs (paper Section V-C) and dynamic plugin
// loading through the REST API (paper Section V-A).

#include <gtest/gtest.h>

#include "core/hosting.h"
#include "core/operator_manager.h"
#include "plugins/registry.h"
#include "plugins/regressor_operator.h"
#include "rest/http_server.h"

namespace wm::core {
namespace {

using common::kNsPerSec;
using common::TimestampNs;

/// Operator emitting a fixed set of operator-level values.
class GlobalEmitter final : public OperatorTemplate {
  public:
    using OperatorTemplate::OperatorTemplate;
    std::vector<double> global_values{1.5, 2.5};

  protected:
    std::vector<SensorValue> compute(const Unit&, TimestampNs) override { return {}; }
    std::vector<double> computeOperatorLevel(TimestampNs) override {
        return global_values;
    }
};

class OperatorExtensionTest : public ::testing::Test {
  protected:
    void SetUp() override {
        engine_.setCacheStore(&caches_);
        for (int i = 0; i < 10; ++i) {
            caches_.getOrCreate("/n0/power").store({i * kNsPerSec, 100.0 + i});
        }
        engine_.rebuildTree();
        context_ = makeHostContext(engine_, &caches_, nullptr, nullptr);
        manager_ = std::make_unique<OperatorManager>(context_);
        plugins::registerBuiltinPlugins(*manager_);
    }

    sensors::CacheStore caches_;
    QueryEngine engine_;
    OperatorContext context_;
    std::unique_ptr<OperatorManager> manager_;
};

TEST_F(OperatorExtensionTest, GlobalOutputsArePublished) {
    OperatorConfig config;
    config.name = "ge";
    config.global_output_topics = {"/ops/ge/alpha", "/ops/ge/beta"};
    auto op = std::make_shared<GlobalEmitter>(config, context_);
    op->setUnits({{"/n0", {"/n0/power"}, {}}});
    op->computeAll(20 * kNsPerSec);
    ASSERT_NE(caches_.find("/ops/ge/alpha"), nullptr);
    EXPECT_DOUBLE_EQ(caches_.find("/ops/ge/alpha")->latest()->value, 1.5);
    EXPECT_DOUBLE_EQ(caches_.find("/ops/ge/beta")->latest()->value, 2.5);
}

TEST_F(OperatorExtensionTest, GlobalOutputsTruncateToConfiguredTopics) {
    OperatorConfig config;
    config.name = "ge2";
    config.global_output_topics = {"/ops/ge2/only"};
    auto op = std::make_shared<GlobalEmitter>(config, context_);
    op->setUnits({{"/n0", {"/n0/power"}, {}}});
    op->computeAll(20 * kNsPerSec);
    EXPECT_NE(caches_.find("/ops/ge2/only"), nullptr);
    EXPECT_EQ(caches_.find("/ops/ge2/beta"), nullptr);
}

TEST_F(OperatorExtensionTest, GlobalOutputConfigKeyIsParsed) {
    const auto parsed = common::parseConfig(R"(
operator x {
    interval 1s
    globalOutput {
        sensor /ops/x/error
        sensor /ops/x/progress
    }
}
)");
    ASSERT_TRUE(parsed.ok);
    const OperatorConfig config = parseOperatorConfig(*parsed.root.child("operator"), "p");
    ASSERT_EQ(config.global_output_topics.size(), 2u);
    EXPECT_EQ(config.global_output_topics[0], "/ops/x/error");
}

TEST_F(OperatorExtensionTest, RegressorPublishesTrainingProgress) {
    const auto parsed = common::parseConfig(R"(
operator reg {
    interval 1s
    window 3s
    target power
    trainingSamples 100
    input {
        sensor "<bottomup>power"
    }
    output {
        sensor "<bottomup>power-pred"
    }
    globalOutput {
        sensor /ops/reg/progress
        sensor /ops/reg/oob-rmse
        sensor /ops/reg/online-error
    }
}
)");
    ASSERT_TRUE(parsed.ok);
    ASSERT_EQ(manager_->loadPlugin("regressor", parsed.root), 1);
    TimestampNs t = 20 * kNsPerSec;
    for (int i = 0; i < 5; ++i, t += kNsPerSec) {
        caches_.getOrCreate("/n0/power").store({t, 100.0});
        manager_->tickAll(t);
    }
    const auto* progress = caches_.find("/ops/reg/progress");
    ASSERT_NE(progress, nullptr);
    ASSERT_TRUE(progress->latest().has_value());
    // 4 accumulated samples out of 100 (the first tick only primes features).
    EXPECT_NEAR(progress->latest()->value, 0.04, 0.011);
}

TEST_F(OperatorExtensionTest, DynamicPluginLoadOverRest) {
    rest::Router router;
    manager_->bindRest(router);
    rest::Request request;
    request.method = "POST";
    request.path = "/wintermute/load/aggregator";
    request.body = R"(
operator dyn {
    interval 1s
    window 10s
    operation maximum
    input {
        sensor "<bottomup>power"
    }
    output {
        sensor "<bottomup>power-dynmax"
    }
}
)";
    const auto response = router.dispatch(request);
    EXPECT_EQ(response.status, 200);
    EXPECT_NE(response.body.find("\"created\":1"), std::string::npos);
    ASSERT_NE(manager_->findOperator("dyn"), nullptr);
    manager_->tickAll(20 * kNsPerSec);
    ASSERT_NE(caches_.find("/n0/power-dynmax"), nullptr);
    EXPECT_DOUBLE_EQ(caches_.find("/n0/power-dynmax")->latest()->value, 109.0);
}

TEST_F(OperatorExtensionTest, DynamicLoadRejectsBadConfigAndPlugin) {
    rest::Router router;
    manager_->bindRest(router);
    rest::Request request;
    request.method = "POST";
    request.path = "/wintermute/load/aggregator";
    request.body = "operator x {\n  unterminated\n";
    EXPECT_EQ(router.dispatch(request).status, 400);
    request.path = "/wintermute/load/no-such-plugin";
    request.body = "operator x {\n}\n";
    EXPECT_EQ(router.dispatch(request).status, 404);
}

TEST_F(OperatorExtensionTest, DynamicLoadOverRealHttp) {
    rest::Router router;
    manager_->bindRest(router);
    rest::HttpServer server(router);
    ASSERT_TRUE(server.start(0));
    const std::string body =
        "operator httpdyn {\n    interval 1s\n    window 10s\n"
        "    operation minimum\n"
        "    input {\n        sensor \"<bottomup>power\"\n    }\n"
        "    output {\n        sensor \"<bottomup>power-dynmin\"\n    }\n}\n";
    const auto result = rest::httpRequest("127.0.0.1", server.port(), "POST",
                                          "/wintermute/load/aggregator", body);
    ASSERT_TRUE(result.ok) << result.error;
    EXPECT_EQ(result.status, 200);
    EXPECT_NE(manager_->findOperator("httpdyn"), nullptr);
}

}  // namespace
}  // namespace wm::core
