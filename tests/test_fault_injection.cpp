// Unit tests for the deterministic fault-injection harness
// (src/common/fault.h): trigger semantics, scoped global installation,
// the zero-cost contract for unarmed points, and the textual grammar.

#include "common/fault.h"

#include <gtest/gtest.h>

#include "common/time_utils.h"

namespace wm::common::fault {
namespace {

using common::kNsPerMs;
using common::kNsPerSec;

TEST(FaultInjection, AlwaysTriggerFiresEveryEvaluation) {
    FaultInjector injector(1);
    injector.arm("p", {});
    for (int i = 0; i < 10; ++i) {
        EXPECT_TRUE(static_cast<bool>(injector.evaluate("p")));
    }
    EXPECT_EQ(injector.stats("p").evaluations, 10u);
    EXPECT_EQ(injector.stats("p").fires, 10u);
}

TEST(FaultInjection, ProbabilityTriggerIsDeterministicWithFixedSeed) {
    constexpr std::uint64_t kSeed = 42;
    constexpr int kTrials = 10000;
    FaultSpec spec;
    spec.trigger = Trigger::kProbability;
    spec.probability = 0.3;

    std::uint64_t fires[2] = {0, 0};
    for (int run = 0; run < 2; ++run) {
        FaultInjector injector(kSeed);
        injector.arm("p", spec);
        for (int i = 0; i < kTrials; ++i) injector.evaluate("p");
        fires[run] = injector.fires("p");
    }
    // Identical seed => identical schedule, and the rate is plausible.
    EXPECT_EQ(fires[0], fires[1]);
    EXPECT_NEAR(static_cast<double>(fires[0]) / kTrials, 0.3, 0.03);

    FaultInjector other_seed(kSeed + 1);
    other_seed.arm("p", spec);
    for (int i = 0; i < kTrials; ++i) other_seed.evaluate("p");
    EXPECT_NE(other_seed.fires("p"), fires[0]);  // schedule depends on seed
}

TEST(FaultInjection, OnceTriggerFiresExactlyOnce) {
    FaultInjector injector(1);
    FaultSpec spec;
    spec.trigger = Trigger::kOnce;
    injector.arm("p", spec);
    EXPECT_TRUE(static_cast<bool>(injector.evaluate("p")));
    for (int i = 0; i < 5; ++i) {
        EXPECT_FALSE(static_cast<bool>(injector.evaluate("p")));
    }
    EXPECT_EQ(injector.fires("p"), 1u);
    EXPECT_EQ(injector.stats("p").evaluations, 6u);
}

TEST(FaultInjection, EveryNFiresOnSchedule) {
    FaultInjector injector(1);
    FaultSpec spec;
    spec.trigger = Trigger::kEveryN;
    spec.every_n = 3;
    injector.arm("p", spec);
    std::vector<int> fired_at;
    for (int i = 1; i <= 10; ++i) {
        if (injector.evaluate("p")) fired_at.push_back(i);
    }
    EXPECT_EQ(fired_at, (std::vector<int>{3, 6, 9}));
}

TEST(FaultInjection, WindowTriggerFollowsInjectedClock) {
    VirtualClock clock;
    FaultInjector injector(1, &clock);
    FaultSpec spec;
    spec.trigger = Trigger::kWindow;
    spec.window_start_ns = 5 * kNsPerSec;
    spec.window_end_ns = 8 * kNsPerSec;  // exclusive
    injector.arm("p", spec);

    std::vector<std::int64_t> fired_at;
    for (std::int64_t t = 0; t <= 10; ++t) {
        clock.set(t * kNsPerSec);
        if (injector.evaluate("p")) fired_at.push_back(t);
    }
    EXPECT_EQ(fired_at, (std::vector<std::int64_t>{5, 6, 7}));
}

TEST(FaultInjection, MaxFiresCapsAnyTrigger) {
    FaultInjector injector(1);
    FaultSpec spec;
    spec.max_fires = 2;
    injector.arm("p", spec);
    int fired = 0;
    for (int i = 0; i < 10; ++i) {
        if (injector.evaluate("p")) ++fired;
    }
    EXPECT_EQ(fired, 2);
    EXPECT_EQ(injector.fires("p"), 2u);
}

TEST(FaultInjection, DecisionCarriesActionAndDelay) {
    FaultInjector injector(1);
    FaultSpec spec;
    spec.action = Action::kDelay;
    spec.delay_ns = 250 * kNsPerMs;
    injector.arm("p", spec);
    const Decision decision = injector.evaluate("p");
    ASSERT_TRUE(static_cast<bool>(decision));
    EXPECT_EQ(decision.action, Action::kDelay);
    EXPECT_EQ(decision.delay_ns, 250 * kNsPerMs);
}

TEST(FaultInjection, UnregisteredPointNeverFiresAndKeepsNoState) {
    FaultInjector injector(1);
    injector.arm("armed", {});
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(static_cast<bool>(injector.evaluate("other")));
    }
    // The unarmed point accumulated nothing: no counters, no registry entry.
    EXPECT_EQ(injector.stats("other").evaluations, 0u);
    EXPECT_EQ(injector.stats("other").fires, 0u);
    EXPECT_EQ(injector.armedCount(), 1u);
}

TEST(FaultInjection, CheckWithoutGlobalInjectorIsInert) {
    ASSERT_EQ(FaultInjector::global(), nullptr);
    EXPECT_FALSE(static_cast<bool>(check("anything")));
}

TEST(FaultInjection, ScopedInjectorInstallsAndRestores) {
    ASSERT_EQ(FaultInjector::global(), nullptr);
    {
        FaultInjector injector(1);
        injector.arm("p", {});
        ScopedInjector scoped(injector);
        EXPECT_EQ(FaultInjector::global(), &injector);
        EXPECT_TRUE(static_cast<bool>(check("p")));
    }
    EXPECT_EQ(FaultInjector::global(), nullptr);
    EXPECT_FALSE(static_cast<bool>(check("p")));
}

TEST(FaultInjection, DisarmStopsFiringButKeepsCounters) {
    FaultInjector injector(1);
    injector.arm("p", {});
    injector.evaluate("p");
    injector.disarm("p");
    EXPECT_FALSE(static_cast<bool>(injector.evaluate("p")));
    EXPECT_EQ(injector.fires("p"), 1u);
    EXPECT_EQ(injector.armedCount(), 0u);
}

TEST(FaultInjection, DestructorUninstallsItselfFromGlobal) {
    {
        FaultInjector injector(1);
        FaultInjector::installGlobal(&injector);
    }
    EXPECT_EQ(FaultInjector::global(), nullptr);
}

TEST(FaultInjection, ParsesGrammar) {
    const auto drop = parseFaultSpec("drop prob=0.01");
    ASSERT_TRUE(drop.has_value());
    EXPECT_EQ(drop->action, Action::kDrop);
    EXPECT_EQ(drop->trigger, Trigger::kProbability);
    EXPECT_DOUBLE_EQ(drop->probability, 0.01);

    const auto fail = parseFaultSpec("fail every=3 limit=2");
    ASSERT_TRUE(fail.has_value());
    EXPECT_EQ(fail->action, Action::kFail);
    EXPECT_EQ(fail->trigger, Trigger::kEveryN);
    EXPECT_EQ(fail->every_n, 3u);
    EXPECT_EQ(fail->max_fires, 2u);

    const auto delay = parseFaultSpec("delay delay=250ms once");
    ASSERT_TRUE(delay.has_value());
    EXPECT_EQ(delay->action, Action::kDelay);
    EXPECT_EQ(delay->trigger, Trigger::kOnce);
    EXPECT_EQ(delay->delay_ns, 250 * kNsPerMs);

    const auto window = parseFaultSpec("fail window=2s..5s");
    ASSERT_TRUE(window.has_value());
    EXPECT_EQ(window->trigger, Trigger::kWindow);
    EXPECT_EQ(window->window_start_ns, 2 * kNsPerSec);
    EXPECT_EQ(window->window_end_ns, 5 * kNsPerSec);
}

TEST(FaultInjection, RejectsMalformedSpecs) {
    EXPECT_FALSE(parseFaultSpec("").has_value());
    EXPECT_FALSE(parseFaultSpec("explode").has_value());
    EXPECT_FALSE(parseFaultSpec("fail prob=1.5").has_value());
    EXPECT_FALSE(parseFaultSpec("fail every=0").has_value());
    EXPECT_FALSE(parseFaultSpec("fail window=5s..2s").has_value());
    EXPECT_FALSE(parseFaultSpec("fail bogus=1").has_value());
    EXPECT_FALSE(parseFaultSpec("fail delay=abc").has_value());
}

TEST(FaultInjection, ArmFromTextAndRearmResetsCounters) {
    FaultInjector injector(1);
    ASSERT_TRUE(injector.armFromText("p", "fail once"));
    injector.evaluate("p");
    EXPECT_EQ(injector.fires("p"), 1u);
    ASSERT_TRUE(injector.armFromText("p", "fail once"));  // re-arm
    EXPECT_EQ(injector.fires("p"), 0u);                   // counters reset
    EXPECT_FALSE(injector.armFromText("p", "not-a-spec"));
}

}  // namespace
}  // namespace wm::common::fault
