// Behavioural tests for the operator plugins: tester, aggregator, smoothing,
// perfmetrics, healthchecker, regressor, persyst, clustering.

#include <gtest/gtest.h>

#include <cmath>

#include "core/hosting.h"
#include "core/operator_manager.h"
#include "plugins/clustering_operator.h"
#include "plugins/regressor_operator.h"
#include "plugins/registry.h"

namespace wm::plugins {
namespace {

using common::kNsPerSec;
using common::TimestampNs;
using core::OperatorManager;
using core::OperatorPtr;

/// Shared fixture: a small two-node sensor space with raw counters, power
/// and temperature, plus an OperatorManager with all plugins registered.
class PluginTest : public ::testing::Test {
  protected:
    void SetUp() override {
        engine_.setCacheStore(&caches_);
        // Two nodes x two cpus with monotonic counters; node-level power.
        for (const std::string node : {"/r0/c0/s0", "/r0/c0/s1"}) {
            for (int cpu = 0; cpu < 2; ++cpu) {
                const std::string base = node + "/cpu" + std::to_string(cpu);
                fillCounter(base + "/cpu-cycles", 2.0e9);       // 2 GHz busy
                fillCounter(base + "/instructions", 1.0e9);     // CPI = 2
                fillCounter(base + "/cache-misses", 1.0e7);     // 0.01 miss/instr
                fillCounter(base + "/vector-ops", 4.0e8);       // 0.4 vec ratio
                fillCounter(base + "/branch-misses", 4.0e6);
            }
            fillValue(node + "/power", 150.0, 2.0);
            fillValue(node + "/temp", 48.0, 0.1);
        }
        engine_.rebuildTree();
        manager_ = std::make_unique<OperatorManager>(
            core::makeHostContext(engine_, &caches_, nullptr, nullptr, &jobs_));
        registerBuiltinPlugins(*manager_);
    }

    /// Monotonic counter increasing by `rate` per second for 30 ticks.
    void fillCounter(const std::string& topic, double rate) {
        sensors::SensorCache& cache = caches_.getOrCreate(topic);
        for (int i = 0; i <= 30; ++i) {
            cache.store({i * kNsPerSec, rate * i});
        }
    }

    /// Value sensor oscillating around `center` for 30 ticks.
    void fillValue(const std::string& topic, double center, double amplitude) {
        sensors::SensorCache& cache = caches_.getOrCreate(topic);
        for (int i = 0; i <= 30; ++i) {
            cache.store({i * kNsPerSec, center + amplitude * ((i % 2 == 0) ? 1.0 : -1.0)});
        }
    }

    int load(const std::string& plugin, const std::string& config_text) {
        const auto parsed = common::parseConfig(config_text);
        EXPECT_TRUE(parsed.ok) << parsed.error;
        return manager_->loadPlugin(plugin, parsed.root);
    }

    double outputValue(const std::string& topic) {
        const auto* cache = caches_.find(topic);
        if (cache == nullptr || !cache->latest()) return std::nan("");
        return cache->latest()->value;
    }

    sensors::CacheStore caches_;
    core::QueryEngine engine_;
    jobs::JobManager jobs_;
    std::unique_ptr<OperatorManager> manager_;
};

TEST_F(PluginTest, TesterPerformsQueriesAndReportsCount) {
    ASSERT_EQ(load("tester", R"(
operator t1 {
    interval 1s
    window 10s
    queries 7
    input {
        sensor "<bottomup-1>power"
    }
    output {
        sensor "<bottomup-1>tester-out"
    }
}
)"),
              1);  // one operator holding one unit per server (sequential)
    manager_->tickAll(30 * kNsPerSec);
    // 7 queries over an 10 s window with 11 readings each = 77 readings.
    EXPECT_DOUBLE_EQ(outputValue("/r0/c0/s0/tester-out"), 77.0);
}

TEST_F(PluginTest, AggregatorAverageAndMax) {
    ASSERT_EQ(load("aggregator", R"(
operator avg {
    interval 1s
    window 9s
    operation average
    input {
        sensor "<bottomup-1>power"
    }
    output {
        sensor "<bottomup-1>power-avg"
    }
}
operator peak {
    interval 1s
    window 9s
    operation maximum
    input {
        sensor "<bottomup-1>power"
    }
    output {
        sensor "<bottomup-1>power-max"
    }
}
)"),
              2);
    manager_->tickAll(30 * kNsPerSec);
    // Window t in [21,30]: 5 highs (152) + 5 lows (148) -> avg 150.
    EXPECT_NEAR(outputValue("/r0/c0/s0/power-avg"), 150.0, 1e-9);
    EXPECT_DOUBLE_EQ(outputValue("/r0/c0/s0/power-max"), 152.0);
}

TEST_F(PluginTest, AggregatorDeltaOnCounters) {
    ASSERT_EQ(load("aggregator", R"(
operator cyc {
    interval 1s
    window 10s
    operation sum
    delta true
    input {
        sensor "<bottomup, filter cpu0>cpu-cycles"
    }
    output {
        sensor "<bottomup-1>cycles-delta"
    }
}
)"),
              1);
    manager_->tickAll(30 * kNsPerSec);
    // One cpu0 per server unit; 10 s of 2e9 cycles/s.
    EXPECT_NEAR(outputValue("/r0/c0/s0/cycles-delta"), 2.0e10, 1e3);
}

TEST_F(PluginTest, SmoothingConvergesTowardsMean) {
    ASSERT_EQ(load("smoothing", R"(
operator smooth {
    interval 1s
    alpha 0.25
    input {
        sensor "<bottomup-1>power"
    }
    output {
        sensor "<bottomup-1>power-smooth"
    }
}
)"),
              1);
    for (int tick = 0; tick < 10; ++tick) {
        manager_->tickAll((31 + tick) * kNsPerSec);
    }
    // EWMA of +-2 oscillation around 150 stays within the band.
    EXPECT_NEAR(outputValue("/r0/c0/s0/power-smooth"), 150.0, 2.0);
}

TEST_F(PluginTest, PerfmetricsDerivedValues) {
    ASSERT_EQ(load("perfmetrics", R"(
operator pm {
    interval 1s
    window 10s
    input {
        sensor "<bottomup>cpu-cycles"
        sensor "<bottomup>instructions"
        sensor "<bottomup>cache-misses"
        sensor "<bottomup>vector-ops"
        sensor "<bottomup>branch-misses"
    }
    output {
        sensor "<bottomup>cpi"
        sensor "<bottomup>vecratio"
        sensor "<bottomup>missrate"
        sensor "<bottomup>ips"
    }
}
)"),
              1);
    manager_->tickAll(30 * kNsPerSec);
    EXPECT_NEAR(outputValue("/r0/c0/s0/cpu0/cpi"), 2.0, 1e-9);
    EXPECT_NEAR(outputValue("/r0/c0/s0/cpu0/vecratio"), 0.4, 1e-9);
    EXPECT_NEAR(outputValue("/r0/c0/s0/cpu0/missrate"), 0.01, 1e-9);
    EXPECT_NEAR(outputValue("/r0/c0/s1/cpu1/ips"), 1.0e9, 1.0);
}

TEST_F(PluginTest, HealthcheckerFlagsOutOfRange) {
    ASSERT_EQ(load("healthchecker", R"(
operator hc {
    interval 1s
    check power {
        max 200
    }
    check temp {
        min 10
        max 60
    }
    input {
        sensor "<bottomup-1>power"
        sensor "<bottomup-1>temp"
    }
    output {
        sensor "<bottomup-1>healthy"
    }
}
)"),
              1);
    manager_->tickAll(30 * kNsPerSec);
    EXPECT_DOUBLE_EQ(outputValue("/r0/c0/s0/healthy"), 1.0);
    // Push power beyond the limit on one node and re-tick.
    caches_.getOrCreate("/r0/c0/s0/power").store({31 * kNsPerSec, 500.0});
    manager_->tickAll(31 * kNsPerSec);
    EXPECT_DOUBLE_EQ(outputValue("/r0/c0/s0/healthy"), 0.0);
    EXPECT_DOUBLE_EQ(outputValue("/r0/c0/s1/healthy"), 1.0);
}

TEST_F(PluginTest, RegressorTrainsThenPredicts) {
    ASSERT_EQ(load("regressor", R"(
operator reg {
    interval 1s
    window 4s
    target power
    trainingSamples 60
    trees 8
    maxDepth 6
    input {
        sensor "<bottomup-1>power"
        sensor "<bottomup, filter cpu>cpu-cycles"
        sensor "<bottomup, filter cpu>instructions"
    }
    output {
        sensor "<bottomup-1>power-pred"
    }
}
)"),
              1);
    auto op = std::dynamic_pointer_cast<RegressorOperator>(manager_->findOperator("reg"));
    ASSERT_NE(op, nullptr);
    // Feed ticks: extend sensors and tick until the model trains.
    TimestampNs t = 31 * kNsPerSec;
    for (int i = 0; i < 80 && !op->modelTrained(); ++i, t += kNsPerSec) {
        for (const std::string node : {"/r0/c0/s0", "/r0/c0/s1"}) {
            caches_.getOrCreate(node + "/power")
                .store({t, 150.0 + 2.0 * ((t / kNsPerSec) % 2 == 0 ? 1.0 : -1.0)});
            for (int cpu = 0; cpu < 2; ++cpu) {
                const std::string base = node + "/cpu" + std::to_string(cpu);
                const double sec = static_cast<double>(t / kNsPerSec);
                caches_.getOrCreate(base + "/cpu-cycles").store({t, 2.0e9 * sec});
                caches_.getOrCreate(base + "/instructions").store({t, 1.0e9 * sec});
            }
        }
        manager_->tickAll(t);
    }
    ASSERT_TRUE(op->modelTrained());
    EXPECT_TRUE(std::isfinite(op->oobRmse()));
    manager_->tickAll(t);
    // Prediction lands near the 150 W band.
    EXPECT_NEAR(outputValue("/r0/c0/s0/power-pred"), 150.0, 10.0);
}

TEST_F(PluginTest, RegressorSuppressesOutputUntilTrained) {
    ASSERT_EQ(load("regressor", R"(
operator reg2 {
    interval 1s
    window 4s
    target power
    trainingSamples 100000
    input {
        sensor "<bottomup-1>power"
    }
    output {
        sensor "<bottomup-1>power-pred2"
    }
}
)"),
              1);
    manager_->tickAll(30 * kNsPerSec);
    EXPECT_TRUE(std::isnan(outputValue("/r0/c0/s0/power-pred2")));
}

TEST_F(PluginTest, PersystEmitsJobDeciles) {
    // A job spanning both servers; per-cpu "cpi" metric sensors provided
    // directly (as the perfmetrics stage would).
    for (const std::string node : {"/r0/c0/s0", "/r0/c0/s1"}) {
        for (int cpu = 0; cpu < 2; ++cpu) {
            const std::string topic = node + "/cpu" + std::to_string(cpu) + "/cpi";
            sensors::SensorCache& cache = caches_.getOrCreate(topic);
            // Distinct constant per cpu: 1, 2, 3, 4.
            const double value =
                (node.back() == '0' ? 0.0 : 2.0) + (cpu == 0 ? 1.0 : 2.0);
            for (int i = 0; i <= 30; ++i) cache.store({i * kNsPerSec, value});
        }
    }
    engine_.rebuildTree();
    jobs::JobRecord job;
    job.job_id = "77";
    job.nodes = {"/r0/c0/s0", "/r0/c0/s1"};
    job.start_time = 0;
    jobs_.submit(job);

    ASSERT_EQ(load("persyst", R"(
operator ps {
    interval 1s
    window 5s
    metric cpi
}
)"),
              1);
    manager_->tickAll(30 * kNsPerSec);
    // Values {1,2,3,4}: decile 0 = 1, decile 10 = 4, median = mean = 2.5.
    EXPECT_DOUBLE_EQ(outputValue("/job/77/cpi-dec0"), 1.0);
    EXPECT_DOUBLE_EQ(outputValue("/job/77/cpi-dec10"), 4.0);
    EXPECT_DOUBLE_EQ(outputValue("/job/77/cpi-dec5"), 2.5);
    EXPECT_DOUBLE_EQ(outputValue("/job/77/cpi-avg"), 2.5);
}

TEST_F(PluginTest, ClusteringLabelsNodesAndOutliers) {
    // Build 30 synthetic "nodes" with power/temp/col_idle sensors forming
    // two groups plus one extreme outlier.
    std::vector<std::string> nodes;
    for (int i = 0; i < 31; ++i) {
        const std::string node = "/cl/n" + std::to_string(i);
        nodes.push_back(node);
        double power = (i < 15) ? 100.0 : 200.0;
        double temp = (i < 15) ? 45.0 : 52.0;
        double idle_rate = (i < 15) ? 500.0 : 50.0;  // cs per second
        if (i == 30) {  // anomalous node: high power at high idle
            power = 320.0;
            temp = 58.0;
            idle_rate = 500.0;
        }
        auto& pc = caches_.getOrCreate(node + "/power");
        auto& tc = caches_.getOrCreate(node + "/temp");
        auto& ic = caches_.getOrCreate(node + "/col_idle");
        common::Rng rng(static_cast<std::uint64_t>(i) + 1);
        for (int k = 0; k <= 20; ++k) {
            pc.store({k * kNsPerSec, power + rng.gaussian(0.0, 2.0)});
            tc.store({k * kNsPerSec, temp + rng.gaussian(0.0, 0.3)});
            ic.store({k * kNsPerSec, idle_rate * k});
        }
    }
    engine_.rebuildTree();
    ASSERT_EQ(load("clustering", R"(
operator cl {
    interval 1h
    window 20s
    maxComponents 6
    outlierThreshold 0.001
    input {
        sensor "<topdown+1, filter /cl/>power"
        sensor "<topdown+1, filter /cl/>temp"
        sensor "<topdown+1, filter /cl/>col_idle"
    }
    output {
        sensor "<topdown+1, filter /cl/>cluster-label"
    }
}
)"),
              1);
    manager_->tickAll(20 * kNsPerSec);
    auto op = std::dynamic_pointer_cast<ClusteringOperator>(manager_->findOperator("cl"));
    ASSERT_NE(op, nullptr);
    ASSERT_TRUE(op->modelTrained());
    // Two groups are separated; the anomalous node is an outlier (-1).
    const double label_a = outputValue("/cl/n0/cluster-label");
    const double label_b = outputValue("/cl/n20/cluster-label");
    EXPECT_GE(label_a, 0.0);
    EXPECT_GE(label_b, 0.0);
    EXPECT_NE(label_a, label_b);
    EXPECT_DOUBLE_EQ(outputValue("/cl/n30/cluster-label"), -1.0);
    // Same-group nodes share a label.
    EXPECT_DOUBLE_EQ(outputValue("/cl/n1/cluster-label"), label_a);
    EXPECT_DOUBLE_EQ(outputValue("/cl/n21/cluster-label"), label_b);
}

TEST_F(PluginTest, ClusteringUsesIdleRateNotCounter) {
    // Verifies the rate conversion: a monotonic col_idle counter must enter
    // the model as its growth rate.
    for (int i = 0; i < 6; ++i) {
        const std::string node = "/rt/n" + std::to_string(i);
        auto& pc = caches_.getOrCreate(node + "/col_idle");
        for (int k = 0; k <= 10; ++k) {
            pc.store({k * kNsPerSec, 100.0 * k + i});  // rate 100 cs/s each
        }
    }
    engine_.rebuildTree();
    ASSERT_EQ(load("clustering", R"(
operator rt {
    interval 1h
    window 10s
    input {
        sensor "<topdown+1, filter /rt/>col_idle"
    }
    output {
        sensor "<topdown+1, filter /rt/>rt-label"
    }
}
)"),
              1);
    manager_->tickAll(10 * kNsPerSec);
    auto op = std::dynamic_pointer_cast<ClusteringOperator>(manager_->findOperator("rt"));
    ASSERT_NE(op, nullptr);
    const auto point = op->lastPointOf("/rt/n0");
    ASSERT_EQ(point.size(), 1u);
    EXPECT_NEAR(point[0], 100.0, 1.0);  // the rate, not the raw counter value
}

}  // namespace
}  // namespace wm::plugins
