#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "common/scheduler.h"
#include "common/thread_pool.h"

namespace wm::common {
namespace {

TEST(ThreadPool, ExecutesSubmittedTasks) {
    ThreadPool pool(2);
    auto future = pool.submit([] { return 21 * 2; });
    EXPECT_EQ(future.get(), 42);
}

TEST(ThreadPool, RunsManyTasks) {
    ThreadPool pool(4);
    std::atomic<int> counter{0};
    for (int i = 0; i < 200; ++i) {
        pool.post([&counter] { counter.fetch_add(1); });
    }
    pool.waitIdle();
    EXPECT_EQ(counter.load(), 200);
}

TEST(ThreadPool, PropagatesExceptionsThroughFutures) {
    ThreadPool pool(1);
    auto future = pool.submit([]() -> int { throw std::runtime_error("boom"); });
    EXPECT_THROW(future.get(), std::runtime_error);
}

TEST(ThreadPool, SurvivesThrowingPostedTasks) {
    ThreadPool pool(1);
    pool.post([] { throw std::runtime_error("swallowed"); });
    auto future = pool.submit([] { return 7; });
    EXPECT_EQ(future.get(), 7);
}

TEST(ThreadPool, AtLeastOneThread) {
    ThreadPool pool(0);
    EXPECT_EQ(pool.threadCount(), 1u);
}

TEST(ThreadPool, WaitIdleBlocksUntilDone) {
    ThreadPool pool(2);
    std::atomic<int> done{0};
    for (int i = 0; i < 8; ++i) {
        pool.post([&done] {
            std::this_thread::sleep_for(std::chrono::milliseconds(5));
            done.fetch_add(1);
        });
    }
    pool.waitIdle();
    EXPECT_EQ(done.load(), 8);
}

TEST(PeriodicScheduler, FiresPeriodically) {
    ThreadPool pool(2);
    PeriodicScheduler scheduler(pool);
    std::atomic<int> ticks{0};
    scheduler.schedulePeriodic(20 * kNsPerMs, [&ticks](TimestampNs) { ticks.fetch_add(1); });
    std::this_thread::sleep_for(std::chrono::milliseconds(150));
    scheduler.stop();
    const int observed = ticks.load();
    EXPECT_GE(observed, 3);
    EXPECT_LE(observed, 10);
}

TEST(PeriodicScheduler, TickTimestampsAreGridAligned) {
    ThreadPool pool(1);
    PeriodicScheduler scheduler(pool);
    std::vector<TimestampNs> stamps;
    std::mutex mutex;
    const TimestampNs interval = 25 * kNsPerMs;
    scheduler.schedulePeriodic(interval, [&](TimestampNs t) {
        std::lock_guard lock(mutex);
        stamps.push_back(t);
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(120));
    scheduler.stop();
    std::lock_guard lock(mutex);
    ASSERT_GE(stamps.size(), 2u);
    for (TimestampNs t : stamps) EXPECT_EQ(t % interval, 0);
}

TEST(PeriodicScheduler, CancelStopsFiring) {
    ThreadPool pool(1);
    PeriodicScheduler scheduler(pool);
    std::atomic<int> ticks{0};
    const TaskId id =
        scheduler.schedulePeriodic(10 * kNsPerMs, [&ticks](TimestampNs) { ticks.fetch_add(1); });
    std::this_thread::sleep_for(std::chrono::milliseconds(40));
    EXPECT_TRUE(scheduler.cancel(id));
    const int at_cancel = ticks.load();
    std::this_thread::sleep_for(std::chrono::milliseconds(60));
    EXPECT_LE(ticks.load(), at_cancel + 1);  // at most one in-flight tick
    EXPECT_FALSE(scheduler.cancel(id));
}

TEST(PeriodicScheduler, OneShotFiresOnce) {
    ThreadPool pool(1);
    PeriodicScheduler scheduler(pool);
    std::atomic<int> fired{0};
    scheduler.scheduleOnce(5 * kNsPerMs, [&fired](TimestampNs) { fired.fetch_add(1); });
    std::this_thread::sleep_for(std::chrono::milliseconds(80));
    EXPECT_EQ(fired.load(), 1);
    EXPECT_EQ(scheduler.taskCount(), 0u);
}

TEST(PeriodicScheduler, StopPreventsFurtherTicks) {
    ThreadPool pool(1);
    auto scheduler = std::make_unique<PeriodicScheduler>(pool);
    std::atomic<int> ticks{0};
    scheduler->schedulePeriodic(10 * kNsPerMs, [&ticks](TimestampNs) { ticks.fetch_add(1); });
    std::this_thread::sleep_for(std::chrono::milliseconds(35));
    scheduler->stop();
    const int at_stop = ticks.load();
    std::this_thread::sleep_for(std::chrono::milliseconds(40));
    EXPECT_EQ(ticks.load(), at_stop);
}

}  // namespace
}  // namespace wm::common
