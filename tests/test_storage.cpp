#include "storage/storage_backend.h"

#include <gtest/gtest.h>

#include <fstream>

#include "common/fault.h"

namespace wm::storage {
namespace {

using common::kNsPerSec;
using sensors::Reading;

TEST(StorageBackend, InsertAndRangeQuery) {
    StorageBackend storage;
    for (int i = 0; i < 10; ++i) {
        storage.insert("/a/power", {i * kNsPerSec, static_cast<double>(i)});
    }
    const auto view = storage.query("/a/power", 3 * kNsPerSec, 6 * kNsPerSec);
    ASSERT_EQ(view.size(), 4u);
    EXPECT_DOUBLE_EQ(view.front().value, 3.0);
    EXPECT_DOUBLE_EQ(view.back().value, 6.0);
}

TEST(StorageBackend, QueryUnknownTopicIsEmpty) {
    StorageBackend storage;
    EXPECT_TRUE(storage.query("/none", 0, 100).empty());
    EXPECT_FALSE(storage.latest("/none").has_value());
}

TEST(StorageBackend, OutOfOrderInsertsAreSorted) {
    StorageBackend storage;
    storage.insert("/s", {30, 3.0});
    storage.insert("/s", {10, 1.0});
    storage.insert("/s", {20, 2.0});
    const auto view = storage.query("/s", 0, 100);
    ASSERT_EQ(view.size(), 3u);
    EXPECT_EQ(view[0].timestamp, 10);
    EXPECT_EQ(view[1].timestamp, 20);
    EXPECT_EQ(view[2].timestamp, 30);
}

TEST(StorageBackend, BatchInsert) {
    StorageBackend storage;
    storage.insertBatch("/s", {{1, 1.0}, {2, 2.0}, {3, 3.0}});
    EXPECT_EQ(storage.query("/s", 0, 10).size(), 3u);
    EXPECT_EQ(storage.stats().inserts, 3u);
}

// The idempotence backstop for wire-level redelivery (docs/RESILIENCE.md,
// "Wire transport"): the collect agent's sequence watermark dies with the
// process, so after a server crash+restart a client's ring replay
// re-delivers readings the WAL already recovered. An exact
// (timestamp, value) duplicate must be absorbed as already-stored.
TEST(StorageBackend, ExactDuplicateInsertIsIdempotent) {
    StorageBackend storage;
    EXPECT_TRUE(storage.insert("/s", {10, 1.0}));
    EXPECT_TRUE(storage.insert("/s", {10, 1.0}));  // absorbed, not doubled
    EXPECT_EQ(storage.query("/s", 0, 100).size(), 1u);
    EXPECT_EQ(storage.stats().duplicate_drops, 1u);
    // Same timestamp with a DIFFERENT value is a distinct reading (two
    // sensors legitimately colliding on a coarse clock), not a duplicate.
    EXPECT_TRUE(storage.insert("/s", {10, 2.0}));
    EXPECT_EQ(storage.query("/s", 0, 100).size(), 2u);
    EXPECT_EQ(storage.stats().duplicate_drops, 1u);
}

TEST(StorageBackend, BatchInsertAbsorbsExactDuplicates) {
    StorageBackend storage;
    EXPECT_EQ(storage.insertBatch("/s", {{1, 1.0}, {2, 2.0}}), 2u);
    // One duplicate, one fresh: the duplicate is neither rejected nor
    // counted as inserted.
    EXPECT_EQ(storage.insertBatch("/s", {{2, 2.0}, {3, 3.0}}), 1u);
    EXPECT_EQ(storage.query("/s", 0, 10).size(), 3u);
    EXPECT_EQ(storage.stats().duplicate_drops, 1u);
    EXPECT_EQ(storage.stats().rejected_inserts, 0u);
}

TEST(StorageBackend, LatestReading) {
    StorageBackend storage;
    storage.insert("/s", {5, 50.0});
    storage.insert("/s", {9, 90.0});
    const auto latest = storage.latest("/s");
    ASSERT_TRUE(latest.has_value());
    EXPECT_EQ(latest->timestamp, 9);
}

TEST(StorageBackend, MetadataRoundTrip) {
    StorageBackend storage;
    sensors::SensorMetadata metadata;
    metadata.topic = "/s";
    metadata.unit = "W";
    metadata.monotonic = true;
    storage.publishMetadata(metadata);
    const auto out = storage.metadataFor("/s");
    ASSERT_TRUE(out.has_value());
    EXPECT_EQ(out->unit, "W");
    EXPECT_TRUE(out->monotonic);
    EXPECT_FALSE(storage.metadataFor("/other").has_value());
}

TEST(StorageBackend, TopicsMatchingFilter) {
    StorageBackend storage;
    storage.insert("/rack0/server0/power", {1, 1.0});
    storage.insert("/rack0/server1/power", {1, 1.0});
    storage.insert("/rack0/server1/temp", {1, 1.0});
    EXPECT_EQ(storage.topicsMatching("/rack0/+/power").size(), 2u);
    EXPECT_EQ(storage.topicsMatching("#").size(), 3u);
    EXPECT_EQ(storage.topics().size(), 3u);
}

TEST(StorageBackend, TtlPruning) {
    StorageBackend storage(10 * kNsPerSec);
    for (int i = 0; i < 100; ++i) {
        storage.insert("/s", {i * kNsPerSec, static_cast<double>(i)});
    }
    const std::size_t removed = storage.pruneExpired();
    EXPECT_EQ(removed, 89u);  // keep t in [89, 99]
    EXPECT_EQ(storage.query("/s", 0, 1000 * kNsPerSec).size(), 11u);
}

TEST(StorageBackend, PerSensorTtlOverridesDefault) {
    StorageBackend storage(10 * kNsPerSec);
    sensors::SensorMetadata metadata;
    metadata.topic = "/long";
    metadata.ttl_ns = 50 * kNsPerSec;
    storage.publishMetadata(metadata);
    for (int i = 0; i < 100; ++i) {
        storage.insert("/long", {i * kNsPerSec, 0.0});
    }
    storage.pruneExpired();
    EXPECT_EQ(storage.query("/long", 0, 1000 * kNsPerSec).size(), 51u);
}

TEST(StorageBackend, DropSensor) {
    StorageBackend storage;
    storage.insert("/s", {1, 1.0});
    EXPECT_TRUE(storage.dropSensor("/s"));
    EXPECT_FALSE(storage.dropSensor("/s"));
    EXPECT_TRUE(storage.topics().empty());
}

TEST(StorageBackend, CsvRoundTrip) {
    const std::string path = ::testing::TempDir() + "/wm_storage_test.csv";
    StorageBackend storage;
    storage.insert("/a", {1, 1.5});
    storage.insert("/a", {2, 2.5});
    storage.insert("/b", {3, -4.0});
    ASSERT_TRUE(storage.dumpCsv(path));

    StorageBackend loaded;
    ASSERT_TRUE(loaded.loadCsv(path));
    EXPECT_EQ(loaded.topics().size(), 2u);
    const auto a = loaded.query("/a", 0, 10);
    ASSERT_EQ(a.size(), 2u);
    EXPECT_DOUBLE_EQ(a[1].value, 2.5);
    const auto b = loaded.query("/b", 0, 10);
    ASSERT_EQ(b.size(), 1u);
    EXPECT_DOUBLE_EQ(b[0].value, -4.0);
}

TEST(StorageBackend, LoadCsvSkipsAndCountsMalformedRows) {
    const std::string path = ::testing::TempDir() + "/wm_storage_malformed.csv";
    {
        std::ofstream out(path);
        out << "topic,timestamp,value\n";
        out << "/a,1,1.5\n";
        out << "not-a-row\n";       // no commas at all
        out << "/a,two,2.5\n";      // non-numeric timestamp
        out << "/a,3,nope\n";       // non-numeric value
        out << ",4,1.0\n";          // empty topic
        out << "/b,6,6.5junk\n";    // trailing garbage after the value
        out << "/a,5,5.5\n";
    }
    StorageBackend storage;
    const CsvLoadResult result = storage.loadCsv(path);
    ASSERT_TRUE(result);
    EXPECT_EQ(result.rows_loaded, 2u);
    EXPECT_EQ(result.rows_malformed, 5u);
    EXPECT_EQ(result.rows_rejected, 0u);
    const auto a = storage.query("/a", 0, 10);
    ASSERT_EQ(a.size(), 2u);
    EXPECT_DOUBLE_EQ(a[1].value, 5.5);
}

TEST(StorageBackend, LoadCsvMissingFileIsFalsy) {
    StorageBackend storage;
    const CsvLoadResult result = storage.loadCsv("/nonexistent/wm.csv");
    EXPECT_FALSE(result);
    EXPECT_EQ(result.rows_loaded, 0u);
}

TEST(StorageBackend, LoadCsvCountsRowsTheBackendRefused) {
    const std::string path = ::testing::TempDir() + "/wm_storage_refused.csv";
    {
        std::ofstream out(path);
        out << "topic,timestamp,value\n";
        out << "/a,1,1.0\n";
        out << "/a,2,2.0\n";
    }
    common::fault::FaultInjector injector(1);
    injector.armFromText("storage.insert", "fail once");
    common::fault::ScopedInjector scope(injector);
    StorageBackend storage;
    const CsvLoadResult result = storage.loadCsv(path);
    ASSERT_TRUE(result);
    EXPECT_EQ(result.rows_loaded, 1u);
    EXPECT_EQ(result.rows_malformed, 0u);
    EXPECT_EQ(result.rows_rejected, 1u);
}

TEST(StorageBackend, StatsCountEverything) {
    StorageBackend storage;
    storage.insert("/a", {1, 1.0});
    storage.insert("/b", {1, 1.0});
    storage.query("/a", 0, 10);
    const StorageStats stats = storage.stats();
    EXPECT_EQ(stats.sensor_count, 2u);
    EXPECT_EQ(stats.reading_count, 2u);
    EXPECT_EQ(stats.inserts, 2u);
    EXPECT_GE(stats.queries, 1u);
}

}  // namespace
}  // namespace wm::storage
