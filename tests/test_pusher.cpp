// Pusher and monitoring-plugin tests: sampling, cache filling, MQTT
// publication, and the simulator-backed sensor groups.

#include "pusher/pusher.h"

#include <gtest/gtest.h>

#include <thread>

#include "pusher/plugins/perfsim_group.h"
#include "pusher/plugins/procfssim_group.h"
#include "pusher/plugins/sysfssim_group.h"
#include "pusher/plugins/tester_group.h"

namespace wm::pusher {
namespace {

using common::kNsPerMs;
using common::kNsPerSec;

TEST(TesterGroup, ProducesMonotonicSensors) {
    TesterGroupConfig config;
    config.num_sensors = 5;
    config.prefix = "/test";
    TesterGroup group(config);
    EXPECT_EQ(group.sensors().size(), 5u);
    EXPECT_TRUE(group.sensors()[0].monotonic);
    const auto first = group.read(kNsPerSec);
    const auto second = group.read(2 * kNsPerSec);
    ASSERT_EQ(first.size(), 5u);
    EXPECT_EQ(first[0].topic, "/test/test0");
    EXPECT_LT(first[0].reading.value, second[0].reading.value);
    EXPECT_EQ(group.ticks(), 2u);
}

TEST(SimGroups, ShareOneNodeModel) {
    auto node = std::make_shared<SimulatedNode>(4, 42);
    node->startApp(simulator::AppKind::kHpl);

    PerfsimGroupConfig perf_config;
    perf_config.node_path = "/r0/c0/s0";
    PerfsimGroup perf(perf_config, node);
    SysfssimGroupConfig sys_config;
    sys_config.node_path = "/r0/c0/s0";
    SysfssimGroup sys(sys_config, node);
    ProcfssimGroupConfig proc_config;
    proc_config.node_path = "/r0/c0/s0";
    ProcfssimGroup proc(proc_config, node);

    // 4 cpus x 5 counters.
    EXPECT_EQ(perf.sensors().size(), 20u);
    EXPECT_EQ(sys.sensors().size(), 2u);
    EXPECT_EQ(proc.sensors().size(), 2u);

    const auto perf_readings = perf.read(10 * kNsPerSec);
    const auto sys_readings = sys.read(10 * kNsPerSec);
    const auto proc_readings = proc.read(10 * kNsPerSec);
    EXPECT_EQ(perf_readings.size(), 20u);
    ASSERT_EQ(sys_readings.size(), 2u);
    EXPECT_EQ(sys_readings[0].topic, "/r0/c0/s0/power");
    EXPECT_GT(sys_readings[0].reading.value, 50.0);  // plausible node power
    ASSERT_EQ(proc_readings.size(), 2u);
    EXPECT_EQ(proc_readings[0].topic, "/r0/c0/s0/memfree");
    // Counters advance between samples.
    const auto later = perf.read(20 * kNsPerSec);
    EXPECT_GT(later[0].reading.value, perf_readings[0].reading.value);
}

TEST(SimulatedNode, TimeNeverRunsBackwards) {
    SimulatedNode node(2, 7);
    const auto at_10 = node.sampleAt(10 * kNsPerSec);
    const auto at_5 = node.sampleAt(5 * kNsPerSec);  // past: state unchanged
    EXPECT_DOUBLE_EQ(at_5.cores[0].cycles, at_10.cores[0].cycles);
}

TEST(Pusher, SampleOnceFillsCaches) {
    Pusher pusher({});
    TesterGroupConfig config;
    config.num_sensors = 10;
    pusher.addGroup(std::make_unique<TesterGroup>(config));
    EXPECT_EQ(pusher.cacheStore().sensorCount(), 10u);  // pre-created
    pusher.sampleOnce(kNsPerSec);
    EXPECT_EQ(pusher.readingsSampled(), 10u);
    const auto* cache = pusher.cacheStore().find("/test/test3");
    ASSERT_NE(cache, nullptr);
    ASSERT_TRUE(cache->latest().has_value());
    EXPECT_EQ(cache->latest()->timestamp, kNsPerSec);
}

TEST(Pusher, PublishesOverMqtt) {
    mqtt::Broker broker;
    std::atomic<int> received{0};
    broker.subscribe("/test/#", [&](const mqtt::Message&) { received.fetch_add(1); });
    PusherConfig config;
    Pusher pusher(config, &broker);
    TesterGroupConfig tester;
    tester.num_sensors = 4;
    pusher.addGroup(std::make_unique<TesterGroup>(tester));
    pusher.sampleOnce(kNsPerSec);
    EXPECT_EQ(received.load(), 4);
    EXPECT_EQ(pusher.messagesPublished(), 4u);
}

TEST(Pusher, RespectsPublishFlagInMetadata) {
    // A group whose sensors carry publish=false must stay cache-local.
    class PrivateGroup final : public SensorGroup {
      public:
        const std::string& name() const override { return name_; }
        common::TimestampNs intervalNs() const override { return kNsPerSec; }
        std::vector<sensors::SensorMetadata> sensors() const override {
            sensors::SensorMetadata metadata;
            metadata.topic = "/private/value";
            metadata.publish = false;
            return {metadata};
        }
        std::vector<SampledReading> read(common::TimestampNs t) override {
            return {{"/private/value", {t, 1.0}}};
        }

      private:
        std::string name_ = "private";
    };

    mqtt::Broker broker;
    std::atomic<int> received{0};
    broker.subscribe("#", [&](const mqtt::Message&) { received.fetch_add(1); });
    Pusher pusher({}, &broker);
    pusher.addGroup(std::make_unique<PrivateGroup>());
    pusher.sampleOnce(kNsPerSec);
    EXPECT_EQ(received.load(), 0);
    EXPECT_NE(pusher.cacheStore().find("/private/value"), nullptr);
}

TEST(Pusher, ScheduledSamplingRuns) {
    Pusher pusher({});
    TesterGroupConfig config;
    config.num_sensors = 2;
    config.interval_ns = 30 * kNsPerMs;
    pusher.addGroup(std::make_unique<TesterGroup>(config));
    pusher.start();
    EXPECT_TRUE(pusher.running());
    std::this_thread::sleep_for(std::chrono::milliseconds(150));
    pusher.stop();
    EXPECT_FALSE(pusher.running());
    EXPECT_GE(pusher.readingsSampled(), 4u);
    const std::uint64_t at_stop = pusher.readingsSampled();
    std::this_thread::sleep_for(std::chrono::milliseconds(70));
    EXPECT_EQ(pusher.readingsSampled(), at_stop);
}

TEST(Pusher, AddGroupWhileRunning) {
    Pusher pusher({});
    pusher.start();
    TesterGroupConfig config;
    config.num_sensors = 1;
    config.interval_ns = 20 * kNsPerMs;
    pusher.addGroup(std::make_unique<TesterGroup>(config));
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    pusher.stop();
    EXPECT_GE(pusher.readingsSampled(), 2u);
    EXPECT_EQ(pusher.groupCount(), 1u);
}

}  // namespace
}  // namespace wm::pusher
