// Tests for the feedback-loop (controller) and filesink plugins, including a
// closed-loop power-capping scenario against the simulated node (the paper's
// "runtime optimization" taxonomy class realised end to end).

#include <gtest/gtest.h>

#include <fstream>

#include "core/hosting.h"
#include "core/operator_manager.h"
#include "plugins/controller_operator.h"
#include "plugins/filesink_operator.h"
#include "plugins/registry.h"
#include "pusher/plugins/sysfssim_group.h"
#include "pusher/pusher.h"

namespace wm::plugins {
namespace {

using common::kNsPerSec;
using common::TimestampNs;

class ControllerTest : public ::testing::Test {
  protected:
    void SetUp() override {
        node_ = std::make_shared<pusher::SimulatedNode>(8, 77);
        node_->startApp(simulator::AppKind::kHpl);
        pusher_ = std::make_unique<pusher::Pusher>(pusher::PusherConfig{"/r0/c0/s0"});
        pusher::SysfssimGroupConfig sys;
        sys.node_path = "/r0/c0/s0";
        pusher_->addGroup(std::make_unique<pusher::SysfssimGroup>(sys, node_));
        engine_.setCacheStore(&pusher_->cacheStore());

        auto context =
            core::makeHostContext(engine_, &pusher_->cacheStore(), nullptr, nullptr);
        // Wire the DVFS knob of the simulated node as the actuator.
        context.actuate = [this](const std::string& knob, const std::string& target,
                                 double value) {
            if (knob != "dvfs" || target != "/r0/c0/s0") return false;
            node_->setFrequencyScale(value);
            return true;
        };
        manager_ = std::make_unique<core::OperatorManager>(std::move(context));
        registerBuiltinPlugins(*manager_);

        pusher_->sampleOnce(kNsPerSec);
        engine_.rebuildTree();
    }

    int loadController(const std::string& extra = "") {
        const auto parsed = common::parseConfig(
            "operator cap {\n"
            "    interval 1s\n"
            "    knob dvfs\n"
            "    setpoint 200\n"
            "    gain 0.15\n" +
            extra +
            "    input {\n        sensor \"<bottomup>power\"\n    }\n"
            "    output {\n        sensor \"<bottomup>freq-scale\"\n    }\n"
            "}\n");
        EXPECT_TRUE(parsed.ok) << parsed.error;
        return manager_->loadPlugin("controller", parsed.root);
    }

    std::shared_ptr<pusher::SimulatedNode> node_;
    std::unique_ptr<pusher::Pusher> pusher_;
    core::QueryEngine engine_;
    std::unique_ptr<core::OperatorManager> manager_;
};

TEST_F(ControllerTest, PowerCappingLoopConverges) {
    ASSERT_EQ(loadController(), 1);
    // Closed loop: sample -> control -> actuate -> node responds.
    TimestampNs t = 2 * kNsPerSec;
    for (int i = 0; i < 120; ++i, t += kNsPerSec) {
        pusher_->sampleOnce(t);
        manager_->tickAll(t);
    }
    // HPL on this node draws well above 200 W uncapped; the loop must pull
    // the frequency down and hold power near the cap.
    EXPECT_LT(node_->frequencyScale(), 0.999);
    double power_sum = 0.0;
    for (int i = 0; i < 30; ++i, t += kNsPerSec) {
        pusher_->sampleOnce(t);
        manager_->tickAll(t);
        power_sum += pusher_->cacheStore().find("/r0/c0/s0/power")->latest()->value;
    }
    const double avg_power = power_sum / 30.0;
    EXPECT_NEAR(avg_power, 200.0, 25.0) << "loop did not settle near the cap";
    auto op =
        std::dynamic_pointer_cast<ControllerOperator>(manager_->findOperator("cap"));
    ASSERT_NE(op, nullptr);
    EXPECT_GT(op->actuationCount(), 5u);
}

TEST_F(ControllerTest, KnobValueIsPublishedAsSensor) {
    ASSERT_EQ(loadController(), 1);
    TimestampNs t = 2 * kNsPerSec;
    for (int i = 0; i < 20; ++i, t += kNsPerSec) {
        pusher_->sampleOnce(t);
        manager_->tickAll(t);
    }
    const auto* cache = pusher_->cacheStore().find("/r0/c0/s0/freq-scale");
    ASSERT_NE(cache, nullptr);
    ASSERT_TRUE(cache->latest().has_value());
    EXPECT_LE(cache->latest()->value, 1.0);
    EXPECT_GE(cache->latest()->value, 0.5);
    auto op =
        std::dynamic_pointer_cast<ControllerOperator>(manager_->findOperator("cap"));
    EXPECT_DOUBLE_EQ(op->knobValueOf("/r0/c0/s0"), cache->latest()->value);
}

TEST_F(ControllerTest, DeadbandPreventsChatter) {
    // A cap far above the achievable power: the controller must not actuate.
    const auto parsed = common::parseConfig(R"(
operator inert {
    interval 1s
    knob dvfs
    setpoint 100000
    gain 0.15
    input {
        sensor "<bottomup>power"
    }
    output {
        sensor "<bottomup>inert-scale"
    }
}
)");
    ASSERT_TRUE(parsed.ok);
    ASSERT_EQ(manager_->loadPlugin("controller", parsed.root), 1);
    TimestampNs t = 2 * kNsPerSec;
    for (int i = 0; i < 10; ++i, t += kNsPerSec) {
        pusher_->sampleOnce(t);
        manager_->tickAll(t);
    }
    // Error is negative (below setpoint) and way beyond deadband: the
    // controller raises the knob, but it is already at its maximum.
    EXPECT_DOUBLE_EQ(node_->frequencyScale(), 1.0);
}

TEST_F(ControllerTest, MissingSetpointCreatesNothing) {
    const auto parsed = common::parseConfig(R"(
operator broken {
    interval 1s
    input {
        sensor "<bottomup>power"
    }
    output {
        sensor "<bottomup>x"
    }
}
)");
    ASSERT_TRUE(parsed.ok);
    EXPECT_EQ(manager_->loadPlugin("controller", parsed.root), 0);
}

TEST_F(ControllerTest, MissingActuatorStillTracksKnob) {
    // Without an actuate callback, the controller keeps its internal knob
    // state (and output sensor) but cannot change the system.
    auto context =
        core::makeHostContext(engine_, &pusher_->cacheStore(), nullptr, nullptr);
    core::OperatorManager manager(std::move(context));  // no actuate
    registerBuiltinPlugins(manager);
    const auto parsed = common::parseConfig(R"(
operator cap2 {
    interval 1s
    setpoint 200
    gain 0.15
    input {
        sensor "<bottomup>power"
    }
    output {
        sensor "<bottomup>shadow-scale"
    }
}
)");
    ASSERT_TRUE(parsed.ok);
    ASSERT_EQ(manager.loadPlugin("controller", parsed.root), 1);
    TimestampNs t = 2 * kNsPerSec;
    for (int i = 0; i < 10; ++i, t += kNsPerSec) {
        pusher_->sampleOnce(t);
        manager.tickAll(t);
    }
    auto op = std::dynamic_pointer_cast<ControllerOperator>(manager.findOperator("cap2"));
    EXPECT_EQ(op->actuationCount(), 0u);
    EXPECT_LT(op->knobValueOf("/r0/c0/s0"), 1.0);  // internal state advanced
    EXPECT_DOUBLE_EQ(node_->frequencyScale(), 1.0);  // the node is untouched
}

TEST_F(ControllerTest, FilesinkRecordsReadings) {
    const std::string path = ::testing::TempDir() + "/wm_filesink_test.csv";
    std::remove(path.c_str());
    const auto parsed = common::parseConfig(
        "operator sink {\n"
        "    interval 1s\n"
        "    window 5s\n"
        "    path \"" + path + "\"\n"
        "    autoFlush true\n"
        "    input {\n        sensor \"<bottomup>power\"\n    }\n"
        "}\n");
    ASSERT_TRUE(parsed.ok) << parsed.error;
    ASSERT_EQ(manager_->loadPlugin("filesink", parsed.root), 1);
    TimestampNs t = 2 * kNsPerSec;
    for (int i = 0; i < 10; ++i, t += kNsPerSec) {
        pusher_->sampleOnce(t);
        manager_->tickAll(t);
    }
    std::ifstream in(path);
    ASSERT_TRUE(in.is_open());
    std::string line;
    std::getline(in, line);
    EXPECT_EQ(line, "topic,timestamp,value");
    std::size_t rows = 0;
    std::set<std::string> timestamps;
    while (std::getline(in, line)) {
        if (line.empty()) continue;
        ++rows;
        EXPECT_EQ(line.rfind("/r0/c0/s0/power,", 0), 0u) << line;
        timestamps.insert(line);
    }
    EXPECT_GE(rows, 10u);
    EXPECT_EQ(timestamps.size(), rows) << "duplicate rows written";
}

TEST_F(ControllerTest, FilesinkAcceptsAbsoluteInputs) {
    const std::string path = ::testing::TempDir() + "/wm_filesink_abs.csv";
    std::remove(path.c_str());
    const auto parsed = common::parseConfig(
        "operator sinkabs {\n"
        "    interval 1s\n"
        "    window 5s\n"
        "    path \"" + path + "\"\n"
        "    autoFlush true\n"
        "    input {\n        sensor /r0/c0/s0/power\n    }\n"
        "}\n");
    ASSERT_TRUE(parsed.ok) << parsed.error;
    ASSERT_EQ(manager_->loadPlugin("filesink", parsed.root), 1);
    TimestampNs t = 2 * kNsPerSec;
    for (int i = 0; i < 5; ++i, t += kNsPerSec) {
        pusher_->sampleOnce(t);
        manager_->tickAll(t);
    }
    std::ifstream in(path);
    ASSERT_TRUE(in.is_open());
    std::string line;
    std::getline(in, line);  // header
    std::size_t rows = 0;
    while (std::getline(in, line)) {
        if (!line.empty()) ++rows;
    }
    EXPECT_GE(rows, 5u);
}

TEST_F(ControllerTest, FilesinkRequiresPath) {
    const auto parsed = common::parseConfig(R"(
operator sink2 {
    interval 1s
    input {
        sensor "<bottomup>power"
    }
}
)");
    ASSERT_TRUE(parsed.ok);
    EXPECT_EQ(manager_->loadPlugin("filesink", parsed.root), 0);
}

}  // namespace
}  // namespace wm::plugins
