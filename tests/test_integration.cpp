// Full-stack integration tests reproducing the paper's deployment scenarios
// end to end, on virtual time:
//
//  1. The Case-Study-2 pipeline: simulator-backed Pushers run perfmetrics
//     operators whose CPI outputs flow over MQTT into a Collect Agent, where
//     a persyst job operator aggregates them into per-job deciles.
//  2. The Case-Study-1 loop: a regressor operator inside a Pusher trains on
//     live counters and predicts node power.
//  3. On-demand operators triggered through the REST API over real HTTP.

#include <gtest/gtest.h>

#include <cmath>

#include "collectagent/collect_agent.h"
#include "common/fault.h"
#include "core/hosting.h"
#include "core/operator_manager.h"
#include "plugins/regressor_operator.h"
#include "plugins/registry.h"
#include "pusher/plugins/perfsim_group.h"
#include "pusher/plugins/sysfssim_group.h"
#include "pusher/pusher.h"
#include "rest/http_server.h"

namespace wm {
namespace {

using common::kNsPerSec;
using common::TimestampNs;

/// A two-node simulated mini-cluster with the full DCDB data path and
/// Wintermute hosted in both Pushers and the Collect Agent.
class MiniCluster {
  public:
    static constexpr std::size_t kCpusPerNode = 4;

    explicit MiniCluster(simulator::AppKind app) {
        agent_ = std::make_unique<collectagent::CollectAgent>(
            collectagent::CollectAgentConfig{}, broker_, storage_);
        agent_->start();
        for (std::size_t n = 0; n < 2; ++n) {
            const std::string node_path = "/r0/c0/s" + std::to_string(n);
            node_paths_.push_back(node_path);
            auto node = std::make_shared<pusher::SimulatedNode>(kCpusPerNode, 100 + n);
            node->startApp(app);
            sim_nodes_.push_back(node);

            auto p = std::make_unique<pusher::Pusher>(pusher::PusherConfig{node_path},
                                                      &broker_);
            pusher::PerfsimGroupConfig perf;
            perf.node_path = node_path;
            p->addGroup(std::make_unique<pusher::PerfsimGroup>(perf, node));
            pusher::SysfssimGroupConfig sys;
            sys.node_path = node_path;
            p->addGroup(std::make_unique<pusher::SysfssimGroup>(sys, node));
            pushers_.push_back(std::move(p));
        }
        // Wintermute in each Pusher.
        for (auto& p : pushers_) {
            auto engine = std::make_unique<core::QueryEngine>();
            engine->setCacheStore(&p->cacheStore());
            auto manager = std::make_unique<core::OperatorManager>(
                core::makeHostContext(*engine, &p->cacheStore(), &broker_, nullptr));
            plugins::registerBuiltinPlugins(*manager);
            pusher_engines_.push_back(std::move(engine));
            pusher_managers_.push_back(std::move(manager));
        }
        // Wintermute in the Collect Agent (with job access and storage).
        agent_engine_.setCacheStore(&agent_->cacheStore());
        agent_engine_.setStorage(&storage_);
        agent_manager_ = std::make_unique<core::OperatorManager>(core::makeHostContext(
            agent_engine_, &agent_->cacheStore(), nullptr, &storage_, &jobs_));
        plugins::registerBuiltinPlugins(*agent_manager_);
    }

    /// One virtual second: sample all pushers, tick all operator managers.
    void tick(TimestampNs t) {
        for (auto& p : pushers_) p->sampleOnce(t);
        for (auto& manager : pusher_managers_) manager->tickAll(t);
        agent_manager_->tickAll(t);
    }

    mqtt::Broker broker_;
    storage::StorageBackend storage_;
    jobs::JobManager jobs_;
    std::unique_ptr<collectagent::CollectAgent> agent_;
    std::vector<std::string> node_paths_;
    std::vector<std::shared_ptr<pusher::SimulatedNode>> sim_nodes_;
    std::vector<std::unique_ptr<pusher::Pusher>> pushers_;
    std::vector<std::unique_ptr<core::QueryEngine>> pusher_engines_;
    std::vector<std::unique_ptr<core::OperatorManager>> pusher_managers_;
    core::QueryEngine agent_engine_;
    std::unique_ptr<core::OperatorManager> agent_manager_;
};

int loadConfig(core::OperatorManager& manager, const std::string& plugin,
               const std::string& text) {
    const auto parsed = common::parseConfig(text);
    EXPECT_TRUE(parsed.ok) << parsed.error;
    return manager.loadPlugin(plugin, parsed.root);
}

TEST(Integration, PerfmetricsPersystPipeline) {
    MiniCluster cluster(simulator::AppKind::kLammps);
    // Warm the sensor space so unit resolution sees all topics.
    cluster.tick(1 * kNsPerSec);
    for (auto& engine : cluster.pusher_engines_) engine->rebuildTree();
    cluster.agent_engine_.rebuildTree();

    // Stage 1: perfmetrics (CPI per cpu) in each Pusher.
    const std::string perf_config = R"(
operator pm {
    interval 1s
    window 3s
    input {
        sensor "<bottomup>cpu-cycles"
        sensor "<bottomup>instructions"
    }
    output {
        sensor "<bottomup>cpi"
    }
}
)";
    for (auto& manager : cluster.pusher_managers_) {
        ASSERT_EQ(loadConfig(*manager, "perfmetrics", perf_config), 1);
    }

    // A job across both nodes.
    jobs::JobRecord job;
    job.job_id = "1234";
    job.nodes = cluster.node_paths_;
    job.start_time = 0;
    cluster.jobs_.submit(job);

    // Stage 2: persyst job operator in the Collect Agent. Its input (the
    // cpi outputs of stage 1) reaches the agent over MQTT.
    ASSERT_EQ(loadConfig(*cluster.agent_manager_, "persyst", R"(
operator ps {
    interval 1s
    window 3s
    metric cpi
}
)"),
              1);

    for (TimestampNs t = 2; t <= 10; ++t) cluster.tick(t * kNsPerSec);
    // The agent must re-discover the cpi sensors produced by stage 1 before
    // persyst units can resolve; rebuild and tick again.
    cluster.agent_engine_.rebuildTree();
    for (TimestampNs t = 11; t <= 13; ++t) cluster.tick(t * kNsPerSec);

    // Deciles of per-core CPI for the job: 2 nodes x 4 cpus = 8 samples;
    // LAMMPS is low-CPI with small spread.
    const auto dec5 = cluster.storage_.latest("/job/1234/cpi-dec5");
    const auto dec0 = cluster.storage_.latest("/job/1234/cpi-dec0");
    const auto dec10 = cluster.storage_.latest("/job/1234/cpi-dec10");
    ASSERT_TRUE(dec5.has_value());
    ASSERT_TRUE(dec0.has_value());
    ASSERT_TRUE(dec10.has_value());
    EXPECT_NEAR(dec5->value, 1.6, 0.5);
    EXPECT_LE(dec0->value, dec5->value);
    EXPECT_LE(dec5->value, dec10->value);
    EXPECT_LT(dec10->value, 3.0);  // no spikes for a compute-bound app
}

TEST(Integration, RegressorPredictsNodePowerInPusher) {
    MiniCluster cluster(simulator::AppKind::kHpl);
    cluster.tick(1 * kNsPerSec);
    for (auto& engine : cluster.pusher_engines_) engine->rebuildTree();

    ASSERT_EQ(loadConfig(*cluster.pusher_managers_[0], "regressor", R"(
operator reg {
    interval 1s
    window 3s
    target power
    trainingSamples 100
    trees 12
    maxDepth 8
    input {
        sensor "<bottomup-1>power"
        sensor "<bottomup, filter cpu>cpu-cycles"
        sensor "<bottomup, filter cpu>instructions"
        sensor "<bottomup, filter cpu>cache-misses"
    }
    output {
        sensor "<bottomup-1>power-pred"
    }
}
)"),
              1);
    auto op = std::dynamic_pointer_cast<plugins::RegressorOperator>(
        cluster.pusher_managers_[0]->findOperator("reg"));
    ASSERT_NE(op, nullptr);

    TimestampNs t = 2 * kNsPerSec;
    for (int i = 0; i < 130 && !op->modelTrained(); ++i, t += kNsPerSec) {
        cluster.tick(t);
    }
    ASSERT_TRUE(op->modelTrained());

    // Evaluate online for 30 more seconds: relative error against the real
    // power signal should be small for the steady HPL workload.
    double err_sum = 0.0;
    int samples = 0;
    for (int i = 0; i < 30; ++i, t += kNsPerSec) {
        cluster.tick(t);
        const auto pred =
            cluster.pushers_[0]->cacheStore().find("/r0/c0/s0/power-pred")->latest();
        const auto real =
            cluster.pushers_[0]->cacheStore().find("/r0/c0/s0/power")->latest();
        ASSERT_TRUE(pred.has_value());
        ASSERT_TRUE(real.has_value());
        err_sum += std::abs(pred->value - real->value) / real->value;
        ++samples;
    }
    const double avg_rel_error = err_sum / samples;
    EXPECT_LT(avg_rel_error, 0.12) << "average relative error too high";
}

TEST(Integration, OnDemandOverHttp) {
    MiniCluster cluster(simulator::AppKind::kKripke);
    for (TimestampNs t = 1; t <= 5; ++t) cluster.tick(t * kNsPerSec);
    cluster.agent_engine_.rebuildTree();

    ASSERT_EQ(loadConfig(*cluster.agent_manager_, "aggregator", R"(
operator powavg {
    mode ondemand
    window 5s
    operation average
    input {
        sensor "<bottomup-1>power"
    }
    output {
        sensor "<bottomup-1>power-avg"
    }
}
)"),
              1);

    rest::Router router;
    cluster.agent_manager_->bindRest(router);
    rest::HttpServer server(router);
    ASSERT_TRUE(server.start(0));

    const auto result = rest::httpRequest(
        "127.0.0.1", server.port(), "PUT",
        "/wintermute/compute?operator=powavg&unit=%2Fr0%2Fc0%2Fs0");
    ASSERT_TRUE(result.ok) << result.error;
    EXPECT_EQ(result.status, 200);
    EXPECT_NE(result.body.find("/r0/c0/s0/power-avg"), std::string::npos);
    // On-demand outputs are propagated only via the response, but our host
    // context also caches them; the value must be a plausible node power.
    const std::size_t pos = result.body.find("\"value\":");
    ASSERT_NE(pos, std::string::npos);
    const double value = std::stod(result.body.substr(pos + 8));
    EXPECT_GT(value, 50.0);
    EXPECT_LT(value, 500.0);
}

TEST(Integration, PusherOperatorOutputsReachStorageViaBroker) {
    // A Pusher-side operator publishes its outputs over MQTT; the Collect
    // Agent must persist them like any other sensor (pipeline prerequisite).
    MiniCluster cluster(simulator::AppKind::kAmg);
    cluster.tick(1 * kNsPerSec);
    for (auto& engine : cluster.pusher_engines_) engine->rebuildTree();
    for (auto& manager : cluster.pusher_managers_) {
        ASSERT_EQ(loadConfig(*manager, "aggregator", R"(
operator live {
    interval 1s
    window 2s
    operation maximum
    input {
        sensor "<bottomup-1>power"
    }
    output {
        sensor "<bottomup-1>power-peak"
    }
}
)"),
                  1);
    }
    for (TimestampNs t = 2; t <= 6; ++t) cluster.tick(t * kNsPerSec);
    for (const auto& node : cluster.node_paths_) {
        const auto peak = cluster.storage_.latest(node + "/power-peak");
        ASSERT_TRUE(peak.has_value()) << node;
        EXPECT_GT(peak->value, 50.0);
    }
}

TEST(Integration, ClusteringAcrossCollectAgentSensorSpace) {
    // Node-level clustering in the Collect Agent over data arriving from
    // pushers (abbreviated Case Study 3 on two nodes plus synthetic peers).
    MiniCluster cluster(simulator::AppKind::kLammps);
    for (TimestampNs t = 1; t <= 20; ++t) cluster.tick(t * kNsPerSec);

    // Augment the agent's sensor space with synthetic nodes so the mixture
    // has enough points; two tight groups.
    for (int i = 0; i < 20; ++i) {
        const std::string node = "/r9/c0/s" + std::to_string(i);
        auto& cache = cluster.agent_->cacheStore().getOrCreate(node + "/power");
        common::Rng rng(static_cast<std::uint64_t>(i) + 50);
        const double base = i < 10 ? 120.0 : 260.0;
        for (int k = 1; k <= 20; ++k) {
            cache.store({k * kNsPerSec, base + rng.gaussian(0.0, 3.0)});
        }
    }
    cluster.agent_engine_.rebuildTree();

    ASSERT_EQ(loadConfig(*cluster.agent_manager_, "clustering", R"(
operator nodecl {
    interval 1h
    window 19s
    maxComponents 8
    input {
        sensor "<bottomup-1>power"
    }
    output {
        sensor "<bottomup-1>powcluster"
    }
}
)"),
              1);
    cluster.agent_manager_->tickAll(20 * kNsPerSec);
    const auto a = cluster.storage_.latest("/r9/c0/s0/powcluster");
    const auto b = cluster.storage_.latest("/r9/c0/s15/powcluster");
    ASSERT_TRUE(a.has_value());
    ASSERT_TRUE(b.has_value());
    EXPECT_NE(a->value, b->value);  // the two power groups separate
}

TEST(Integration, DegradedModeWithLossyBrokerDelivery) {
    // The full pipeline under a lossy broker: 1% of deliveries are dropped
    // (fixed seed, deterministic schedule). The system keeps operating —
    // operator outputs stay plausible — and every published message is
    // accounted for: published = delivered + dropped.
    common::fault::FaultInjector injector(0xDE6FADED);
    ASSERT_TRUE(injector.armFromText("broker.deliver", "drop prob=0.01"));
    common::fault::ScopedInjector scoped(injector);

    MiniCluster cluster(simulator::AppKind::kHpl);
    cluster.tick(1 * kNsPerSec);
    for (auto& engine : cluster.pusher_engines_) engine->rebuildTree();
    for (auto& manager : cluster.pusher_managers_) {
        ASSERT_EQ(loadConfig(*manager, "aggregator", R"(
operator live {
    interval 1s
    window 2s
    operation maximum
    input {
        sensor "<bottomup-1>power"
    }
    output {
        sensor "<bottomup-1>power-peak"
    }
}
)"),
                  1);
    }
    for (TimestampNs t = 2; t <= 60; ++t) cluster.tick(t * kNsPerSec);

    // Enough traffic flowed that the 1% drop actually fired.
    const std::uint64_t published = cluster.broker_.publishedCount();
    const std::uint64_t dropped = cluster.broker_.droppedCount();
    EXPECT_GT(published, 1000u);
    EXPECT_GT(dropped, 0u);
    EXPECT_EQ(dropped, injector.fires("broker.deliver"));
    // Message-level reconciliation: the agent is the only subscriber, so
    // whatever was not dropped reached it.
    EXPECT_EQ(cluster.agent_->messagesReceived() + dropped, published);
    // Drop rate within tolerance of the armed 1%.
    const double rate = static_cast<double>(dropped) / published;
    EXPECT_GT(rate, 0.001);
    EXPECT_LT(rate, 0.03);
    // Nothing delivered was lost downstream: all readings received by the
    // agent were persisted (no storage faults armed).
    EXPECT_EQ(cluster.agent_->quarantinedReadings(), 0u);
    EXPECT_EQ(cluster.storage_.stats().reading_count,
              cluster.agent_->readingsStored());
    // Operator outputs remain within physical tolerance despite the loss.
    for (const auto& node : cluster.node_paths_) {
        const auto peak = cluster.storage_.latest(node + "/power-peak");
        ASSERT_TRUE(peak.has_value()) << node;
        EXPECT_GT(peak->value, 50.0);
        EXPECT_LT(peak->value, 500.0);
    }
}

}  // namespace
}  // namespace wm
