#include "common/config.h"

#include <gtest/gtest.h>

#include <fstream>

#include "common/time_utils.h"

namespace wm::common {
namespace {

TEST(ConfigParser, FlatKeyValues) {
    const auto result = parseConfig("alpha 1\nbeta two\ngamma 3.5\n");
    ASSERT_TRUE(result.ok) << result.error;
    EXPECT_EQ(result.root.getInt("alpha"), 1);
    EXPECT_EQ(result.root.getString("beta"), "two");
    EXPECT_DOUBLE_EQ(result.root.getDouble("gamma"), 3.5);
}

TEST(ConfigParser, NestedBlocks) {
    const auto result = parseConfig(R"(
global {
    mqttPrefix /cluster
    cacheInterval 180s
}
operator avg1 {
    interval 1000
    input {
        sensor "<bottomup>col_user"
        sensor "<bottomup, filter cpu>cpi"
    }
}
)");
    ASSERT_TRUE(result.ok) << result.error;
    const ConfigNode* global = result.root.child("global");
    ASSERT_NE(global, nullptr);
    EXPECT_EQ(global->getString("mqttPrefix"), "/cluster");
    EXPECT_EQ(global->getDurationNs("cacheInterval"), 180 * kNsPerSec);

    const ConfigNode* op = result.root.child("operator");
    ASSERT_NE(op, nullptr);
    EXPECT_EQ(op->value(), "avg1");
    EXPECT_EQ(op->getInt("interval"), 1000);
    const ConfigNode* input = op->child("input");
    ASSERT_NE(input, nullptr);
    const auto sensors = input->childrenOf("sensor");
    ASSERT_EQ(sensors.size(), 2u);
    EXPECT_EQ(sensors[0]->value(), "<bottomup>col_user");
    EXPECT_EQ(sensors[1]->value(), "<bottomup, filter cpu>cpi");
}

TEST(ConfigParser, CommentsAreIgnored) {
    const auto result = parseConfig(
        "# leading comment\nkey value  # trailing comment\n; semicolon comment\nother 2\n");
    ASSERT_TRUE(result.ok) << result.error;
    EXPECT_EQ(result.root.getString("key"), "value");
    EXPECT_EQ(result.root.getInt("other"), 2);
}

TEST(ConfigParser, QuotedValuesKeepWhitespace) {
    const auto result = parseConfig("name \"hello world\"\n");
    ASSERT_TRUE(result.ok) << result.error;
    EXPECT_EQ(result.root.getString("name"), "hello world");
}

TEST(ConfigParser, RepeatedKeysAtSameLevel) {
    const auto result = parseConfig("sensor a\nsensor b\nsensor c\n");
    ASSERT_TRUE(result.ok) << result.error;
    EXPECT_EQ(result.root.childrenOf("sensor").size(), 3u);
}

TEST(ConfigParser, ErrorOnUnmatchedClose) {
    const auto result = parseConfig("a 1\n}\n");
    EXPECT_FALSE(result.ok);
    EXPECT_EQ(result.error_line, 2u);
}

TEST(ConfigParser, ErrorOnUnterminatedBlock) {
    const auto result = parseConfig("block {\n  key 1\n");
    EXPECT_FALSE(result.ok);
}

TEST(ConfigParser, ErrorOnUnterminatedString) {
    const auto result = parseConfig("name \"oops\n");
    EXPECT_FALSE(result.ok);
}

TEST(ConfigParser, BoolAccessorVariants) {
    const auto result =
        parseConfig("a true\nb off\nc YES\nd 0\ne nonsense\n");
    ASSERT_TRUE(result.ok);
    EXPECT_TRUE(result.root.getBool("a"));
    EXPECT_FALSE(result.root.getBool("b", true));
    EXPECT_TRUE(result.root.getBool("c"));
    EXPECT_FALSE(result.root.getBool("d", true));
    EXPECT_TRUE(result.root.getBool("e", true));  // fallback on junk
}

TEST(ConfigParser, DefaultsOnMissingKeys) {
    const auto result = parseConfig("present 5\n");
    ASSERT_TRUE(result.ok);
    EXPECT_EQ(result.root.getInt("absent", 99), 99);
    EXPECT_EQ(result.root.getString("absent", "fb"), "fb");
    EXPECT_EQ(result.root.getDurationNs("absent", 7), 7);
    EXPECT_EQ(result.root.child("absent"), nullptr);
    EXPECT_FALSE(result.root.childValue("absent").has_value());
}

TEST(ConfigParser, RoundTripThroughToString) {
    const std::string text = R"(global {
    prefix /cluster
}
operator avg {
    interval 1000
    input {
        sensor "<bottomup>power"
    }
}
)";
    const auto first = parseConfig(text);
    ASSERT_TRUE(first.ok) << first.error;
    const auto second = parseConfig(first.root.toString());
    ASSERT_TRUE(second.ok) << second.error;
    EXPECT_EQ(first.root.toString(), second.root.toString());
}

TEST(ConfigParser, FileRoundTrip) {
    const std::string path = ::testing::TempDir() + "/wm_config_test.cfg";
    {
        std::ofstream out(path);
        out << "key value\nblock {\n  inner 42\n}\n";
    }
    const auto result = parseConfigFile(path);
    ASSERT_TRUE(result.ok) << result.error;
    EXPECT_EQ(result.root.getString("key"), "value");
    ASSERT_NE(result.root.child("block"), nullptr);
    EXPECT_EQ(result.root.child("block")->getInt("inner"), 42);
}

TEST(ConfigParser, MissingFileReportsError) {
    const auto result = parseConfigFile("/nonexistent/path/file.cfg");
    EXPECT_FALSE(result.ok);
    EXPECT_NE(result.error.find("cannot open"), std::string::npos);
}

}  // namespace
}  // namespace wm::common
