#include <gtest/gtest.h>

#include <atomic>

#include "mqtt/broker.h"
#include "mqtt/topic.h"

namespace wm::mqtt {
namespace {

struct MatchCase {
    std::string filter;
    std::string topic;
    bool matches;
};

class TopicMatching : public ::testing::TestWithParam<MatchCase> {};

TEST_P(TopicMatching, MqttSemantics) {
    const MatchCase& c = GetParam();
    EXPECT_EQ(topicMatches(c.filter, c.topic), c.matches)
        << c.filter << " vs " << c.topic;
}

INSTANTIATE_TEST_SUITE_P(
    Cases, TopicMatching,
    ::testing::Values(
        MatchCase{"/a/b/c", "/a/b/c", true}, MatchCase{"/a/b/c", "/a/b/d", false},
        MatchCase{"/a/+/c", "/a/b/c", true}, MatchCase{"/a/+/c", "/a/b/d/c", false},
        // Per MQTT, '#' also matches the parent level itself.
        MatchCase{"/a/#", "/a/b/c/d", true}, MatchCase{"/a/#", "/a", true},
        MatchCase{"#", "/anything/at/all", true},
        MatchCase{"/+/+/+/power", "/rack0/chassis1/server2/power", true},
        MatchCase{"/+/+/+/power", "/rack0/chassis1/server2/temp", false},
        MatchCase{"/a/b", "/a/b/c", false}, MatchCase{"/a/b/c", "/a/b", false},
        MatchCase{"/rack0/#", "/rack1/power", false}));

TEST(TopicValidation, PublishTopics) {
    EXPECT_TRUE(isValidTopic("/a/b/c"));
    EXPECT_TRUE(isValidTopic("relative/topic"));
    EXPECT_FALSE(isValidTopic(""));
    EXPECT_FALSE(isValidTopic("/a/+/c"));
    EXPECT_FALSE(isValidTopic("/a/#"));
    EXPECT_FALSE(isValidTopic("/a//b"));
}

TEST(TopicValidation, SubscriptionFilters) {
    EXPECT_TRUE(isValidFilter("#"));
    EXPECT_TRUE(isValidFilter("/a/+/c"));
    EXPECT_TRUE(isValidFilter("/a/#"));
    EXPECT_FALSE(isValidFilter(""));
    EXPECT_FALSE(isValidFilter("/a/#/c"));   // '#' must be last
    EXPECT_FALSE(isValidFilter("/a/b+/c"));  // '+' must be a whole segment
}

TEST(TopicValidation, WildcardEdgeCases) {
    // '+' at the root level: a bare "+" is a valid one-level filter, and a
    // leading "/+" matches exactly one (leading-slash-anchored) level.
    EXPECT_TRUE(isValidFilter("+"));
    EXPECT_TRUE(isValidFilter("/+"));
    EXPECT_TRUE(isValidFilter("+/power"));
    EXPECT_TRUE(topicMatches("+", "a"));
    EXPECT_FALSE(topicMatches("+", "/a"));  // leading slash = empty root level
    EXPECT_TRUE(topicMatches("/+", "/a"));
    EXPECT_FALSE(topicMatches("/+", "/a/b"));

    // '#' in a non-terminal position is invalid, as is a multi-char segment
    // embedding a wildcard.
    EXPECT_FALSE(isValidFilter("#/a"));
    EXPECT_FALSE(isValidFilter("/a/#/b"));
    EXPECT_FALSE(isValidFilter("/a/b#"));
    EXPECT_FALSE(isValidFilter("/a/#b/c"));

    // Empty levels: "//" produces an empty middle segment.
    EXPECT_FALSE(isValidFilter("/a//b"));
    EXPECT_FALSE(isValidFilter("//"));
    EXPECT_FALSE(isValidTopic("//"));
    EXPECT_FALSE(isValidTopic("/a//b"));
    EXPECT_FALSE(isValidTopic("/a/"));  // trailing empty level
}

TEST(TopicOverlap, LiteralTopics) {
    EXPECT_TRUE(filtersOverlap("/a/b/c", "/a/b/c"));
    EXPECT_FALSE(filtersOverlap("/a/b/c", "/a/b/d"));
    EXPECT_FALSE(filtersOverlap("/a/b", "/a/b/c"));  // different depth
    EXPECT_FALSE(filtersOverlap("/a/b/c", "/a/b"));
}

TEST(TopicOverlap, WildcardPairs) {
    // '+' vs literal and '+' vs '+'.
    EXPECT_TRUE(filtersOverlap("/a/+/c", "/a/b/c"));
    EXPECT_TRUE(filtersOverlap("/a/+/c", "/a/+/c"));
    EXPECT_TRUE(filtersOverlap("/+/b/c", "/a/+/c"));
    EXPECT_FALSE(filtersOverlap("/a/+/c", "/a/b/d"));
    EXPECT_FALSE(filtersOverlap("/a/+", "/a/b/c"));

    // '#' overlaps everything under its prefix, including the prefix itself.
    EXPECT_TRUE(filtersOverlap("/a/#", "/a/b/c"));
    EXPECT_TRUE(filtersOverlap("/a/#", "/a"));
    EXPECT_TRUE(filtersOverlap("#", "/anything"));
    EXPECT_TRUE(filtersOverlap("/a/#", "/a/+/c"));
    EXPECT_FALSE(filtersOverlap("/a/#", "/b/c"));
    EXPECT_FALSE(filtersOverlap("/rack0/#", "/rack1/#"));

    // Symmetry spot checks.
    EXPECT_EQ(filtersOverlap("/a/#", "/a/b"), filtersOverlap("/a/b", "/a/#"));
    EXPECT_EQ(filtersOverlap("/a/+", "/a/b"), filtersOverlap("/a/b", "/a/+"));
}

TEST(Broker, DeliversToMatchingSubscribers) {
    Broker broker;
    std::vector<std::string> received;
    broker.subscribe("/rack0/#",
                     [&](const Message& m) { received.push_back(m.topic); });
    broker.subscribe("/rack1/#",
                     [&](const Message& m) { received.push_back("other:" + m.topic); });
    EXPECT_EQ(broker.publish({"/rack0/power", {{1, 2.0}}}), 1);
    EXPECT_EQ(broker.publish({"/rack1/power", {{1, 2.0}}}), 1);
    EXPECT_EQ(broker.publish({"/rack2/power", {{1, 2.0}}}), 0);
    ASSERT_EQ(received.size(), 2u);
    EXPECT_EQ(received[0], "/rack0/power");
    EXPECT_EQ(received[1], "other:/rack1/power");
}

TEST(Broker, PayloadIntegrity) {
    Broker broker;
    Message captured;
    broker.subscribe("#", [&](const Message& m) { captured = m; });
    const Message sent{"/a/b", {{100, 1.5}, {200, 2.5}}};
    broker.publish(sent);
    EXPECT_EQ(captured.topic, sent.topic);
    ASSERT_EQ(captured.readings.size(), 2u);
    EXPECT_EQ(captured.readings[1].timestamp, 200);
    EXPECT_DOUBLE_EQ(captured.readings[1].value, 2.5);
}

TEST(Broker, RejectsInvalidTopicAndFilter) {
    Broker broker;
    EXPECT_EQ(broker.subscribe("/a/#/b", [](const Message&) {}), 0u);
    EXPECT_EQ(broker.publish({"/a/+/b", {}}), -1);
}

TEST(Broker, Unsubscribe) {
    Broker broker;
    std::atomic<int> count{0};
    const SubscriptionId id =
        broker.subscribe("#", [&](const Message&) { count.fetch_add(1); });
    broker.publish({"/t", {}});
    EXPECT_TRUE(broker.unsubscribe(id));
    EXPECT_FALSE(broker.unsubscribe(id));
    broker.publish({"/t", {}});
    EXPECT_EQ(count.load(), 1);
}

TEST(Broker, HandlerMayPublishWithoutDeadlock) {
    Broker broker;
    std::atomic<int> secondary{0};
    broker.subscribe("/chain/stage2",
                     [&](const Message&) { secondary.fetch_add(1); });
    broker.subscribe("/chain/stage1", [&](const Message&) {
        broker.publish({"/chain/stage2", {}});
    });
    broker.publish({"/chain/stage1", {}});
    EXPECT_EQ(secondary.load(), 1);
}

TEST(AsyncBroker, DeliversAsynchronously) {
    AsyncBroker broker;
    std::atomic<int> count{0};
    broker.subscribe("#", [&](const Message&) { count.fetch_add(1); });
    for (int i = 0; i < 100; ++i) {
        ASSERT_GE(broker.publish({"/s", {{i, 1.0}}}), 0);
    }
    broker.flush();
    EXPECT_EQ(count.load(), 100);
}

TEST(AsyncBroker, FlushOnEmptyQueueReturns) {
    AsyncBroker broker;
    broker.flush();  // must not hang
    SUCCEED();
}

TEST(AsyncBroker, OrderIsPreserved) {
    AsyncBroker broker;
    std::vector<double> seen;
    std::mutex mutex;
    broker.subscribe("#", [&](const Message& m) {
        std::lock_guard lock(mutex);
        seen.push_back(m.readings[0].value);
    });
    for (int i = 0; i < 50; ++i) broker.publish({"/s", {{i, static_cast<double>(i)}}});
    broker.flush();
    std::lock_guard lock(mutex);
    ASSERT_EQ(seen.size(), 50u);
    for (int i = 0; i < 50; ++i) EXPECT_DOUBLE_EQ(seen[static_cast<std::size_t>(i)], i);
}

}  // namespace
}  // namespace wm::mqtt
