// Tests for the runtime lock-order checker (common/lock_order.h): legal
// nestings keep the held stack balanced, while rank inversions and recursive
// acquisitions abort the process with a diagnostic naming both locks.

#include <gtest/gtest.h>

#include <thread>

#include "common/lock_order.h"
#include "common/mutex.h"

namespace wm::common {
namespace {

TEST(LockOrder, InOrderNestingIsAccepted) {
    Mutex scheduler("sched", LockRank::kScheduler);
    Mutex pool("pool", LockRank::kThreadPool);
    Mutex logger("log", LockRank::kLogger);
    EXPECT_EQ(lockorder::heldCount(), 0u);
    {
        MutexLock a(scheduler);
        EXPECT_EQ(lockorder::heldCount(), 1u);
        MutexLock b(pool);
        EXPECT_EQ(lockorder::heldCount(), 2u);
        MutexLock c(logger);
        EXPECT_EQ(lockorder::heldCount(), 3u);
    }
    EXPECT_EQ(lockorder::heldCount(), 0u);
}

TEST(LockOrder, UnrankedLocksAreExemptFromOrdering) {
    // Each nesting direction uses its own mutex pair so no pair is ever
    // acquired in both orders (TSan's deadlock detector would flag that),
    // while still covering every exemption the checker grants.
    Mutex ranked_high("ranked-high", LockRank::kStorage);
    Mutex ranked_low("ranked-low", LockRank::kOperatorManager);
    Mutex unranked_a("plain-a");
    Mutex unranked_b("plain-b");
    {
        // Unranked (rank 0) under rank 72: would abort if unranked were
        // subject to the strictly-increasing rule.
        MutexLock a(ranked_high);
        MutexLock b(unranked_a);
        EXPECT_EQ(lockorder::heldCount(), 2u);
    }
    {
        // Ranked under unranked, and unranked under unranked: both legal.
        MutexLock a(unranked_b);
        MutexLock b(ranked_low);
        MutexLock c(unranked_a);
        EXPECT_EQ(lockorder::heldCount(), 3u);
    }
    EXPECT_EQ(lockorder::heldCount(), 0u);
}

TEST(LockOrder, SharedMutexGuardsTrackTheStack) {
    SharedMutex cache("cache", LockRank::kSensorCache);
    SharedMutex storage("store", LockRank::kStorage);
    {
        ReadLock r(cache);
        EXPECT_EQ(lockorder::heldCount(), 1u);
        WriteLock w(storage);
        EXPECT_EQ(lockorder::heldCount(), 2u);
    }
    EXPECT_EQ(lockorder::heldCount(), 0u);
}

TEST(LockOrder, ConditionWaitKeepsStackBalanced) {
    Mutex mutex("cv-mutex", LockRank::kThreadPool);
    ConditionVariable cv;
    bool ready = false;
    std::thread waker([&] {
        MutexLock lock(mutex);
        ready = true;
        cv.notify_all();
    });
    {
        MutexLock lock(mutex);
        while (!ready) cv.wait(mutex);
        // The wait released and reacquired through the wrapper: exactly one
        // lock is on the stack, so a higher-rank acquisition is still legal.
        EXPECT_EQ(lockorder::heldCount(), 1u);
        Mutex logger("log", LockRank::kLogger);
        MutexLock nested(logger);
        EXPECT_EQ(lockorder::heldCount(), 2u);
    }
    waker.join();
    EXPECT_EQ(lockorder::heldCount(), 0u);
}

TEST(LockOrder, HeldCountIsPerThread) {
    Mutex mutex("per-thread", LockRank::kBroker);
    MutexLock lock(mutex);
    std::size_t other_thread_count = 99;
    std::thread observer([&] { other_thread_count = lockorder::heldCount(); });
    observer.join();
    EXPECT_EQ(other_thread_count, 0u);
    EXPECT_EQ(lockorder::heldCount(), 1u);
}

#ifdef WM_LOCK_ORDER_CHECK

using LockOrderDeathTest = ::testing::Test;

TEST(LockOrderDeathTest, RankInversionAborts) {
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    EXPECT_DEATH(
        {
            Mutex broker("broker", LockRank::kBroker);
            Mutex scheduler("sched", LockRank::kScheduler);
            MutexLock a(broker);
            MutexLock b(scheduler);  // kScheduler < kBroker: inversion
        },
        "lock-rank inversion.*\"sched\"");
}

TEST(LockOrderDeathTest, EqualRankAborts) {
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    EXPECT_DEATH(
        {
            Mutex a("cache-a", LockRank::kSensorCache);
            Mutex b("cache-b", LockRank::kSensorCache);
            MutexLock la(a);
            MutexLock lb(b);  // equal ranks are unordered: rejected
        },
        "lock-rank inversion.*\"cache-b\"");
}

TEST(LockOrderDeathTest, RecursiveAcquisitionAborts) {
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    EXPECT_DEATH(
        {
            Mutex mutex("self", LockRank::kStorage);
            mutex.lock();
            mutex.lock();
        },
        "recursive acquisition.*\"self\"");
}

TEST(LockOrderDeathTest, RecursiveSharedAcquisitionAborts) {
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    // Re-entrant read locks deadlock against a queued writer, so the checker
    // treats them as recursion even though std::shared_mutex might survive.
    EXPECT_DEATH(
        {
            SharedMutex mutex("shared-self", LockRank::kCacheStore);
            ReadLock a(mutex);
            ReadLock b(mutex);
        },
        "recursive acquisition.*\"shared-self\"");
}

TEST(LockOrderDeathTest, ObservedCycleIsReported) {
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    EXPECT_DEATH(
        {
            Mutex lo("low", LockRank::kScheduler);
            Mutex hi("high", LockRank::kThreadPool);
            {
                // Legal order: records the low->high edge in the graph.
                MutexLock a(lo);
                MutexLock b(hi);
            }
            // Reverse order: with the prior edge recorded this is a proven
            // ABBA cycle, not just a rank violation.
            MutexLock b(hi);
            MutexLock a(lo);
        },
        "lock-order cycle \\(reverse order observed before\\).*\"low\"");
}

TEST(LockOrderDeathTest, DiagnosticPrintsHeldStack) {
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    EXPECT_DEATH(
        {
            Mutex outer("outer-lock", LockRank::kCacheStore);
            Mutex inner("inner-lock", LockRank::kOperatorUnits);
            MutexLock a(outer);
            MutexLock b(inner);
        },
        "1\\. \"outer-lock\" \\(rank 64\\)");
}

#endif  // WM_LOCK_ORDER_CHECK

}  // namespace
}  // namespace wm::common
