#include "sensors/sensor_cache.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.h"

namespace wm::sensors {
namespace {

using common::kNsPerMs;
using common::kNsPerSec;
using common::TimestampNs;

/// Fills a cache with `n` readings spaced `interval` apart starting at t0.
void fill(SensorCache& cache, std::size_t n, TimestampNs t0 = 0,
          TimestampNs interval = kNsPerSec) {
    for (std::size_t i = 0; i < n; ++i) {
        cache.store({t0 + static_cast<TimestampNs>(i) * interval, static_cast<double>(i)});
    }
}

TEST(SensorCache, LatestReturnsNewest) {
    SensorCache cache;
    EXPECT_FALSE(cache.latest().has_value());
    fill(cache, 5);
    ASSERT_TRUE(cache.latest().has_value());
    EXPECT_DOUBLE_EQ(cache.latest()->value, 4.0);
}

TEST(SensorCache, EvictsOutsideWindow) {
    SensorCache cache(10 * kNsPerSec, kNsPerSec);
    fill(cache, 100);
    // Window is 10 s: the newest reading is at t=99 s, so t >= 89 s survive.
    EXPECT_EQ(cache.size(), 11u);
    const auto view = cache.viewRelative(10 * kNsPerSec);
    ASSERT_FALSE(view.empty());
    EXPECT_DOUBLE_EQ(view.front().value, 89.0);
}

TEST(SensorCache, RelativeViewBoundaries) {
    SensorCache cache(100 * kNsPerSec, kNsPerSec);
    fill(cache, 50);
    // offset 0: just the most recent reading.
    const auto latest_only = cache.viewRelative(0);
    ASSERT_EQ(latest_only.size(), 1u);
    EXPECT_DOUBLE_EQ(latest_only[0].value, 49.0);
    // offset covering 5 intervals: readings at t in [44, 49] inclusive.
    const auto five = cache.viewRelative(5 * kNsPerSec);
    ASSERT_EQ(five.size(), 6u);
    EXPECT_DOUBLE_EQ(five.front().value, 44.0);
    EXPECT_DOUBLE_EQ(five.back().value, 49.0);
}

TEST(SensorCache, AbsoluteViewBoundaries) {
    SensorCache cache(100 * kNsPerSec, kNsPerSec);
    fill(cache, 50);
    const auto view = cache.viewAbsolute(10 * kNsPerSec, 12 * kNsPerSec);
    ASSERT_EQ(view.size(), 3u);
    EXPECT_DOUBLE_EQ(view[0].value, 10.0);
    EXPECT_DOUBLE_EQ(view[2].value, 12.0);
    // Inverted and empty ranges.
    EXPECT_TRUE(cache.viewAbsolute(12 * kNsPerSec, 10 * kNsPerSec).empty());
    EXPECT_TRUE(cache.viewAbsolute(500 * kNsPerSec, 600 * kNsPerSec).empty());
}

TEST(SensorCache, AbsoluteMatchesRelativeOnUniformData) {
    SensorCache cache(1000 * kNsPerSec, kNsPerSec);
    fill(cache, 200);
    const TimestampNs newest = cache.latest()->timestamp;
    for (const TimestampNs offset :
         {TimestampNs{0}, kNsPerSec, 7 * kNsPerSec, 50 * kNsPerSec, 199 * kNsPerSec}) {
        const auto rel = cache.viewRelative(offset);
        const auto abs = cache.viewAbsolute(newest - offset, newest);
        EXPECT_EQ(rel, abs) << "offset=" << offset;
    }
}

TEST(SensorCache, OutOfOrderInsertKeepsTimeOrder) {
    SensorCache cache(100 * kNsPerSec, kNsPerSec);
    cache.store({10 * kNsPerSec, 10.0});
    cache.store({30 * kNsPerSec, 30.0});
    cache.store({20 * kNsPerSec, 20.0});  // late arrival
    const auto view = cache.viewAbsolute(0, 100 * kNsPerSec);
    ASSERT_EQ(view.size(), 3u);
    EXPECT_DOUBLE_EQ(view[0].value, 10.0);
    EXPECT_DOUBLE_EQ(view[1].value, 20.0);
    EXPECT_DOUBLE_EQ(view[2].value, 30.0);
}

TEST(SensorCache, DropsTooOldReadings) {
    SensorCache cache(10 * kNsPerSec, kNsPerSec);
    cache.store({100 * kNsPerSec, 1.0});
    EXPECT_FALSE(cache.store({50 * kNsPerSec, 2.0}));  // far outside the window
    EXPECT_EQ(cache.size(), 1u);
}

TEST(SensorCache, GrowsBeyondNominalCapacity) {
    // Nominal interval of 1 s suggests ~10 slots, but data arrives at 10 Hz.
    SensorCache cache(10 * kNsPerSec, kNsPerSec);
    for (int i = 0; i < 500; ++i) {
        cache.store({static_cast<TimestampNs>(i) * 100 * kNsPerMs, static_cast<double>(i)});
    }
    // 10 s window at 10 Hz = 101 readings retained.
    EXPECT_EQ(cache.size(), 101u);
    EXPECT_NEAR(static_cast<double>(cache.estimatedIntervalNs()),
                static_cast<double>(100 * kNsPerMs),
                static_cast<double>(20 * kNsPerMs));
}

TEST(SensorCache, AverageRelative) {
    SensorCache cache(100 * kNsPerSec, kNsPerSec);
    fill(cache, 10);
    // Last 4 readings: values 6,7,8,9 (offset 3 s from t=9 s).
    const auto avg = cache.averageRelative(3 * kNsPerSec);
    ASSERT_TRUE(avg.has_value());
    EXPECT_DOUBLE_EQ(*avg, 7.5);
    SensorCache empty;
    EXPECT_FALSE(empty.averageRelative(kNsPerSec).has_value());
}

/// Property sweep: relative and absolute views agree for random jittered
/// series at many offsets.
class CacheViewEquivalence : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CacheViewEquivalence, JitteredSeries) {
    common::Rng rng(GetParam());
    SensorCache cache(500 * kNsPerSec, kNsPerSec);
    TimestampNs t = 0;
    for (int i = 0; i < 300; ++i) {
        t += static_cast<TimestampNs>(rng.uniform(0.5, 1.5) * kNsPerSec);
        cache.store({t, rng.uniform(0.0, 100.0)});
    }
    const TimestampNs newest = cache.latest()->timestamp;
    for (int trial = 0; trial < 25; ++trial) {
        const auto offset = static_cast<TimestampNs>(rng.uniform(0.0, 400.0) * kNsPerSec);
        const auto rel = cache.viewRelative(offset);
        const auto abs = cache.viewAbsolute(newest - offset, newest);
        ASSERT_EQ(rel, abs) << "seed=" << GetParam() << " offset=" << offset;
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CacheViewEquivalence,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u, 21u, 34u));

TEST(CacheStore, CreatesOnDemandAndFinds) {
    CacheStore store;
    EXPECT_EQ(store.find("/a/b"), nullptr);
    SensorMetadata metadata;
    metadata.topic = "/a/b";
    metadata.unit = "W";
    SensorCache& cache = store.getOrCreate(metadata);
    cache.store({1, 2.0});
    ASSERT_NE(store.find("/a/b"), nullptr);
    EXPECT_EQ(store.find("/a/b"), &cache);
    EXPECT_EQ(store.metadataFor("/a/b").unit, "W");
    EXPECT_EQ(store.sensorCount(), 1u);
}

TEST(CacheStore, GetOrCreateIsIdempotent) {
    CacheStore store;
    SensorCache& first = store.getOrCreate("/x");
    SensorCache& second = store.getOrCreate("/x");
    EXPECT_EQ(&first, &second);
}

TEST(CacheStore, TopicsAreSorted) {
    CacheStore store;
    store.getOrCreate("/b");
    store.getOrCreate("/a");
    store.getOrCreate("/c");
    EXPECT_EQ(store.topics(), (std::vector<std::string>{"/a", "/b", "/c"}));
}

/// Collects a visitation into a vector for comparison against the copying
/// view API.
template <typename ForEach>
ReadingVector collect(ForEach&& for_each) {
    ReadingVector out;
    for_each([&out](const Reading& r) { out.push_back(r); });
    return out;
}

/// The copy-free visitation must produce exactly the readings (and order)
/// of the vector-returning views — including after out-of-order inserts,
/// which shift elements inside the ring buffer.
TEST(SensorCache, ForEachMatchesViewAfterOutOfOrderInserts) {
    SensorCache cache(100 * kNsPerSec, kNsPerSec);
    fill(cache, 10, kNsPerSec);
    // Late readings inside the window, placed into the middle of the ring.
    EXPECT_TRUE(cache.store({3 * kNsPerSec + kNsPerMs, 30.5}));
    EXPECT_TRUE(cache.store({7 * kNsPerSec + kNsPerMs, 70.5}));
    for (const TimestampNs offset :
         {TimestampNs{0}, 2 * kNsPerSec, 5 * kNsPerSec, 50 * kNsPerSec}) {
        EXPECT_EQ(collect([&](auto&& v) { cache.forEachRelative(offset, v); }),
                  cache.viewRelative(offset))
            << "offset " << offset;
    }
    for (const TimestampNs t0 : {TimestampNs{0}, 3 * kNsPerSec, 8 * kNsPerSec}) {
        const TimestampNs t1 = t0 + 4 * kNsPerSec;
        EXPECT_EQ(collect([&](auto&& v) { cache.forEachAbsolute(t0, t1, v); }),
                  cache.viewAbsolute(t0, t1))
            << "t0 " << t0;
    }
}

/// Same equivalence at the eviction boundary: a cache whose ring has
/// wrapped (head > 0) visits the two physical spans in the right order.
TEST(SensorCache, ForEachMatchesViewAcrossEviction) {
    SensorCache cache(10 * kNsPerSec, kNsPerSec);
    fill(cache, 50);  // window keeps ~11 readings; ring has wrapped
    EXPECT_LE(cache.size(), 12u);
    EXPECT_EQ(collect([&](auto&& v) { cache.forEachRelative(cache.windowNs(), v); }),
              cache.viewRelative(cache.windowNs()));
    EXPECT_EQ(collect([&](auto&& v) { cache.forEachAbsolute(0, 49 * kNsPerSec, v); }),
              cache.viewAbsolute(0, 49 * kNsPerSec));
    // Empty results: range entirely before the retained window.
    EXPECT_TRUE(collect([&](auto&& v) { cache.forEachAbsolute(0, kNsPerSec, v); }).empty());
    SensorCache empty;
    EXPECT_TRUE(collect([&](auto&& v) { empty.forEachRelative(kNsPerSec, v); }).empty());
}

/// Fused reductions agree with reducing the materialised views, on jittered
/// out-of-order data.
TEST(SensorCache, StatsMatchViewReduction) {
    common::Rng rng(42);
    SensorCache cache(200 * kNsPerSec, kNsPerSec);
    TimestampNs t = 0;
    for (int i = 0; i < 150; ++i) {
        t += static_cast<TimestampNs>(rng.uniform(0.5, 1.5) * kNsPerSec);
        cache.store({t, rng.uniform(-50.0, 50.0)});
        if (rng.uniformInt(10) == 0) {
            cache.store({t - 2 * kNsPerSec, rng.uniform(-50.0, 50.0)});  // stragglers
        }
    }
    for (int trial = 0; trial < 20; ++trial) {
        const auto offset = static_cast<TimestampNs>(rng.uniform(0.0, 180.0) * kNsPerSec);
        const auto stats = cache.statsRelative(offset);
        const ReadingVector view = cache.viewRelative(offset);
        ASSERT_TRUE(stats.has_value());
        ASSERT_EQ(stats->count, view.size());
        double sum = 0, lo = view.front().value, hi = view.front().value;
        for (const auto& r : view) {
            sum += r.value;
            lo = std::min(lo, r.value);
            hi = std::max(hi, r.value);
        }
        EXPECT_DOUBLE_EQ(stats->sum, sum);
        EXPECT_DOUBLE_EQ(stats->min, lo);
        EXPECT_DOUBLE_EQ(stats->max, hi);
        EXPECT_EQ(stats->first.timestamp, view.front().timestamp);
        EXPECT_EQ(stats->last.timestamp, view.back().timestamp);
        EXPECT_DOUBLE_EQ(stats->average(), sum / static_cast<double>(view.size()));
    }
    EXPECT_FALSE(SensorCache().statsRelative(kNsPerSec).has_value());
    EXPECT_FALSE(cache.statsAbsolute(5, 1).has_value());  // t1 < t0
}

TEST(RangeStats, MergeCombinesRanges) {
    RangeStats a, b, empty;
    a.accumulate({1, 2.0});
    a.accumulate({2, 6.0});
    b.accumulate({5, -1.0});
    a.merge(empty);
    EXPECT_EQ(a.count, 2u);
    a.merge(b);
    EXPECT_EQ(a.count, 3u);
    EXPECT_DOUBLE_EQ(a.sum, 7.0);
    EXPECT_DOUBLE_EQ(a.min, -1.0);
    EXPECT_DOUBLE_EQ(a.max, 6.0);
    EXPECT_EQ(a.first.timestamp, 1);
    EXPECT_EQ(a.last.timestamp, 5);
    empty.merge(a);
    EXPECT_EQ(empty.count, 3u);
    EXPECT_DOUBLE_EQ(empty.delta(), a.last.value - a.first.value);
}

/// Id-keyed lookup is the string lookup without the hash: both must agree,
/// and ids must be stable across stores sharing the process-wide table.
TEST(CacheStore, IdKeyedLookupMatchesStringLookup) {
    CacheStore store;
    EXPECT_EQ(store.find(kInvalidTopicId), nullptr);
    EXPECT_EQ(store.idOf("/nope"), kInvalidTopicId);
    SensorCache& cache = store.getOrCreate("/id/a");
    const TopicId id = store.idOf("/id/a");
    ASSERT_NE(id, kInvalidTopicId);
    EXPECT_EQ(store.find(id), &cache);
    EXPECT_EQ(store.find(id), store.find(std::string("/id/a")));
    // An id interned by another store resolves to nullptr here until the
    // topic exists in this store too.
    CacheStore other;
    const TopicId foreign = TopicTable::instance().intern("/id/only-elsewhere");
    EXPECT_EQ(store.find(foreign), nullptr);
    other.getOrCreate("/id/only-elsewhere");
    EXPECT_NE(other.find(foreign), nullptr);
}

TEST(CacheStore, CacheHandleResolvesLazily) {
    CacheStore store;
    const CacheHandle handle("/handle/x");
    EXPECT_EQ(handle.resolve(store), nullptr);  // not interned yet
    SensorCache& cache = store.getOrCreate("/handle/x");
    EXPECT_EQ(handle.resolve(store), &cache);   // memoised from here on
    EXPECT_EQ(handle.resolve(store), &cache);
    EXPECT_EQ(handle.topic(), "/handle/x");
    // Handles work across stores sharing the process-wide table.
    CacheStore other;
    EXPECT_EQ(handle.resolve(other), nullptr);
    SensorCache& twin = other.getOrCreate("/handle/x");
    EXPECT_EQ(handle.resolve(other), &twin);
}

/// The publish flag lives in the interned-topic entry and is readable
/// lock-free through the id (the pusher publication loop's fast path).
TEST(CacheStore, PublishFlagThroughInternedEntry) {
    CacheStore store;
    SensorMetadata hidden;
    hidden.topic = "/flag/hidden";
    hidden.publish = false;
    store.getOrCreate(hidden);
    SensorMetadata visible;
    visible.topic = "/flag/visible";
    visible.publish = true;
    store.getOrCreate(visible);
    EXPECT_FALSE(store.publishAllowed(store.idOf("/flag/hidden")));
    EXPECT_TRUE(store.publishAllowed(store.idOf("/flag/visible")));
    EXPECT_FALSE(store.publishAllowed("/flag/hidden"));
    EXPECT_TRUE(store.publishAllowed("/flag/visible"));
    // Unknown topics / invalid ids stay publishable (legacy semantics).
    EXPECT_TRUE(store.publishAllowed("/flag/unknown"));
    EXPECT_TRUE(store.publishAllowed(kInvalidTopicId));
}

}  // namespace
}  // namespace wm::sensors
