// End-to-end test of the wintermuted daemon binary: spawn the real process
// with a real configuration, exercise its REST API over HTTP (including
// dynamic plugin loading), and shut it down. The binary path is injected by
// CMake via WM_DAEMON_BINARY.

#include <gtest/gtest.h>

#include <csignal>
#include <cstdlib>
#include <fstream>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <filesystem>
#include <string>
#include <thread>

#include "rest/http_server.h"

#ifndef WM_DAEMON_BINARY
#define WM_DAEMON_BINARY ""
#endif

namespace wm {
namespace {

constexpr std::uint16_t kPort = 28417;

class DaemonTest : public ::testing::Test {
  protected:
    static void SetUpTestSuite() {
        config_path_ = ::testing::TempDir() + "/wintermuted_test.cfg";
        // Fresh persistence directory so the durability counters are not
        // inherited from a previous run of this suite.
        const std::string persist_dir = ::testing::TempDir() + "/wm_daemon_persist";
        std::filesystem::remove_all(persist_dir);
        std::ofstream out(config_path_);
        out << "persistence {\n"
            << "    directory \"" << persist_dir << "\"\n"
            << "    snapshotEvery 256\n"
            << "    checkpointInterval 2s\n"
            << "}\n"
            << "supervisor {\n"
            << "    checkInterval 500ms\n"
            << "}\n";
        out << R"(
cluster {
    racks 1
    chassisPerRack 1
    nodesPerChassis 2
    cpusPerNode 4
    app lammps
}
pusher {
    samplingInterval 200ms
    cacheWindow 60s
}
plugin aggregator {
    host collectagent
    operator powavg {
        interval 500ms
        window 10s
        operation average
        input {
            sensor "<bottomup-1>power"
        }
        output {
            sensor "<bottomup-1>power-avg"
        }
    }
}
)";
        out.close();

        pid_ = fork();
        ASSERT_NE(pid_, -1);
        if (pid_ == 0) {
            execl(WM_DAEMON_BINARY, "wintermuted", "--config", config_path_.c_str(),
                  "--port", std::to_string(kPort).c_str(), "--duration", "60",
                  static_cast<char*>(nullptr));
            _exit(127);  // exec failed
        }
        // Wait for the REST endpoint to come up.
        bool up = false;
        for (int i = 0; i < 100 && !up; ++i) {
            const auto result = rest::httpRequest("127.0.0.1", kPort, "GET", "/status",
                                                  "", 200);
            up = result.ok && result.status == 200;
            if (!up) std::this_thread::sleep_for(std::chrono::milliseconds(100));
        }
        ASSERT_TRUE(up) << "daemon did not come up";
    }

    static void TearDownTestSuite() {
        if (pid_ > 0) {
            kill(pid_, SIGTERM);
            int status = 0;
            waitpid(pid_, &status, 0);
            pid_ = -1;
        }
    }

    static std::string config_path_;
    static pid_t pid_;
};

std::string DaemonTest::config_path_;
pid_t DaemonTest::pid_ = -1;

TEST_F(DaemonTest, StatusReportsClusterActivity) {
    // Give the samplers a moment to produce data.
    std::this_thread::sleep_for(std::chrono::milliseconds(600));
    const auto result = rest::httpRequest("127.0.0.1", kPort, "GET", "/status");
    ASSERT_TRUE(result.ok) << result.error;
    EXPECT_EQ(result.status, 200);
    EXPECT_NE(result.body.find("\"nodes\":2"), std::string::npos) << result.body;
}

TEST_F(DaemonTest, StatusReportsDurabilityCounters) {
    // The config enables persistence, so every stored reading is WAL-logged;
    // wait until at least one record has been written.
    std::string body;
    bool logged = false;
    for (int i = 0; i < 100 && !logged; ++i) {
        const auto result = rest::httpRequest("127.0.0.1", kPort, "GET", "/status");
        ASSERT_TRUE(result.ok) << result.error;
        body = result.body;
        logged = body.find("\"durability\":{\"enabled\":true") != std::string::npos &&
                 body.find("\"walRecordsLogged\":0,") == std::string::npos;
        if (!logged) std::this_thread::sleep_for(std::chrono::milliseconds(100));
    }
    EXPECT_TRUE(logged) << body;
    EXPECT_NE(body.find("\"walRecordsReplayed\":"), std::string::npos);
    EXPECT_NE(body.find("\"componentRestarts\":"), std::string::npos);
    EXPECT_NE(body.find("\"dedupDrops\":"), std::string::npos);
    EXPECT_NE(body.find("\"quarantineWalReplayed\":"), std::string::npos);
}

TEST_F(DaemonTest, SensorsAndLatestReadings) {
    const auto sensors = rest::httpRequest("127.0.0.1", kPort, "GET", "/sensors");
    ASSERT_TRUE(sensors.ok);
    EXPECT_NE(sensors.body.find("/rack0/chassis0/server0/power"), std::string::npos);

    const auto latest = rest::httpRequest(
        "127.0.0.1", kPort, "GET",
        "/sensors/latest?topic=/rack0/chassis0/server0/power");
    ASSERT_TRUE(latest.ok);
    EXPECT_EQ(latest.status, 200);
    EXPECT_NE(latest.body.find("\"value\":"), std::string::npos);
}

TEST_F(DaemonTest, ConfiguredOperatorProducesOutputs) {
    // The aggregator ticks at 500 ms; wait for one output. The budget is
    // generous because CI boxes run several test binaries per core.
    bool found = false;
    for (int i = 0; i < 100 && !found; ++i) {
        const auto result = rest::httpRequest(
            "127.0.0.1", kPort, "GET",
            "/sensors/latest?topic=/rack0/chassis0/server0/power-avg");
        found = result.ok && result.status == 200;
        if (!found) std::this_thread::sleep_for(std::chrono::milliseconds(100));
    }
    EXPECT_TRUE(found) << "aggregator output never appeared";
}

TEST_F(DaemonTest, DynamicPluginLoadOverHttp) {
    const std::string body = R"(
operator dynmax {
    interval 500ms
    window 10s
    operation maximum
    input {
        sensor "<bottomup-1>power"
    }
    output {
        sensor "<bottomup-1>power-peak"
    }
}
)";
    const auto load = rest::httpRequest("127.0.0.1", kPort, "POST",
                                        "/wintermute/load/aggregator", body);
    ASSERT_TRUE(load.ok) << load.error;
    EXPECT_EQ(load.status, 200);
    EXPECT_NE(load.body.find("\"created\":1"), std::string::npos) << load.body;

    const auto operators =
        rest::httpRequest("127.0.0.1", kPort, "GET", "/wintermute/operators");
    ASSERT_TRUE(operators.ok);
    EXPECT_NE(operators.body.find("\"dynmax\""), std::string::npos);
}

}  // namespace
}  // namespace wm
