// Custom gtest main for the model-check suite (ctest label `model`).
//
// The only difference from gtest_main: the binary understands
// `--wm-sched-replay <trace>` (or the WM_SCHED_REPLAY environment
// variable). A replay file turns the matching Model::run into a single
// deterministic re-execution of the recorded schedule — the debugging
// workflow for a failing trace artifact (docs/STATIC_ANALYSIS.md):
//
//   ./test_model_suite --wm-sched-replay subsystem_broker.trace
//       --gtest_filter='ModelSubsystem.Broker*'

#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "check/model.h"
#include "common/logging.h"

int main(int argc, char** argv) {
    std::vector<char*> args;
    args.reserve(static_cast<std::size_t>(argc) + 1);
    for (int i = 0; i < argc; ++i) {
        if (std::strcmp(argv[i], "--wm-sched-replay") == 0 && i + 1 < argc) {
            wm::sched::setGlobalReplayFile(argv[++i]);
        } else if (std::strncmp(argv[i], "--wm-sched-replay=", 18) == 0) {
            wm::sched::setGlobalReplayFile(argv[i] + 18);
        } else {
            args.push_back(argv[i]);
        }
    }
    if (wm::sched::globalReplayFile().empty()) {
        if (const char* env = std::getenv("WM_SCHED_REPLAY")) {
            if (*env != '\0') wm::sched::setGlobalReplayFile(env);
        }
    }
    args.push_back(nullptr);
    int filtered_argc = static_cast<int>(args.size()) - 1;

    // Model bodies re-run hundreds to thousands of times; per-schedule INFO
    // logs (supervisor restarts, server lifecycles) would drown the output.
    wm::common::Logger::instance().setLevel(wm::common::LogLevel::kError);

    ::testing::InitGoogleTest(&filtered_argc, args.data());
    return RUN_ALL_TESTS();
}
