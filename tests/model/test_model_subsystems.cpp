// Model checks of the framework's crown-jewel concurrent paths, run under
// wm::sched exhaustive exploration. Every test states its preemption bound,
// asserts the checker exhausted the bounded interleaving space
// (result.exhausted), and checks invariants that must hold under EVERY
// schedule — most importantly the PR5 exactly-once-storage dedup contract.
//
// Model-test determinism rules (docs/STATIC_ANALYSIS.md):
//  * all mutable state is created fresh inside the body, per schedule;
//  * topic interning against the process-wide TopicTable is warmed up by
//    one plain run of the body before exploration (interning is
//    append-only process state, so the first schedule would otherwise take
//    different lock paths than later ones);
//  * timestamps come from common::nowNs(), which the checker pins to a
//    fixed virtual epoch.

#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <string>

#include "check/assert.h"
#include "check/model.h"
#include "collectagent/collect_agent.h"
#include "common/mutex.h"
#include "common/thread.h"
#include "common/time_utils.h"
#include "core/supervisor.h"
#include "mqtt/broker.h"
#include "sensors/sensor_cache.h"
#include "sensors/topic_table.h"
#include "storage/sharded_storage_backend.h"
#include "storage/storage_backend.h"
#include "test_fixtures.h"

namespace wm {
namespace {

sched::Options subsystemOptions(const std::string& name, int preemption_bound) {
    sched::Options options;
    options.name = name;
    options.preemption_bound = preemption_bound;
    options.trace_dir = ::testing::TempDir();
    return options;
}

// Broker: a publisher delivering two messages races subscription churn and
// the eviction of a dead (throwing) subscriber. The stable wildcard
// subscriber must see both messages and the dead one must be evicted after
// its single-failure budget, under every interleaving.
TEST(ModelSubsystem, BrokerPublishVsSubscribeVsEviction) {
    if (!sched::available()) GTEST_SKIP() << "built with WM_SCHED=OFF";
    const auto result = sched::check(
        subsystemOptions("subsystem.broker", 2), [] {
            mqtt::Broker broker;
            broker.setSubscriberFailureBudget(1);
            std::atomic<int> stable_hits{0};
            broker.subscribe("/m/#", [&](const mqtt::Message&) {
                stable_hits.fetch_add(1, std::memory_order_relaxed);
            });
            broker.subscribe("/m/a", [](const mqtt::Message&) {
                throw std::runtime_error("dead subscriber");
            });
            common::Thread publisher(
                [&] {
                    WM_MODEL_CHECK(broker.publish({"/m/a", {{1, 1.0}}}) >= 1);
                    WM_MODEL_CHECK(broker.publish({"/m/a", {{2, 2.0}}}) >= 1);
                },
                "publisher");
            common::Thread churn(
                [&] {
                    const auto id =
                        broker.subscribe("/m/b", [](const mqtt::Message&) {});
                    WM_MODEL_CHECK(id != 0u);
                    WM_MODEL_CHECK(broker.unsubscribe(id));
                },
                "churn");
            publisher.join();
            churn.join();
            WM_MODEL_CHECK_MSG(stable_hits.load() == 2,
                               "stable subscriber saw " << stable_hits.load());
            WM_MODEL_CHECK(broker.evictedSubscribers() == 1);
            WM_MODEL_CHECK(broker.deliveryFailures() == 1);
            WM_MODEL_CHECK(broker.subscriptionCount() == 1);
        });
    ASSERT_TRUE(result.ok) << result.message;
    EXPECT_TRUE(result.exhausted) << "DFS hit the schedule budget";
    EXPECT_GT(result.schedules, 1u);
}

// CacheStore/SensorCache: a writer inserting readings races a reader doing
// copy-free visitation and lock-free id-keyed lookups. Visited readings
// must always come out time-ordered, whatever the interleaving.
TEST(ModelSubsystem, CacheStoreInsertVsCopyFreeVisitation) {
    if (!sched::available()) GTEST_SKIP() << "built with WM_SCHED=OFF";
    const auto result = sched::check(
        subsystemOptions("subsystem.cache", 2), [] {
            // Private interning table, fresh per schedule: the intern path
            // (exclusive lock) is then identical in every schedule.
            sensors::TopicTable table;
            sensors::CacheStore store(180 * common::kNsPerSec, &table);
            sensors::SensorCache& cache = store.getOrCreate("/model/cache");
            const common::TimestampNs t0 = common::nowNs();
            WM_MODEL_CHECK(cache.store({t0, 1.0}));
            common::Thread writer(
                [&] {
                    WM_MODEL_CHECK(cache.store({t0 + common::kNsPerMs, 2.0}));
                    WM_MODEL_CHECK(cache.store({t0 + 2 * common::kNsPerMs, 3.0}));
                },
                "writer");
            common::Thread reader(
                [&] {
                    const sensors::TopicId id = store.idOf("/model/cache");
                    WM_MODEL_CHECK(store.find(id) == &cache);
                    for (int pass = 0; pass < 2; ++pass) {
                        common::TimestampNs prev = 0;
                        std::size_t visited = 0;
                        cache.forEachRelative(
                            10 * common::kNsPerSec,
                            [&](const sensors::Reading& reading) {
                                WM_MODEL_CHECK(reading.timestamp >= prev);
                                prev = reading.timestamp;
                                ++visited;
                            });
                        WM_MODEL_CHECK(visited >= 1);  // t0 is always there
                        WM_MODEL_CHECK(cache.latest().has_value());
                    }
                },
                "reader");
            writer.join();
            reader.join();
            WM_MODEL_CHECK(cache.size() == 3);
            const auto latest = cache.latest();
            WM_MODEL_CHECK(latest.has_value() &&
                           latest->timestamp == t0 + 2 * common::kNsPerMs);
            const auto stats = cache.statsRelative(10 * common::kNsPerSec);
            WM_MODEL_CHECK(stats.has_value() && stats->count == 3);
        });
    ASSERT_TRUE(result.ok) << result.message;
    EXPECT_TRUE(result.exhausted) << "DFS hit the schedule budget";
    EXPECT_GT(result.schedules, 1u);
}

// Pusher replay ring vs Collect Agent sequence dedup: the PR5 exactly-once
// storage contract. A replayRecent() (at-least-once recovery) races a
// concurrent sample tick; whatever the interleaving, storage must hold
// exactly one copy of each published reading, with every duplicate dropped
// by the agent's per-topic sequence tracking.
TEST(ModelSubsystem, PusherReplayVsAgentSequenceDedup) {
    if (!sched::available()) GTEST_SKIP() << "built with WM_SCHED=OFF";
    const auto body = [] {
        mqtt::Broker broker;  // synchronous: delivery on the publishing thread
        storage::StorageBackend storage;
        collectagent::CollectAgentConfig agent_config;
        agent_config.filter = "/test/#";
        collectagent::CollectAgent agent(agent_config, broker, storage);
        agent.start();

        pusher::PusherConfig pusher_config;
        pusher_config.worker_threads = 1;
        pusher_config.replay_ring_max = 8;
        auto pusher = testing::makeTesterPusher(&broker, 1, pusher_config);

        const common::TimestampNs t0 = common::nowNs();
        const common::TimestampNs t1 = t0 + common::kNsPerSec;
        pusher->sampleOnce(t0);  // sequence 1 published, stored once

        common::Thread replayer([&] { pusher->replayRecent(); }, "replayer");
        common::Thread sampler([&] { pusher->sampleOnce(t1); }, "sampler");
        replayer.join();
        sampler.join();

        // Exactly-once storage: one row per published reading, no matter
        // where the replay interleaved with the second sample.
        const auto rows =
            storage.query("/test/test0", 0, t1 + common::kNsPerSec);
        WM_MODEL_CHECK_MSG(rows.size() == 2,
                           "storage holds " << rows.size() << " rows");
        WM_MODEL_CHECK(rows[0].timestamp == t0);
        WM_MODEL_CHECK(rows[1].timestamp == t1);
        WM_MODEL_CHECK(agent.readingsStored() == 2);
        // The replayed sequence-1 message is always a duplicate; depending
        // on the schedule the ring may also have replayed sequence 2.
        WM_MODEL_CHECK(agent.dedupDrops() >= 1);
        WM_MODEL_CHECK(agent.quarantinedReadings() == 0);
        WM_MODEL_CHECK(pusher->messagesReplayed() >= 1);
    };
    // Warm the process-wide TopicTable (append-only state shared across
    // schedules) so every explored schedule takes identical interning paths.
    body();
    const auto result =
        sched::check(subsystemOptions("subsystem.dedup", 1), body);
    ASSERT_TRUE(result.ok) << result.message;
    EXPECT_TRUE(result.exhausted) << "DFS hit the schedule budget";
    EXPECT_GT(result.schedules, 1u);
}

// Supervisor restart racing a storage checkpoint: the supervisor's poll
// restarts an unhealthy component (which writes through to durable
// storage) while another thread compacts the WAL into a snapshot. Every
// interleaving must leave storage healthy and crash-recoverable with the
// complete dataset.
TEST(ModelSubsystem, SupervisorRestartVsCheckpoint) {
    if (!sched::available()) GTEST_SKIP() << "built with WM_SCHED=OFF";
    const std::string dir =
        (std::filesystem::path(::testing::TempDir()) / "wm_sched_supervisor")
            .string();
    const auto result = sched::check(
        subsystemOptions("subsystem.supervisor", 2), [&dir] {
            // Fresh on-disk state per schedule; filesystem calls are not
            // schedule points, so this keeps every schedule identical.
            std::filesystem::remove_all(dir);
            std::filesystem::create_directories(dir);
            storage::StorageBackend storage;
            storage::DurabilityOptions durability;
            durability.directory = dir;
            WM_MODEL_CHECK(storage.enableDurability(durability));
            const common::TimestampNs t0 = common::nowNs();
            WM_MODEL_CHECK(storage.insert("/sup/s0", {t0, 1.0}));

            std::atomic<bool> component_up{false};
            core::SupervisorConfig config;
            config.rng_seed = 7;
            core::Supervisor supervisor(config);
            supervisor.registerComponent(
                {"agent", [&] { return component_up.load(); },
                 [&] {
                     // The restart path re-ingests the reading the wedged
                     // component failed to persist.
                     component_up.store(true);
                     return storage.insert("/sup/s0",
                                           {t0 + common::kNsPerSec, 2.0});
                 }});

            common::Thread poller([&] { supervisor.pollOnce(common::nowNs()); },
                                  "poller");
            common::Thread checkpointer(
                [&] { WM_MODEL_CHECK(storage.checkpointNow()); },
                "checkpointer");
            poller.join();
            checkpointer.join();

            WM_MODEL_CHECK(supervisor.restartsTotal() == 1);
            WM_MODEL_CHECK(component_up.load());
            WM_MODEL_CHECK(storage.healthy());
            WM_MODEL_CHECK(
                storage.query("/sup/s0", 0, t0 + 2 * common::kNsPerSec).size() ==
                2);

            // Crash-consistency: whether each insert landed before or after
            // the checkpoint, snapshot + WAL must recover both readings.
            storage::StorageBackend recovered;
            WM_MODEL_CHECK(recovered.enableDurability(durability));
            WM_MODEL_CHECK(
                recovered.query("/sup/s0", 0, t0 + 2 * common::kNsPerSec)
                    .size() == 2);
        });
    ASSERT_TRUE(result.ok) << result.message;
    EXPECT_TRUE(result.exhausted) << "DFS hit the schedule budget";
    EXPECT_GT(result.schedules, 1u);
    std::filesystem::remove_all(dir);
}

// Sharded ingest plane: two Collect Agents with disjoint subtree filters
// feed one ShardedStorageBackend while two publishers race original and
// replayed (duplicate-sequence) deliveries of each topic. The PR5
// exactly-once contract must survive sharding under every interleaving:
// each agent's per-topic sequence dedup drops the duplicate, whichever
// thread's copy arrives first, and each shard's store holds exactly one
// row per published reading.
TEST(ModelSubsystem, ShardedAgentsPreserveExactlyOnceDedup) {
    if (!sched::available()) GTEST_SKIP() << "built with WM_SCHED=OFF";
    const auto body = [] {
        mqtt::Broker broker;  // synchronous: delivery on the publishing thread
        storage::ShardedStorageBackend storage(2);
        collectagent::CollectAgentConfig config_a;
        config_a.name = "agent-a";
        config_a.filters = {"/shard/a/#"};
        collectagent::CollectAgentConfig config_b;
        config_b.name = "agent-b";
        config_b.filters = {"/shard/b/#"};
        collectagent::CollectAgent agent_a(config_a, broker, storage);
        collectagent::CollectAgent agent_b(config_b, broker, storage);
        agent_a.start();
        agent_b.start();

        const common::TimestampNs t0 = common::nowNs();
        const mqtt::Message msg_a{"/shard/a/s", {{t0, 1.0}}, 1};
        const mqtt::Message msg_b{"/shard/b/s", {{t0, 2.0}}, 1};
        common::Thread original(
            [&] {
                WM_MODEL_CHECK(broker.publish(msg_a) == 1);
                WM_MODEL_CHECK(broker.publish(msg_b) == 1);
            },
            "original");
        common::Thread replayer(  // at-least-once redelivery of both
            [&] {
                WM_MODEL_CHECK(broker.publish(msg_a) == 1);
                WM_MODEL_CHECK(broker.publish(msg_b) == 1);
            },
            "replayer");
        original.join();
        replayer.join();

        // Exactly-once per topic, whichever thread won each race.
        const auto rows_a = storage.query("/shard/a/s", 0, t0 + 1);
        const auto rows_b = storage.query("/shard/b/s", 0, t0 + 1);
        WM_MODEL_CHECK_MSG(rows_a.size() == 1,
                           "/shard/a/s holds " << rows_a.size() << " rows");
        WM_MODEL_CHECK_MSG(rows_b.size() == 1,
                           "/shard/b/s holds " << rows_b.size() << " rows");
        WM_MODEL_CHECK(agent_a.dedupDrops() == 1);
        WM_MODEL_CHECK(agent_b.dedupDrops() == 1);
        WM_MODEL_CHECK(agent_a.readingsStored() == 1);
        WM_MODEL_CHECK(agent_b.readingsStored() == 1);
        WM_MODEL_CHECK(agent_a.quarantinedReadings() == 0);
        WM_MODEL_CHECK(agent_b.quarantinedReadings() == 0);
        WM_MODEL_CHECK(storage.stats().reading_count == 2);
        agent_a.stop();
        agent_b.stop();
    };
    // Warm the process-wide TopicTable (append-only state shared across
    // schedules) so every explored schedule takes identical interning paths.
    body();
    const auto result =
        sched::check(subsystemOptions("subsystem.sharded_dedup", 1), body);
    ASSERT_TRUE(result.ok) << result.message;
    EXPECT_TRUE(result.exhausted) << "DFS hit the schedule budget";
    EXPECT_GT(result.schedules, 1u);
}

}  // namespace
}  // namespace wm
