// Model check of the wire transport's replay gate (net/connection.h,
// docs/RESILIENCE.md "Wire transport"): after a reconnect, the replay ring
// (old sequences the server may have lost) must reach the consumer before
// any freshly sampled reading (newer sequences) goes out. The consumer
// dedups on a cumulative per-topic watermark, so delivering a newer
// sequence first makes every later redelivery of an older one a dedup
// drop — a replayable reading turned into a permanent storage gap.
//
// Both directions are proved, mirroring the golden-bug corpus idiom:
//  * gated  — exactly-once storage under EVERY schedule (result.ok,
//             exhausted);
//  * ungated — the checker FINDS a losing schedule (result.ok false with
//             the missing-reading message), demonstrating the gate is
//             load-bearing, not ceremony.
//
// The wire itself is abstracted to the synchronous broker: sockets are
// blocking syscalls outside the scheduler's control, and the property at
// stake is pure ordering of publishes against the watermark dedup.

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <vector>

#include "check/assert.h"
#include "check/model.h"
#include "collectagent/collect_agent.h"
#include "common/thread.h"
#include "common/time_utils.h"
#include "mqtt/broker.h"
#include "storage/storage_backend.h"

namespace wm {
namespace {

sched::Options netOptions(const std::string& name) {
    sched::Options options;
    options.name = name;
    options.preemption_bound = 2;
    options.trace_dir = ::testing::TempDir();
    return options;
}

// One reconnect instant. Sequences 1 and 2 were sent before the old
// connection died unacked (a frame gap ate them), so they live only in the
// client's replay ring; sequence 3 is freshly sampled while the replay is
// still in flight. `gated` selects whether the fresh publish honours the
// replay gate (buffer + flush-after, as net::Connection + Pusher do) or
// races the ring onto the wire directly.
void reconnectBody(bool gated) {
    mqtt::Broker broker;  // synchronous: delivery on the publishing thread
    storage::StorageBackend storage;
    collectagent::CollectAgentConfig agent_config;
    agent_config.filter = "/netmodel/#";
    collectagent::CollectAgent agent(agent_config, broker, storage);
    agent.start();

    const common::TimestampNs t0 = common::nowNs();
    const std::vector<mqtt::Message> ring = {
        {"/netmodel/s", {{t0, 1.0}}, 1},
        {"/netmodel/s", {{t0 + common::kNsPerMs, 2.0}}, 2},
    };
    const mqtt::Message fresh{
        "/netmodel/s", {{t0 + 2 * common::kNsPerMs, 3.0}}, 3};

    std::atomic<bool> gate_open{false};
    std::vector<mqtt::Message> buffered;

    common::Thread replayer(
        [&] {
            for (const auto& message : ring) {
                WM_MODEL_CHECK(broker.publish(message) == 1);
            }
            gate_open.store(true);
        },
        "replayer");
    common::Thread publisher(
        [&] {
            if (gated && !gate_open.load()) {
                // Gate closed: publish() would refuse, the Pusher buffers
                // and retries later (modelled by the flush below).
                buffered.push_back(fresh);
                return;
            }
            WM_MODEL_CHECK(broker.publish(fresh) == 1);
        },
        "publisher");
    replayer.join();
    publisher.join();
    // The Pusher's paced retry after the gate reopened.
    for (const auto& message : buffered) {
        WM_MODEL_CHECK(broker.publish(message) == 1);
    }

    const auto rows =
        storage.query("/netmodel/s", 0, t0 + common::kNsPerSec);
    WM_MODEL_CHECK_MSG(rows.size() == 3,
                       "storage holds " << rows.size()
                                        << " of 3 published readings — a "
                                           "replayable reading was lost");
    WM_MODEL_CHECK(agent.quarantinedReadings() == 0);
}

TEST(ModelNet, GatedReplayIsExactlyOnceUnderEverySchedule) {
    if (!sched::available()) GTEST_SKIP() << "built with WM_SCHED=OFF";
    // Warm the process-wide TopicTable (append-only state shared across
    // schedules) so every explored schedule takes identical interning paths.
    reconnectBody(true);
    const auto result = sched::check(netOptions("net.replay_gated"),
                                     [] { reconnectBody(true); });
    ASSERT_TRUE(result.ok) << result.message;
    EXPECT_TRUE(result.exhausted) << "DFS hit the schedule budget";
    EXPECT_GT(result.schedules, 1u);
}

TEST(ModelNet, UngatedReplayLosesAReadingUnderSomeSchedule) {
    if (!sched::available()) GTEST_SKIP() << "built with WM_SCHED=OFF";
    reconnectBody(true);  // warm interning via the always-passing variant
    const auto result = sched::check(netOptions("net.replay_ungated"),
                                     [] { reconnectBody(false); });
    ASSERT_FALSE(result.ok)
        << "checker missed the watermark-poisoning loss: a fresh sequence "
           "racing ahead of the ring replay must lose a reading";
    EXPECT_NE(result.message.find("replayable reading was lost"),
              std::string::npos)
        << result.message;
}

}  // namespace
}  // namespace wm
