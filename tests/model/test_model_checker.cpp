// Self-tests of the wm::sched model checker: exploration really enumerates
// interleavings, the preemption bound really prunes, virtual time is
// deterministic, and failing schedules replay byte-for-byte. The subsystem
// and golden-bug suites build on these guarantees.

#include <gtest/gtest.h>

#include <chrono>
#include <set>
#include <string>

#include "check/assert.h"
#include "check/model.h"
#include "check/shared.h"
#include "common/mutex.h"
#include "common/thread.h"
#include "common/time_utils.h"

namespace wm {
namespace {

sched::Options baseOptions(const std::string& name) {
    sched::Options options;
    options.name = name;
    options.trace_dir = ::testing::TempDir();
    return options;
}

TEST(ModelChecker, Available) {
    // The model suite only makes sense with instrumentation compiled in
    // (WM_SCHED, ON by default); a WM_SCHED=OFF build skips everything.
    EXPECT_TRUE(sched::available());
}

// Two threads append two markers each; every append is fenced by a yield
// schedule point. Exhaustive mode must observe all 4!/(2!2!) = 6 orderings
// of the marker multiset AABB.
TEST(ModelChecker, ExhaustiveEnumeratesAllInterleavings) {
    if (!sched::available()) GTEST_SKIP() << "built with WM_SCHED=OFF";
    std::set<std::string> seen;
    auto options = baseOptions("self.interleavings");
    options.preemption_bound = 8;  // effectively unbounded for 4 steps
    const auto result = sched::check(options, [&] {
        std::string sequence;
        common::Thread a(
            [&] {
                common::Thread::yield();
                sequence += 'A';
                common::Thread::yield();
                sequence += 'A';
            },
            "a");
        common::Thread b(
            [&] {
                common::Thread::yield();
                sequence += 'B';
                common::Thread::yield();
                sequence += 'B';
            },
            "b");
        a.join();
        b.join();
        seen.insert(sequence);
    });
    ASSERT_TRUE(result.ok) << result.message;
    EXPECT_TRUE(result.exhausted);
    EXPECT_EQ(seen, (std::set<std::string>{"AABB", "ABAB", "ABBA", "BAAB",
                                           "BABA", "BBAA"}));
}

// Preemption bound 0 forbids switching away from a runnable thread, so each
// child runs its markers contiguously: only AABB and BBAA remain.
TEST(ModelChecker, PreemptionBoundZeroKeepsRunsContiguous) {
    if (!sched::available()) GTEST_SKIP() << "built with WM_SCHED=OFF";
    std::set<std::string> seen;
    auto options = baseOptions("self.bound_zero");
    options.preemption_bound = 0;
    const auto result = sched::check(options, [&] {
        std::string sequence;
        common::Thread a(
            [&] {
                common::Thread::yield();
                sequence += 'A';
                common::Thread::yield();
                sequence += 'A';
            },
            "a");
        common::Thread b(
            [&] {
                common::Thread::yield();
                sequence += 'B';
                common::Thread::yield();
                sequence += 'B';
            },
            "b");
        a.join();
        b.join();
        seen.insert(sequence);
    });
    ASSERT_TRUE(result.ok) << result.message;
    EXPECT_TRUE(result.exhausted);
    EXPECT_EQ(seen, (std::set<std::string>{"AABB", "BBAA"}));
}

// Virtual time: sleeps and timed waits advance a deterministic model clock
// instead of stalling the test for wall-clock time.
TEST(ModelChecker, VirtualClockAdvancesToDeadlines) {
    if (!sched::available()) GTEST_SKIP() << "built with WM_SCHED=OFF";
    auto options = baseOptions("self.virtual_clock");
    const auto wall_start = std::chrono::steady_clock::now();
    const auto result = sched::check(options, [&] {
        const common::TimestampNs start = common::nowNs();
        common::Thread sleeper(
            [&] {
                common::Thread::sleepFor(std::chrono::seconds(30));
                WM_MODEL_CHECK(common::nowNs() >= start + 30 * common::kNsPerSec);
            },
            "sleeper");
        common::Mutex mutex("self.clock");
        common::ConditionVariable cv;
        {
            common::MutexLock lock(mutex);
            // Nobody notifies: the wait must resolve by virtual timeout.
            const auto status = cv.wait_for(mutex, std::chrono::seconds(5));
            WM_MODEL_CHECK(status == std::cv_status::timeout);
        }
        sleeper.join();
        WM_MODEL_CHECK(common::nowNs() >= start + 30 * common::kNsPerSec);
    });
    ASSERT_TRUE(result.ok) << result.message;
    EXPECT_TRUE(result.exhausted);
    // 35+ virtual seconds must not cost 35 wall seconds.
    EXPECT_LT(std::chrono::steady_clock::now() - wall_start,
              std::chrono::seconds(20));
}

// A schedule that parks a thread waiting on a lock held across its own join
// is reported as a deadlock (waits-for cycle root -> child -> root), not a
// hang of the test binary.
TEST(ModelChecker, SelfDeadlockDetected) {
    if (!sched::available()) GTEST_SKIP() << "built with WM_SCHED=OFF";
    auto options = baseOptions("self.join_deadlock");
    const auto result = sched::check(options, [&] {
        common::Mutex mutex("self.deadlock");
        mutex.lock();
        common::Thread child([&] { common::MutexLock lock(mutex); }, "child");
        child.join();  // child can never acquire: cycle
        mutex.unlock();
    });
    EXPECT_FALSE(result.ok);
    EXPECT_EQ(result.failure, sched::FailureKind::kDeadlock);
    EXPECT_NE(result.message.find("deadlock"), std::string::npos) << result.message;
}

// An untimed wait that no-one will ever notify is classified as a lost
// wakeup, with the waiting thread named in the report.
TEST(ModelChecker, LostWakeupDetected) {
    if (!sched::available()) GTEST_SKIP() << "built with WM_SCHED=OFF";
    auto options = baseOptions("self.lost_wakeup");
    const auto result = sched::check(options, [&] {
        common::Mutex mutex("self.lw");
        common::ConditionVariable cv;
        common::Thread waiter(
            [&] {
                common::MutexLock lock(mutex);
                cv.wait(mutex);
            },
            "waiter");
        waiter.join();
    });
    EXPECT_FALSE(result.ok);
    EXPECT_EQ(result.failure, sched::FailureKind::kLostWakeup);
}

// Unsynchronised Shared<T> writes are caught by the vector-clock detector
// on the very first schedule — execution is serialised, so only the
// happens-before analysis (not luck) can see the race.
TEST(ModelChecker, DataRaceDetected) {
    if (!sched::available()) GTEST_SKIP() << "built with WM_SCHED=OFF";
    auto options = baseOptions("self.race");
    const auto result = sched::check(options, [&] {
        sched::Shared<int> counter(0, "self.counter");
        common::Thread a([&] { counter.fetchAdd(1); }, "a");
        common::Thread b([&] { counter.fetchAdd(1); }, "b");
        a.join();
        b.join();
    });
    EXPECT_FALSE(result.ok);
    EXPECT_EQ(result.failure, sched::FailureKind::kDataRace);
    EXPECT_NE(result.message.find("self.counter"), std::string::npos)
        << result.message;
}

// The same accesses ordered through a mutex carry happens-before edges and
// must NOT be reported.
TEST(ModelChecker, MutexOrderedAccessesAreNotRaces) {
    if (!sched::available()) GTEST_SKIP() << "built with WM_SCHED=OFF";
    auto options = baseOptions("self.no_race");
    options.preemption_bound = 3;
    const auto result = sched::check(options, [&] {
        common::Mutex mutex("self.guard");
        sched::Shared<int> counter(0, "self.guarded_counter");
        common::Thread a(
            [&] {
                common::MutexLock lock(mutex);
                counter.fetchAdd(1);
            },
            "a");
        common::Thread b(
            [&] {
                common::MutexLock lock(mutex);
                counter.fetchAdd(1);
            },
            "b");
        a.join();
        b.join();
        WM_MODEL_CHECK(counter.load() == 2);
    });
    ASSERT_TRUE(result.ok) << result.message;
    EXPECT_TRUE(result.exhausted);
}

// A failing exploration writes its schedule trace; replaying the file runs
// exactly one schedule and reproduces the same failure kind.
TEST(ModelChecker, TraceReplayReproducesFailure) {
    if (!sched::available()) GTEST_SKIP() << "built with WM_SCHED=OFF";
    const auto body = [] {
        sched::Shared<int> cell(0, "self.replay_cell");
        common::Thread a([&] { cell.store(1); }, "a");
        common::Thread b([&] { cell.store(2); }, "b");
        a.join();
        b.join();
    };
    auto options = baseOptions("self.replay");
    const auto first = sched::check(options, body);
    ASSERT_FALSE(first.ok);
    ASSERT_EQ(first.failure, sched::FailureKind::kDataRace);
    ASSERT_FALSE(first.trace.empty());
    ASSERT_FALSE(first.trace_path.empty());

    sched::Options replay = baseOptions("self.replay");
    replay.mode = sched::Options::Mode::kReplay;
    replay.replay_trace = first.trace_path;
    const auto second = sched::check(replay, body);
    EXPECT_FALSE(second.ok);
    EXPECT_EQ(second.failure, sched::FailureKind::kDataRace);
    EXPECT_EQ(second.schedules, 1u);
}

// PCT mode: seeded random-priority exploration finds the race, and the
// recorded seed reproduces the identical failing schedule end-to-end.
TEST(ModelChecker, PctSeedReproducesFailure) {
    if (!sched::available()) GTEST_SKIP() << "built with WM_SCHED=OFF";
    const auto body = [] {
        sched::Shared<int> cell(0, "self.pct_cell");
        common::Thread a([&] { cell.store(1); }, "a");
        common::Thread b([&] { cell.store(2); }, "b");
        a.join();
        b.join();
    };
    auto options = baseOptions("self.pct");
    options.mode = sched::Options::Mode::kPct;
    options.pct_iterations = 50;
    const auto first = sched::check(options, body);
    ASSERT_FALSE(first.ok);
    ASSERT_EQ(first.failure, sched::FailureKind::kDataRace);

    auto again = baseOptions("self.pct");
    again.mode = sched::Options::Mode::kPct;
    again.pct_iterations = 50;
    again.seed = first.seed;
    const auto second = sched::check(again, body);
    ASSERT_FALSE(second.ok);
    EXPECT_EQ(second.failure, first.failure);
    EXPECT_EQ(second.trace, first.trace);
}

// WM_MODEL_CHECK failures surface as kAssertion with the schedule trace.
TEST(ModelChecker, ModelAssertionReported) {
    if (!sched::available()) GTEST_SKIP() << "built with WM_SCHED=OFF";
    auto options = baseOptions("self.assertion");
    const auto result = sched::check(options, [&] {
        common::Thread worker([] { common::Thread::yield(); }, "worker");
        worker.join();
        WM_MODEL_CHECK_MSG(false, "deliberate failure");
    });
    EXPECT_FALSE(result.ok);
    EXPECT_EQ(result.failure, sched::FailureKind::kAssertion);
    EXPECT_NE(result.message.find("deliberate failure"), std::string::npos)
        << result.message;
}

}  // namespace
}  // namespace wm
