// Golden-bug corpus for wm-sched, mirroring the bad-config corpus idiom of
// wm-check: each test plants a known concurrency bug behind a
// fault-injection flag and asserts the checker finds it with a replayable
// trace — and that the same code with the fault disarmed verifies clean.
//
// Bugs planted:
//  * model.golden.abba        — lock-order inversion (ABBA deadlock) on two
//                               kUnranked mutexes (exempt from the runtime
//                               rank checker, so only wm-sched can see it);
//  * model.golden.lost_wakeup — producer sets the predicate but skips the
//                               notify, stranding an untimed waiter.

#include <gtest/gtest.h>

#include <fstream>
#include <string>

#include "check/assert.h"
#include "check/model.h"
#include "check/shared.h"
#include "common/fault.h"
#include "common/mutex.h"
#include "common/thread.h"

namespace wm {
namespace {

sched::Options goldenOptions(const std::string& name, int preemption_bound) {
    sched::Options options;
    options.name = name;
    options.preemption_bound = preemption_bound;
    options.trace_dir = ::testing::TempDir();
    return options;
}

// The ABBA body: t1 always locks A then B; t2 inverts the order only when
// the fault point fires. kAlways triggers keep every schedule identical.
void abbaBody() {
    common::Mutex mutex_a("golden.A");
    common::Mutex mutex_b("golden.B");
    const bool inverted = static_cast<bool>(common::fault::check("model.golden.abba"));
    common::Thread t1(
        [&] {
            common::MutexLock lock_a(mutex_a);
            common::Thread::yield();
            common::MutexLock lock_b(mutex_b);
        },
        "t1");
    common::Thread t2(
        [&] {
            if (inverted) {
                common::MutexLock lock_b(mutex_b);
                common::Thread::yield();
                common::MutexLock lock_a(mutex_a);
            } else {
                common::MutexLock lock_a(mutex_a);
                common::Thread::yield();
                common::MutexLock lock_b(mutex_b);
            }
        },
        "t2");
    t1.join();
    t2.join();
}

TEST(ModelGolden, AbbaDeadlockFoundAndReplayable) {
    if (!sched::available()) GTEST_SKIP() << "built with WM_SCHED=OFF";
    common::fault::FaultInjector injector;
    ASSERT_TRUE(injector.armFromText("model.golden.abba", "fail"));
    common::fault::ScopedInjector guard(injector);

    // The deadlocking interleaving needs two preemptions (t1 between its
    // lock(A) and lock(B), t2 between its lock(B) and lock(A)).
    const auto result =
        sched::check(goldenOptions("golden.abba_deadlock", 2), abbaBody);
    ASSERT_FALSE(result.ok) << "checker missed the planted ABBA deadlock";
    EXPECT_EQ(result.failure, sched::FailureKind::kDeadlock);
    EXPECT_NE(result.message.find("golden."), std::string::npos) << result.message;
    ASSERT_FALSE(result.trace.empty());
    ASSERT_FALSE(result.trace_path.empty());
    EXPECT_TRUE(std::ifstream(result.trace_path).good());

    // The trace replays to the same deadlock, deterministically.
    auto replay = goldenOptions("golden.abba_deadlock", 2);
    replay.mode = sched::Options::Mode::kReplay;
    replay.replay_trace = result.trace_path;
    const auto replayed = sched::check(replay, abbaBody);
    EXPECT_FALSE(replayed.ok);
    EXPECT_EQ(replayed.failure, sched::FailureKind::kDeadlock);
    EXPECT_EQ(replayed.schedules, 1u);
}

TEST(ModelGolden, AbbaBodyVerifiesCleanWithoutFault) {
    if (!sched::available()) GTEST_SKIP() << "built with WM_SCHED=OFF";
    // No injector installed: both threads lock A then B — no inversion.
    const auto result =
        sched::check(goldenOptions("golden.abba_clean", 2), abbaBody);
    ASSERT_TRUE(result.ok) << result.message;
    EXPECT_TRUE(result.exhausted);
    EXPECT_GT(result.schedules, 1u);
}

// The lost-wakeup body: consumer waits for `ready` under the mutex; the
// producer sets it but — when the fault fires — forgets the notify.
void lostWakeupBody() {
    common::Mutex mutex("golden.lw");
    common::ConditionVariable cv;
    sched::Shared<int> ready(0, "golden.ready");
    const bool skip_notify =
        static_cast<bool>(common::fault::check("model.golden.lost_wakeup"));
    common::Thread consumer(
        [&] {
            common::MutexLock lock(mutex);
            while (ready.load() == 0) {
                cv.wait(mutex);
            }
        },
        "consumer");
    common::Thread producer(
        [&] {
            common::MutexLock lock(mutex);
            ready.store(1);
            if (!skip_notify) {
                cv.notify_one();
            }
        },
        "producer");
    consumer.join();
    producer.join();
    WM_MODEL_CHECK(ready.load() == 1);
}

TEST(ModelGolden, LostWakeupFoundAndReplayable) {
    if (!sched::available()) GTEST_SKIP() << "built with WM_SCHED=OFF";
    common::fault::FaultInjector injector;
    ASSERT_TRUE(injector.armFromText("model.golden.lost_wakeup", "fail"));
    common::fault::ScopedInjector guard(injector);

    const auto result =
        sched::check(goldenOptions("golden.lost_wakeup", 2), lostWakeupBody);
    ASSERT_FALSE(result.ok) << "checker missed the planted lost wakeup";
    EXPECT_EQ(result.failure, sched::FailureKind::kLostWakeup);
    ASSERT_FALSE(result.trace_path.empty());

    auto replay = goldenOptions("golden.lost_wakeup", 2);
    replay.mode = sched::Options::Mode::kReplay;
    replay.replay_trace = result.trace_path;
    const auto replayed = sched::check(replay, lostWakeupBody);
    EXPECT_FALSE(replayed.ok);
    EXPECT_EQ(replayed.failure, sched::FailureKind::kLostWakeup);
}

TEST(ModelGolden, LostWakeupBodyVerifiesCleanWithoutFault) {
    if (!sched::available()) GTEST_SKIP() << "built with WM_SCHED=OFF";
    const auto result =
        sched::check(goldenOptions("golden.lost_wakeup_clean", 2), lostWakeupBody);
    ASSERT_TRUE(result.ok) << result.message;
    EXPECT_TRUE(result.exhausted);
    // The guarded Shared<int> accesses never report: mutex edges order them.
    EXPECT_GT(result.schedules, 1u);
}

// Unsynchronised counter increments: the planted data race the acceptance
// criteria call for, found by the vector-clock detector and reproducible
// from the written trace.
TEST(ModelGolden, DataRaceFoundAndReplayable) {
    if (!sched::available()) GTEST_SKIP() << "built with WM_SCHED=OFF";
    const auto body = [] {
        sched::Shared<int> hits(0, "golden.hits");
        common::Thread a([&] { hits.fetchAdd(1); }, "a");
        common::Thread b([&] { hits.fetchAdd(1); }, "b");
        a.join();
        b.join();
    };
    const auto result = sched::check(goldenOptions("golden.race", 2), body);
    ASSERT_FALSE(result.ok) << "checker missed the planted data race";
    EXPECT_EQ(result.failure, sched::FailureKind::kDataRace);
    ASSERT_FALSE(result.trace_path.empty());

    auto replay = goldenOptions("golden.race", 2);
    replay.mode = sched::Options::Mode::kReplay;
    replay.replay_trace = result.trace_path;
    const auto replayed = sched::check(replay, body);
    EXPECT_FALSE(replayed.ok);
    EXPECT_EQ(replayed.failure, sched::FailureKind::kDataRace);
}

}  // namespace
}  // namespace wm
