// Scenario library tests (docs/SCENARIOS.md): `.scn` parsing and the WM08xx
// diagnostics, perturbation composition and determinism against the node
// physics, Evaluator scoring against hand-computed fixtures (including the
// truncated-window rule), and the end-to-end campaign drills from
// configs/scenarios/ through the full in-process pipeline.

#include <gtest/gtest.h>

#include <cmath>

#include "analysis/analyzer.h"
#include "analysis/diagnostic.h"
#include "common/config.h"
#include "core/query_engine.h"
#include "scenario/evaluator.h"
#include "scenario/perturbation.h"
#include "scenario/runner.h"
#include "scenario/script.h"
#include "sensors/sensor_cache.h"
#include "simulator/node_model.h"

namespace wm {
namespace {

using common::kNsPerSec;
using namespace wm::scenario;

common::ConfigNode parse(const std::string& text) {
    const auto parsed = common::parseConfig(text);
    EXPECT_TRUE(parsed.ok) << parsed.error;
    return parsed.root;
}

// ---------------------------------------------------------------------------
// Parsing

TEST(ScenarioParse, FullBlockParsesAllFields) {
    const auto root = parse(R"(
scenario drill {
    seed 99
    duration 200s
    warmup 25s
    tolerance 15s
    anomaly thermal_runaway {
        start 60s
        end 120s
        ramp 20s
        magnitude 28
        nodes "0,2-3"
        facility true
    }
    detector hc-temp {
        operator hc
        topic "%node/healthy"
        trigger "below 0.5"
    }
}
)");
    analysis::DiagnosticSink sink;
    const auto script = parseScenario(*root.child("scenario"), &sink);
    ASSERT_TRUE(script.has_value());
    EXPECT_FALSE(sink.hasErrors());
    EXPECT_EQ(script->name, "drill");
    EXPECT_EQ(script->seed, 99u);
    EXPECT_DOUBLE_EQ(script->duration_s, 200.0);
    EXPECT_DOUBLE_EQ(script->warmup_s, 25.0);
    EXPECT_DOUBLE_EQ(script->tolerance_s, 15.0);
    ASSERT_EQ(script->anomalies.size(), 1u);
    const AnomalyEvent& event = script->anomalies[0];
    EXPECT_EQ(event.cls, AnomalyClass::kThermalRunaway);
    EXPECT_DOUBLE_EQ(event.start_s, 60.0);
    EXPECT_DOUBLE_EQ(event.end_s, 120.0);
    EXPECT_DOUBLE_EQ(event.ramp_s, 20.0);
    EXPECT_DOUBLE_EQ(event.magnitude, 28.0);
    EXPECT_EQ(event.nodes, (std::vector<std::size_t>{0, 2, 3}));
    EXPECT_TRUE(event.facility);
    ASSERT_EQ(script->detectors.size(), 1u);
    EXPECT_EQ(script->detectors[0].operator_name, "hc");
    EXPECT_EQ(script->detectors[0].topic, "%node/healthy");
    EXPECT_EQ(script->detectors[0].kind, TriggerKind::kBelow);
    EXPECT_DOUBLE_EQ(script->detectors[0].threshold, 0.5);

    // Ground truth derives one labeled window per event, with the class's
    // sensor-set attached.
    const auto windows = script->groundTruth();
    ASSERT_EQ(windows.size(), 1u);
    EXPECT_EQ(windows[0].cls, AnomalyClass::kThermalRunaway);
    EXPECT_EQ(windows[0].sensors, std::vector<std::string>{"temp"});
    EXPECT_DOUBLE_EQ(windows[0].start_s, 60.0);
    EXPECT_DOUBLE_EQ(windows[0].end_s, 120.0);
}

TEST(ScenarioParse, ClassSpecificMagnitudeDefaults) {
    const auto root = parse(R"(
scenario defaults {
    duration 100s
    anomaly fan_failure {
        start 30s
        end 60s
    }
    anomaly straggler {
        start 30s
        end 60s
    }
    detector d {
        operator hc
        topic "%node/healthy"
        trigger "below 0.5"
    }
}
)");
    const auto script = parseScenario(*root.child("scenario"), nullptr);
    ASSERT_TRUE(script.has_value());
    EXPECT_DOUBLE_EQ(script->anomalies[0].magnitude, 2.5);
    EXPECT_DOUBLE_EQ(script->anomalies[1].magnitude, 0.6);
    // Empty node selector means every node.
    EXPECT_TRUE(script->anomalies[0].nodes.empty());
}

TEST(ScenarioParse, MalformedBlocksRejectedWithStableCodes) {
    const auto root = parse(R"(
scenario broken {
    duration 60s
    bogus 1
    anomaly meteor_strike {
        start 10s
        end 20s
    }
    anomaly thermal_runaway {
        start 50s
        end 20s
    }
    detector d {
        operator hc
        topic "%node/healthy"
        trigger "sideways"
    }
}
)");
    analysis::DiagnosticSink sink;
    const auto script = parseScenario(*root.child("scenario"), &sink);
    EXPECT_FALSE(script.has_value());
    EXPECT_TRUE(sink.hasCode("WM0801")) << renderText(sink);  // unknown knob
    EXPECT_TRUE(sink.hasCode("WM0802")) << renderText(sink);  // unknown class
    EXPECT_TRUE(sink.hasCode("WM0803")) << renderText(sink);  // inverted window
    EXPECT_TRUE(sink.hasCode("WM0804")) << renderText(sink);  // bad trigger
}

TEST(ScenarioParse, MissingDurationIsAnError) {
    const auto root = parse(R"(
scenario no-duration {
    anomaly straggler {
        start 10s
        end 20s
    }
    detector d {
        operator hc
        topic "t"
        trigger "below 0.5"
    }
}
)");
    analysis::DiagnosticSink sink;
    EXPECT_FALSE(parseScenario(*root.child("scenario"), &sink).has_value());
    EXPECT_TRUE(sink.hasCode("WM0801")) << renderText(sink);
}

TEST(ScenarioParse, ValidateScenariosCrossChecksTopologyAndOperators) {
    const auto root = parse(R"(
cluster {
    racks 1
    chassisPerRack 1
    nodesPerChassis 2
    cpusPerNode 4
}
scenario cross {
    duration 60s
    anomaly straggler {
        start 30s
        end 50s
        nodes 7
    }
    detector ghost {
        operator nobody
        topic "%node/healthy"
        trigger "below 0.5"
    }
}
)");
    analysis::DiagnosticSink sink;
    validateScenarios(root, sink);
    EXPECT_TRUE(sink.hasCode("WM0803")) << renderText(sink);  // node 7 of 2
    EXPECT_TRUE(sink.hasCode("WM0805")) << renderText(sink);  // unknown operator
}

TEST(ScenarioParse, BadScenarioCorpusFailsThroughAnalyzer) {
    // The full wm-check pipeline (as wm_check/wintermuted --check run it)
    // must reject the golden bad corpus with the documented codes.
    analysis::DiagnosticSink sink;
    analysis::analyzeConfigFile(std::string(WM_TEST_DATA_DIR) + "/bad_scenario.scn",
                                sink);
    EXPECT_TRUE(sink.hasErrors());
    for (const char* code : {"WM0801", "WM0802", "WM0803", "WM0804"}) {
        EXPECT_TRUE(sink.hasCode(code)) << code << "\n" << renderText(sink);
    }
}

TEST(ScenarioParse, ShippedScenarioConfigsAnalyzeClean) {
    for (const char* name :
         {"thermal_runaway.scn", "fan_failure.scn", "memory_leak.scn",
          "network_congestion.scn", "straggler.scn", "campaign_day.scn",
          "model_drift.scn"}) {
        analysis::DiagnosticSink sink;
        analysis::analyzeConfigFile(std::string(WM_SCENARIO_DIR) + "/" + name, sink);
        EXPECT_FALSE(sink.hasErrors()) << name << "\n" << renderText(sink);
    }
}

// ---------------------------------------------------------------------------
// Perturbation mapping

TEST(ScenarioPerturbation, EnvelopeRampsLinearlyInsideWindow) {
    AnomalyEvent event;
    event.start_s = 100.0;
    event.end_s = 200.0;
    event.ramp_s = 20.0;
    EXPECT_DOUBLE_EQ(eventEnvelope(event, 99.0), 0.0);
    EXPECT_DOUBLE_EQ(eventEnvelope(event, 100.0), 0.0);
    EXPECT_DOUBLE_EQ(eventEnvelope(event, 110.0), 0.5);
    EXPECT_DOUBLE_EQ(eventEnvelope(event, 120.0), 1.0);
    EXPECT_DOUBLE_EQ(eventEnvelope(event, 200.0), 1.0);
    EXPECT_DOUBLE_EQ(eventEnvelope(event, 201.0), 0.0);
    event.ramp_s = 0.0;  // step onset
    EXPECT_DOUBLE_EQ(eventEnvelope(event, 100.0), 1.0);
}

TEST(ScenarioPerturbation, ComposesOffsetsAndFactorsAcrossEvents) {
    ScenarioScript script;
    AnomalyEvent thermal;
    thermal.cls = AnomalyClass::kThermalRunaway;
    thermal.start_s = 0.0;
    thermal.end_s = 100.0;
    thermal.magnitude = 20.0;
    script.anomalies.push_back(thermal);
    AnomalyEvent fan = thermal;
    fan.cls = AnomalyClass::kFanFailure;
    fan.magnitude = 2.0;
    script.anomalies.push_back(fan);
    AnomalyEvent congestion = thermal;
    congestion.cls = AnomalyClass::kNetworkCongestion;
    congestion.magnitude = 6.0;
    congestion.core_fraction = 0.25;
    script.anomalies.push_back(congestion);

    const auto p = nodePerturbationAt(script, 0, 50.0);
    EXPECT_DOUBLE_EQ(p.temp_offset_c, 20.0);
    EXPECT_DOUBLE_EQ(p.cooling_factor, 2.0);
    EXPECT_DOUBLE_EQ(p.cpi_factor, 6.0);
    EXPECT_DOUBLE_EQ(p.core_fraction, 0.25);
    EXPECT_TRUE(p.active());
    // Outside every window: neutral.
    EXPECT_FALSE(nodePerturbationAt(script, 0, 150.0).active());
}

TEST(ScenarioPerturbation, NodeSelectorScopesEvents) {
    ScenarioScript script;
    AnomalyEvent event;
    event.cls = AnomalyClass::kStraggler;
    event.start_s = 0.0;
    event.end_s = 100.0;
    event.magnitude = 0.5;
    event.nodes = {1};
    script.anomalies.push_back(event);
    EXPECT_FALSE(nodePerturbationAt(script, 0, 50.0).active());
    EXPECT_DOUBLE_EQ(nodePerturbationAt(script, 1, 50.0).util_factor, 0.5);
}

TEST(ScenarioPerturbation, LabelStreamReportsMostSevereActiveClass) {
    ScenarioScript script;
    AnomalyEvent fan;
    fan.cls = AnomalyClass::kFanFailure;  // class id 2
    fan.start_s = 10.0;
    fan.end_s = 60.0;
    script.anomalies.push_back(fan);
    AnomalyEvent straggler;
    straggler.cls = AnomalyClass::kStraggler;  // class id 5
    straggler.start_s = 40.0;
    straggler.end_s = 80.0;
    script.anomalies.push_back(straggler);
    EXPECT_DOUBLE_EQ(anomalyLabelAt(script, 0, 5.0), 0.0);
    EXPECT_DOUBLE_EQ(anomalyLabelAt(script, 0, 20.0), 2.0);
    EXPECT_DOUBLE_EQ(anomalyLabelAt(script, 0, 50.0), 5.0);  // overlap: max id
    EXPECT_DOUBLE_EQ(anomalyLabelAt(script, 0, 70.0), 5.0);
    EXPECT_DOUBLE_EQ(anomalyLabelAt(script, 0, 90.0), 0.0);
}

TEST(ScenarioPerturbation, FacilityComponentOnlyFromFacilityFlaggedThermals) {
    ScenarioScript script;
    AnomalyEvent event;
    event.cls = AnomalyClass::kThermalRunaway;
    event.start_s = 0.0;
    event.end_s = 100.0;
    event.magnitude = 30.0;
    script.anomalies.push_back(event);
    EXPECT_DOUBLE_EQ(facilityPerturbationAt(script, 50.0).inlet_offset_c, 0.0);
    script.anomalies[0].facility = true;
    EXPECT_DOUBLE_EQ(facilityPerturbationAt(script, 50.0).inlet_offset_c, 10.0);
}

TEST(ScenarioPerturbation, NeutralPerturbationIsBitIdenticalToBaseline) {
    // The healthy path must be unchanged by the perturbation plumbing: a
    // default NodePerturbation run produces exactly the same samples as one
    // that never touched setPerturbation.
    simulator::NodeModel baseline(4, 12345);
    simulator::NodeModel perturbed(4, 12345);
    baseline.startApp(simulator::AppKind::kLammps);
    perturbed.startApp(simulator::AppKind::kLammps);
    for (int i = 0; i < 120; ++i) {
        perturbed.setPerturbation(simulator::NodePerturbation{});
        baseline.advance(1.0);
        perturbed.advance(1.0);
        const auto& a = baseline.sample();
        const auto& b = perturbed.sample();
        ASSERT_EQ(a.power_w, b.power_w);
        ASSERT_EQ(a.temperature_c, b.temperature_c);
        ASSERT_EQ(a.memory_free_gb, b.memory_free_gb);
        ASSERT_EQ(a.idle_time_total, b.idle_time_total);
        for (std::size_t c = 0; c < a.cores.size(); ++c) {
            ASSERT_EQ(a.cores[c].cycles, b.cores[c].cycles);
            ASSERT_EQ(a.cores[c].instructions, b.cores[c].instructions);
        }
    }
}

TEST(ScenarioPerturbation, PerturbedRunsAreDeterministicUnderFixedSeed) {
    ScenarioScript script;
    AnomalyEvent event;
    event.cls = AnomalyClass::kNetworkCongestion;
    event.start_s = 30.0;
    event.end_s = 90.0;
    event.ramp_s = 10.0;
    event.magnitude = 6.0;
    event.core_fraction = 0.5;
    script.anomalies.push_back(event);

    auto run = [&script] {
        simulator::NodeModel model(4, 777);
        model.startApp(simulator::AppKind::kLammps);
        std::vector<double> trace;
        for (int t = 1; t <= 120; ++t) {
            model.setPerturbation(nodePerturbationAt(script, 0, t));
            model.advance(1.0);
            trace.push_back(model.sample().power_w);
            trace.push_back(model.sample().cores.back().cycles);
        }
        return trace;
    };
    const auto first = run();
    const auto second = run();
    ASSERT_EQ(first, second);  // bit-identical replay

    // And the congested tail actually stalls: over the full-envelope stretch
    // (counters are cumulative, so compare deltas from after the ramp) the
    // last core burns far more cycles per instruction than a healthy twin.
    simulator::NodeModel healthy(4, 777);
    healthy.startApp(simulator::AppKind::kLammps);
    simulator::NodeModel congested(4, 777);
    congested.startApp(simulator::AppKind::kLammps);
    const auto tail = [](const simulator::NodeModel& model) {
        return model.sample().cores.back();
    };
    simulator::CoreCounters healthy_at_40{};
    simulator::CoreCounters congested_at_40{};
    for (int t = 1; t <= 90; ++t) {
        congested.setPerturbation(nodePerturbationAt(script, 0, t));
        healthy.advance(1.0);
        congested.advance(1.0);
        if (t == 40) {  // ramp finished at t = 40
            healthy_at_40 = tail(healthy);
            congested_at_40 = tail(congested);
        }
    }
    const double healthy_cpi = (tail(healthy).cycles - healthy_at_40.cycles) /
                               (tail(healthy).instructions - healthy_at_40.instructions);
    const double congested_cpi =
        (tail(congested).cycles - congested_at_40.cycles) /
        (tail(congested).instructions - congested_at_40.instructions);
    EXPECT_GT(congested_cpi, 3.0 * healthy_cpi);
}

// ---------------------------------------------------------------------------
// Evaluator fixtures

TEST(ScenarioEvaluator, TriggerKindsFold) {
    DetectorRule rule;
    rule.threshold = 1.0;
    rule.kind = TriggerKind::kBelow;
    EXPECT_TRUE(Evaluator::triggerFires(rule, 0.5));
    EXPECT_FALSE(Evaluator::triggerFires(rule, 1.5));
    rule.kind = TriggerKind::kAbove;
    EXPECT_TRUE(Evaluator::triggerFires(rule, 1.5));
    EXPECT_FALSE(Evaluator::triggerFires(rule, 1.0));
    rule.kind = TriggerKind::kEquals;
    EXPECT_TRUE(Evaluator::triggerFires(rule, 1.0));
    EXPECT_FALSE(Evaluator::triggerFires(rule, 1.5));
    rule.kind = TriggerKind::kNotEquals;
    EXPECT_TRUE(Evaluator::triggerFires(rule, 1.5));
    EXPECT_FALSE(Evaluator::triggerFires(rule, 1.0));
}

TEST(ScenarioEvaluator, ExtractEventsFoldsRunsAndSkipsWarmup) {
    DetectorRule rule;
    rule.kind = TriggerKind::kBelow;
    rule.threshold = 0.5;
    sensors::ReadingVector readings;
    // Fires at t=5 (inside warmup, ignored), 40-42 (one event), 50 (another).
    for (const auto& [t, v] :
         std::vector<std::pair<int, double>>{{5, 0.0}, {10, 1.0}, {40, 0.0},
                                             {41, 0.0}, {42, 0.0}, {43, 1.0},
                                             {50, 0.0}, {51, 1.0}}) {
        readings.push_back({t * kNsPerSec, v});
    }
    const auto events = Evaluator::extractEvents(rule, "topic", 0, readings, 20.0);
    ASSERT_EQ(events.size(), 2u);
    EXPECT_DOUBLE_EQ(events[0].start_s, 40.0);
    EXPECT_DOUBLE_EQ(events[0].end_s, 42.0);
    EXPECT_DOUBLE_EQ(events[1].start_s, 50.0);
    EXPECT_DOUBLE_EQ(events[1].end_s, 50.0);
}

/// Hand-computed fixture: two thermal windows on node 0/1, a detector that
/// catches both with known lags plus one spurious event far from any window.
TEST(ScenarioEvaluator, ScoresMatchHandComputedFixture) {
    ScenarioScript script;
    script.name = "fixture";
    script.duration_s = 200.0;
    script.warmup_s = 10.0;
    script.tolerance_s = 5.0;
    for (const auto& [node, start, end] :
         std::vector<std::tuple<std::size_t, double, double>>{{0, 40.0, 80.0},
                                                              {1, 120.0, 160.0}}) {
        AnomalyEvent event;
        event.cls = AnomalyClass::kThermalRunaway;
        event.start_s = start;
        event.end_s = end;
        event.nodes = {node};
        script.anomalies.push_back(event);
    }
    DetectorRule rule;
    rule.name = "hc-temp";
    rule.operator_name = "hc";
    rule.topic = "%node/healthy";
    rule.kind = TriggerKind::kBelow;
    rule.threshold = 0.5;
    script.detectors.push_back(rule);

    sensors::CacheStore store(1000 * kNsPerSec);
    core::QueryEngine engine;
    engine.setCacheStore(&store);
    auto& n0 = store.getOrCreate("/n0/healthy");
    auto& n1 = store.getOrCreate("/n1/healthy");
    for (int t = 1; t <= 200; ++t) {
        // Node 0: unhealthy 44..70 (lag 4) and spurious 190..191 (no window).
        const bool bad0 = (t >= 44 && t <= 70) || t == 190 || t == 191;
        // Node 1: unhealthy 126..150 (lag 6).
        const bool bad1 = t >= 126 && t <= 150;
        n0.store({t * kNsPerSec, bad0 ? 0.0 : 1.0});
        n1.store({t * kNsPerSec, bad1 ? 0.0 : 1.0});
    }

    const Evaluator evaluator(script, {"/n0", "/n1"});
    const EvaluationReport report = evaluator.evaluate(engine);
    ASSERT_EQ(report.detectors.size(), 1u);
    const DetectorScore& score = report.detectors[0];
    EXPECT_EQ(score.events_total, 3u);
    EXPECT_EQ(score.events_matched, 2u);
    EXPECT_EQ(score.false_positives, 1u);
    EXPECT_DOUBLE_EQ(score.precision, 2.0 / 3.0);
    ASSERT_EQ(score.classes.count("thermal_runaway"), 1u);
    const ClassScore& cls = score.classes.at("thermal_runaway");
    EXPECT_EQ(cls.windows, 2u);
    EXPECT_EQ(cls.detected, 2u);
    EXPECT_EQ(cls.missed, 0u);
    EXPECT_EQ(cls.truncated, 0u);
    EXPECT_EQ(cls.tp_events, 2u);
    EXPECT_DOUBLE_EQ(cls.precision, 2.0 / 3.0);
    EXPECT_DOUBLE_EQ(cls.recall, 1.0);
    EXPECT_DOUBLE_EQ(cls.f1, 2.0 * (2.0 / 3.0) * 1.0 / (2.0 / 3.0 + 1.0));
    EXPECT_DOUBLE_EQ(cls.median_lag_s, 5.0);  // lags {4, 6}, even-count median
    EXPECT_EQ(report.truncated_windows, 0u);
}

TEST(ScenarioEvaluator, TruncatedWindowExcludedFromRecallNotScoredAsMissed) {
    // The anomaly window [30, 60] outlives the retained history: the series
    // only starts at t=100 (> end + tolerance). The window must be reported
    // as truncated and excluded from the recall denominator — while a second,
    // observable window scores normally.
    ScenarioScript script;
    script.name = "trunc";
    script.duration_s = 200.0;
    script.warmup_s = 0.0;
    script.tolerance_s = 10.0;
    for (const auto& [start, end] :
         std::vector<std::pair<double, double>>{{30.0, 60.0}, {120.0, 150.0}}) {
        AnomalyEvent event;
        event.cls = AnomalyClass::kMemoryLeak;
        event.start_s = start;
        event.end_s = end;
        script.anomalies.push_back(event);
    }
    DetectorRule rule;
    rule.name = "hc-mem";
    rule.operator_name = "hc";
    rule.topic = "%node/healthy";
    rule.kind = TriggerKind::kBelow;
    rule.threshold = 0.5;
    script.detectors.push_back(rule);

    sensors::CacheStore store(1000 * kNsPerSec);
    core::QueryEngine engine;
    engine.setCacheStore(&store);
    auto& cache = store.getOrCreate("/n0/healthy");
    for (int t = 100; t <= 200; ++t) {
        cache.store({t * kNsPerSec, (t >= 125 && t <= 150) ? 0.0 : 1.0});
    }

    const Evaluator evaluator(script, {"/n0"});
    const EvaluationReport report = evaluator.evaluate(engine);
    const ClassScore& cls = report.detectors[0].classes.at("memory_leak");
    EXPECT_EQ(cls.windows, 2u);
    EXPECT_EQ(cls.detected, 1u);
    EXPECT_EQ(cls.missed, 0u);
    EXPECT_EQ(cls.truncated, 1u);
    EXPECT_DOUBLE_EQ(cls.recall, 1.0);  // denominator excludes the truncated one
    EXPECT_EQ(report.truncated_windows, 1u);

    // An empty series (topic never stored) is truncation too, not a miss.
    sensors::CacheStore empty_store(1000 * kNsPerSec);
    core::QueryEngine empty_engine;
    empty_engine.setCacheStore(&empty_store);
    const EvaluationReport empty_report = evaluator.evaluate(empty_engine);
    const ClassScore& empty_cls = empty_report.detectors[0].classes.at("memory_leak");
    EXPECT_EQ(empty_cls.truncated, 2u);
    EXPECT_EQ(empty_cls.missed, 0u);
    EXPECT_EQ(empty_report.truncated_windows, 2u);
}

TEST(ScenarioEvaluator, JsonRenderingIsDeterministic) {
    EvaluationReport report;
    report.scenario = "render";
    report.seed = 7;
    report.duration_s = 100.0;
    report.warmup_s = 10.0;
    report.tolerance_s = 5.0;
    report.windows_by_class["straggler"] = 1;
    DetectorScore score;
    score.detector = "d";
    score.operator_name = "hc";
    score.topic = "%node/healthy";
    score.classes["straggler"] = ClassScore{};
    report.detectors.push_back(score);
    const std::string a = renderReportJson(report);
    const std::string b = renderReportJson(report);
    EXPECT_EQ(a, b);
    EXPECT_NE(a.find("\"scenario\":\"render\""), std::string::npos);
    const std::string doc = renderQualityJson({report});
    EXPECT_NE(doc.find("\"schema\":\"wintermute-quality-v1\""), std::string::npos);
}

// ---------------------------------------------------------------------------
// End-to-end drills (ctest -L scenario)

ScenarioScript loadScript(const std::string& file, common::ConfigNode& root_out) {
    const auto parsed = common::parseConfigFile(file);
    EXPECT_TRUE(parsed.ok) << file << ": " << parsed.error;
    root_out = parsed.root;
    const auto scripts = parseScenarios(parsed.root, nullptr);
    EXPECT_EQ(scripts.size(), 1u) << file;
    return scripts.front();
}

TEST(ScenarioE2E, ThermalRunawayFlaggedWithinToleranceAndByteStable) {
    common::ConfigNode root;
    const ScenarioScript script =
        loadScript(std::string(WM_SCENARIO_DIR) + "/thermal_runaway.scn", root);

    auto run = [&] {
        ScenarioRunner runner(script, root);
        std::string error;
        const EvaluationReport report = runner.run(&error);
        EXPECT_TRUE(error.empty()) << error;
        return renderReportJson(report);
    };
    const std::string first = run();
    const std::string second = run();
    EXPECT_EQ(first, second);  // byte-stable at fixed seed

    ScenarioRunner runner(script, root);
    std::string error;
    const EvaluationReport report = runner.run(&error);
    ASSERT_TRUE(error.empty()) << error;
    ASSERT_EQ(report.detectors.size(), 1u);
    const DetectorScore& score = report.detectors[0];
    const ClassScore& cls = score.classes.at("thermal_runaway");
    EXPECT_EQ(cls.detected, 1u);  // the healthchecker flags the labeled window
    EXPECT_EQ(cls.missed, 0u);
    EXPECT_EQ(score.false_positives, 0u);  // the healthy node stays quiet
    EXPECT_DOUBLE_EQ(cls.recall, 1.0);
    EXPECT_DOUBLE_EQ(cls.precision, 1.0);
    // Detection inside the configured tolerance of the window start.
    EXPECT_GE(cls.median_lag_s, 0.0);
    EXPECT_LE(cls.median_lag_s, script.tolerance_s);
}

TEST(ScenarioE2E, GoldenExpectationsEveryClassDetectedBySomeOperator) {
    // The scenario library contract: at the shipped seeds, every anomaly
    // class in every campaign is detected by at least one operator (windows
    // the operator could never have observed count as truncated, and the
    // campaign-day classifier legitimately truncates the window that closes
    // before it finishes training).
    for (const char* name :
         {"thermal_runaway.scn", "fan_failure.scn", "memory_leak.scn",
          "network_congestion.scn", "straggler.scn", "campaign_day.scn",
          "model_drift.scn"}) {
        const auto parsed =
            common::parseConfigFile(std::string(WM_SCENARIO_DIR) + "/" + name);
        ASSERT_TRUE(parsed.ok) << name << ": " << parsed.error;
        const auto reports = runScenarios(parsed.root);
        ASSERT_EQ(reports.size(), 1u) << name;
        const EvaluationReport& report = reports.front();
        for (const auto& [cls_name, windows] : report.windows_by_class) {
            std::size_t detected = 0;
            for (const DetectorScore& score : report.detectors) {
                const auto it = score.classes.find(cls_name);
                if (it != score.classes.end()) detected += it->second.detected;
            }
            EXPECT_GE(detected, 1u)
                << name << ": class " << cls_name << " detected by no operator";
        }
    }
}

}  // namespace
}  // namespace wm
