// Property-based tests: invariants checked over randomized inputs, seeded
// and reproducible. These complement the example-based tests with coverage
// of the input space — random sensor trees, random pattern units, random
// reading streams and random config round-trips.

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "analytics/stats.h"
#include "common/config.h"
#include "common/rng.h"
#include "core/unit_system.h"
#include "mqtt/topic.h"
#include "sensors/sensor_cache.h"
#include "storage/storage_backend.h"

namespace wm {
namespace {

using common::kNsPerSec;
using common::Rng;
using common::TimestampNs;

/// Random canonical sensor topic with depth in [1, 5].
std::string randomTopic(Rng& rng) {
    static const char* segments[] = {"rack", "chassis", "server", "cpu", "dimm"};
    static const char* sensors[] = {"power", "temp", "cpi", "flops", "col_idle", "err"};
    const std::size_t depth = 1 + rng.uniformInt(4);
    std::string topic;
    for (std::size_t d = 0; d < depth; ++d) {
        topic += "/" + std::string(segments[d]) + std::to_string(rng.uniformInt(4));
    }
    topic += "/" + std::string(sensors[rng.uniformInt(6)]);
    return topic;
}

class TreeProperties : public ::testing::TestWithParam<std::uint64_t> {};

/// The tree faithfully stores exactly the distinct topics inserted.
TEST_P(TreeProperties, RoundTripsSensors) {
    Rng rng(GetParam());
    std::set<std::string> topics;
    for (int i = 0; i < 200; ++i) topics.insert(randomTopic(rng));
    core::SensorTree tree;
    tree.build({topics.begin(), topics.end()});
    EXPECT_EQ(tree.sensorCount(), topics.size());
    const auto round_tripped = tree.allSensors();
    EXPECT_EQ(std::set<std::string>(round_tripped.begin(), round_tripped.end()), topics);
}

/// Every sensor's component chain exists, with consistent depths.
TEST_P(TreeProperties, ComponentChainsAreComplete) {
    Rng rng(GetParam() + 1000);
    std::vector<std::string> topics;
    for (int i = 0; i < 100; ++i) topics.push_back(randomTopic(rng));
    core::SensorTree tree;
    tree.build(topics);
    for (const auto& topic : topics) {
        std::string node = common::pathParent(topic);
        while (node != "/") {
            ASSERT_TRUE(tree.hasNode(node)) << node;
            node = common::pathParent(node);
        }
    }
    // nodesAtDepth partitions all non-root component nodes.
    std::size_t total = 1;  // root
    for (std::size_t depth = 1; depth <= tree.maxDepth(); ++depth) {
        total += tree.nodesAtDepth(depth).size();
    }
    EXPECT_EQ(total, tree.nodeCount());
}

/// Resolved units only ever reference sensors that exist in the tree, and
/// every input is hierarchically related to the unit node.
TEST_P(TreeProperties, ResolutionInvariants) {
    Rng rng(GetParam() + 2000);
    std::vector<std::string> topics;
    for (int i = 0; i < 300; ++i) topics.push_back(randomTopic(rng));
    core::SensorTree tree;
    tree.build(topics);
    const core::UnitResolver resolver(tree);

    static const char* names[] = {"power", "temp", "cpi", "flops", "col_idle"};
    for (int trial = 0; trial < 20; ++trial) {
        const std::string anchor =
            rng.bernoulli(0.5) ? "<bottomup>" : "<bottomup-1>";
        const std::string in1 =
            std::string("<topdown>") + names[rng.uniformInt(5)];
        const std::string in2 = anchor + names[rng.uniformInt(5)];
        const auto unit_template =
            core::makeUnitTemplate({in1, in2}, {anchor + "out"});
        ASSERT_TRUE(unit_template.has_value());
        for (const auto& unit : resolver.resolveUnits(*unit_template)) {
            EXPECT_TRUE(tree.hasNode(unit.name));
            for (const auto& input : unit.inputs) {
                EXPECT_TRUE(tree.hasSensor(common::pathParent(input),
                                           common::pathLeaf(input)))
                    << input;
                EXPECT_TRUE(core::SensorTree::hierarchicallyRelated(
                    common::pathParent(input), unit.name))
                    << input << " vs " << unit.name;
            }
            EXPECT_FALSE(unit.outputs.empty());
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TreeProperties, ::testing::Values(11u, 22u, 33u, 44u));

class CacheProperties : public ::testing::TestWithParam<std::uint64_t> {};

/// The cache and the storage backend agree on every absolute range query
/// that lies within the cache's retention window.
TEST_P(CacheProperties, CacheMatchesStorageWithinWindow) {
    Rng rng(GetParam());
    sensors::SensorCache cache(120 * kNsPerSec, kNsPerSec);
    storage::StorageBackend storage;
    TimestampNs t = 0;
    for (int i = 0; i < 400; ++i) {
        t += static_cast<TimestampNs>(rng.uniform(0.2, 2.0) * kNsPerSec);
        const sensors::Reading reading{t, rng.uniform(-10.0, 10.0)};
        cache.store(reading);
        storage.insert("/s", reading);
    }
    const TimestampNs newest = cache.latest()->timestamp;
    const TimestampNs oldest_cached = newest - cache.windowNs();
    for (int trial = 0; trial < 50; ++trial) {
        TimestampNs a = newest - static_cast<TimestampNs>(
                                     rng.uniform(0.0, 100.0) * kNsPerSec);
        TimestampNs b = newest - static_cast<TimestampNs>(
                                     rng.uniform(0.0, 100.0) * kNsPerSec);
        if (a > b) std::swap(a, b);
        if (a <= oldest_cached) continue;
        EXPECT_EQ(cache.viewAbsolute(a, b), storage.query("/s", a, b))
            << "range [" << a << "," << b << "]";
    }
}

/// Views are always time-ordered and within the requested bounds.
TEST_P(CacheProperties, ViewsAreOrderedAndBounded) {
    Rng rng(GetParam() + 500);
    sensors::SensorCache cache(300 * kNsPerSec, kNsPerSec);
    TimestampNs t = 0;
    for (int i = 0; i < 500; ++i) {
        t += static_cast<TimestampNs>(rng.uniform(0.1, 3.0) * kNsPerSec);
        cache.store({t, 0.0});
    }
    for (int trial = 0; trial < 30; ++trial) {
        const auto offset =
            static_cast<TimestampNs>(rng.uniform(0.0, 400.0) * kNsPerSec);
        const auto view = cache.viewRelative(offset);
        const TimestampNs newest = cache.latest()->timestamp;
        for (std::size_t i = 0; i < view.size(); ++i) {
            EXPECT_GE(view[i].timestamp, newest - offset);
            EXPECT_LE(view[i].timestamp, newest);
            if (i > 0) EXPECT_LE(view[i - 1].timestamp, view[i].timestamp);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CacheProperties, ::testing::Values(7u, 14u, 21u));

class QuantileProperties : public ::testing::TestWithParam<std::uint64_t> {};

/// Deciles are monotone, bounded by min/max, and permutation-invariant.
TEST_P(QuantileProperties, DecileInvariants) {
    Rng rng(GetParam());
    std::vector<double> values;
    const std::size_t n = 1 + rng.uniformInt(500);
    for (std::size_t i = 0; i < n; ++i) values.push_back(rng.gaussian(0.0, 100.0));
    const auto d = analytics::deciles(values);
    ASSERT_EQ(d.size(), 11u);
    EXPECT_DOUBLE_EQ(d.front(), *analytics::minimum(values));
    EXPECT_DOUBLE_EQ(d.back(), *analytics::maximum(values));
    for (std::size_t i = 1; i < d.size(); ++i) EXPECT_GE(d[i], d[i - 1]);
    auto shuffled = values;
    rng.shuffle(shuffled);
    EXPECT_EQ(analytics::deciles(shuffled), d);
}

INSTANTIATE_TEST_SUITE_P(Seeds, QuantileProperties,
                         ::testing::Values(3u, 6u, 9u, 12u, 15u));

class TopicProperties : public ::testing::TestWithParam<std::uint64_t> {};

/// Every valid topic matches itself, "#", and its own prefix filters.
TEST_P(TopicProperties, MatchingAxioms) {
    Rng rng(GetParam());
    for (int trial = 0; trial < 100; ++trial) {
        const std::string topic = randomTopic(rng);
        ASSERT_TRUE(mqtt::isValidTopic(topic));
        EXPECT_TRUE(mqtt::topicMatches(topic, topic));
        EXPECT_TRUE(mqtt::topicMatches("#", topic));
        // Replace one segment with '+': still matches.
        auto segments = common::pathSegments(topic);
        const std::size_t victim = rng.uniformInt(segments.size());
        segments[victim] = "+";
        EXPECT_TRUE(mqtt::topicMatches("/" + common::join(segments, '/'), topic));
        // Prefix + '#': matches.
        auto prefix = common::pathSegments(topic);
        prefix.resize(1 + rng.uniformInt(prefix.size()));
        EXPECT_TRUE(
            mqtt::topicMatches("/" + common::join(prefix, '/') + "/#", topic));
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TopicProperties, ::testing::Values(2u, 4u, 8u));

/// Config trees survive a serialise/parse round trip structurally.
TEST(ConfigProperties, RandomRoundTrip) {
    Rng rng(77);
    for (int trial = 0; trial < 20; ++trial) {
        common::ConfigNode root;
        std::function<void(common::ConfigNode&, int)> grow =
            [&](common::ConfigNode& node, int depth) {
                const std::size_t children = 1 + rng.uniformInt(4);
                for (std::size_t i = 0; i < children; ++i) {
                    auto& child = node.addChild(
                        "key" + std::to_string(rng.uniformInt(10)),
                        rng.bernoulli(0.5)
                            ? "value" + std::to_string(rng.uniformInt(100))
                            : "");
                    if (depth < 3 && rng.bernoulli(0.4)) grow(child, depth + 1);
                }
            };
        grow(root, 0);
        const std::string text = root.toString();
        const auto parsed = common::parseConfig(text);
        ASSERT_TRUE(parsed.ok) << parsed.error << "\n" << text;
        EXPECT_EQ(parsed.root.toString(), text);
    }
}

}  // namespace
}  // namespace wm
