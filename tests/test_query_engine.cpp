#include "core/query_engine.h"

#include <gtest/gtest.h>

namespace wm::core {
namespace {

using common::kNsPerSec;
using common::TimestampNs;

class QueryEngineTest : public ::testing::Test {
  protected:
    void SetUp() override {
        engine_.setCacheStore(&caches_);
        engine_.setStorage(&storage_);
        // Cache window is 180 s; fill cache with the last 100 s and storage
        // with a much longer history.
        sensors::SensorCache& cache = caches_.getOrCreate("/node/power");
        for (int i = 900; i < 1000; ++i) {
            cache.store({i * kNsPerSec, static_cast<double>(i)});
        }
        for (int i = 0; i < 1000; ++i) {
            storage_.insert("/node/power", {i * kNsPerSec, static_cast<double>(i)});
        }
        storage_.insert("/only/storage", {5 * kNsPerSec, 42.0});
    }

    sensors::CacheStore caches_{180 * kNsPerSec};
    storage::StorageBackend storage_;
    QueryEngine engine_;
};

TEST_F(QueryEngineTest, RelativeQueryHitsCache) {
    const auto view = engine_.queryRelative("/node/power", 10 * kNsPerSec);
    ASSERT_EQ(view.size(), 11u);
    EXPECT_DOUBLE_EQ(view.back().value, 999.0);
    EXPECT_GE(engine_.cacheHits(), 1u);
    EXPECT_EQ(engine_.storageFallbacks(), 0u);
}

TEST_F(QueryEngineTest, RelativeQueryFallsBackForLongOffsets) {
    // 500 s exceeds the cache window; the engine must use the backend.
    const auto view = engine_.queryRelative("/node/power", 500 * kNsPerSec);
    EXPECT_EQ(view.size(), 501u);
    EXPECT_GE(engine_.storageFallbacks(), 1u);
}

TEST_F(QueryEngineTest, AbsoluteQueryHitsCacheWhenCovered) {
    const auto view =
        engine_.queryAbsolute("/node/power", 950 * kNsPerSec, 960 * kNsPerSec);
    EXPECT_EQ(view.size(), 11u);
    EXPECT_EQ(engine_.storageFallbacks(), 0u);
}

TEST_F(QueryEngineTest, AbsoluteQueryUsesStorageForOldRanges) {
    const auto view = engine_.queryAbsolute("/node/power", 0, 50 * kNsPerSec);
    EXPECT_EQ(view.size(), 51u);
    EXPECT_GE(engine_.storageFallbacks(), 1u);
}

TEST_F(QueryEngineTest, StorageOnlySensors) {
    const auto latest = engine_.latest("/only/storage");
    ASSERT_TRUE(latest.has_value());
    EXPECT_DOUBLE_EQ(latest->value, 42.0);
}

TEST_F(QueryEngineTest, LatestPrefersCache) {
    const auto latest = engine_.latest("/node/power");
    ASSERT_TRUE(latest.has_value());
    EXPECT_DOUBLE_EQ(latest->value, 999.0);
}

TEST_F(QueryEngineTest, UnknownTopicIsEmpty) {
    EXPECT_TRUE(engine_.queryRelative("/ghost", kNsPerSec).empty());
    EXPECT_TRUE(engine_.queryAbsolute("/ghost", 0, 10).empty());
    EXPECT_FALSE(engine_.latest("/ghost").has_value());
}

TEST_F(QueryEngineTest, RebuildTreeMergesCacheAndStorageTopics) {
    EXPECT_EQ(engine_.rebuildTree(), 2u);
    EXPECT_TRUE(engine_.tree().hasSensor("/node", "power"));
    EXPECT_TRUE(engine_.tree().hasSensor("/only", "storage"));
}

TEST_F(QueryEngineTest, AddTopicsExtendsTree) {
    engine_.rebuildTree();
    engine_.addTopics({"/node/prediction"});
    EXPECT_TRUE(engine_.tree().hasSensor("/node", "prediction"));
    // Existing sensors survive.
    EXPECT_TRUE(engine_.tree().hasSensor("/node", "power"));
}

TEST(QueryEngineCacheOnly, ServesFromCacheWithoutStorage) {
    sensors::CacheStore caches;
    QueryEngine engine;
    engine.setCacheStore(&caches);
    sensors::SensorCache& cache = caches.getOrCreate("/s");
    for (int i = 0; i < 10; ++i) cache.store({i * kNsPerSec, static_cast<double>(i)});
    EXPECT_EQ(engine.queryRelative("/s", 4 * kNsPerSec).size(), 5u);
    EXPECT_EQ(engine.queryAbsolute("/s", 0, 3 * kNsPerSec).size(), 4u);
    // Over-long offsets degrade to whatever the cache holds.
    EXPECT_EQ(engine.queryRelative("/s", 10000 * kNsPerSec).size(), 10u);
}

TEST(QueryEngineSingleton, IsStable) {
    QueryEngine& a = QueryEngine::instance();
    QueryEngine& b = QueryEngine::instance();
    EXPECT_EQ(&a, &b);
}

/// Handle-based (id-keyed) queries must return exactly what the
/// string-keyed ones do — on cache hits, on storage fallbacks, and for
/// unknown topics where the handle never resolves.
TEST_F(QueryEngineTest, HandleQueriesMatchStringQueries) {
    const sensors::CacheHandle power("/node/power");
    const sensors::CacheHandle ghost("/ghost");
    for (const TimestampNs offset :
         {TimestampNs{0}, 10 * kNsPerSec, 150 * kNsPerSec, 500 * kNsPerSec}) {
        EXPECT_EQ(engine_.queryRelative(power, offset),
                  engine_.queryRelative("/node/power", offset))
            << "offset " << offset;
    }
    EXPECT_EQ(engine_.queryAbsolute(power, 950 * kNsPerSec, 960 * kNsPerSec),
              engine_.queryAbsolute("/node/power", 950 * kNsPerSec, 960 * kNsPerSec));
    EXPECT_EQ(engine_.queryAbsolute(power, 0, 50 * kNsPerSec),
              engine_.queryAbsolute("/node/power", 0, 50 * kNsPerSec));
    EXPECT_EQ(engine_.latest(power), engine_.latest("/node/power"));
    EXPECT_TRUE(engine_.queryRelative(ghost, kNsPerSec).empty());
    EXPECT_FALSE(engine_.latest(ghost).has_value());
}

/// statsRelative agrees with reducing the equivalent query, both inside the
/// cache window (fused path) and beyond it (storage fallback).
TEST_F(QueryEngineTest, StatsRelativeMatchesQueryReduction) {
    const sensors::CacheHandle power("/node/power");
    for (const TimestampNs offset : {10 * kNsPerSec, 500 * kNsPerSec}) {
        const auto stats = engine_.statsRelative(power, offset);
        const auto view = engine_.queryRelative("/node/power", offset);
        ASSERT_TRUE(stats.has_value()) << "offset " << offset;
        ASSERT_EQ(stats->count, view.size());
        double sum = 0;
        for (const auto& r : view) sum += r.value;
        EXPECT_DOUBLE_EQ(stats->sum, sum);
        EXPECT_EQ(stats->first.timestamp, view.front().timestamp);
        EXPECT_EQ(stats->last.timestamp, view.back().timestamp);
        EXPECT_EQ(engine_.statsRelative("/node/power", offset)->count, view.size());
    }
    EXPECT_FALSE(engine_.statsRelative("/ghost", kNsPerSec).has_value());
}

}  // namespace
}  // namespace wm::core
