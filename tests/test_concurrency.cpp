// Concurrency tests: the hot data structures under simultaneous producers
// and consumers — the sensor cache written by the Pusher's sampling thread
// while operators read views, the broker publishing from several threads,
// and the full Pusher + Operator Manager running on real scheduled threads.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "core/hosting.h"
#include "core/operator_manager.h"
#include "mqtt/broker.h"
#include "plugins/registry.h"
#include "pusher/plugins/tester_group.h"
#include "pusher/pusher.h"
#include "sensors/sensor_cache.h"

namespace wm {
namespace {

using common::kNsPerMs;
using common::kNsPerSec;
using common::TimestampNs;

TEST(CacheConcurrency, WriterWithManyReaders) {
    sensors::SensorCache cache(60 * kNsPerSec, kNsPerMs);
    std::atomic<bool> stop{false};
    std::atomic<std::uint64_t> reads{0};
    std::atomic<bool> violation{false};

    std::thread writer([&] {
        TimestampNs t = 0;
        while (!stop.load()) {
            t += kNsPerMs;
            cache.store({t, static_cast<double>(t)});
        }
    });
    std::vector<std::thread> readers;
    for (int r = 0; r < 3; ++r) {
        readers.emplace_back([&] {
            while (!stop.load()) {
                const auto view = cache.viewRelative(50 * kNsPerMs);
                // Invariant under concurrency: views stay time-ordered and
                // values equal their timestamps.
                for (std::size_t i = 0; i < view.size(); ++i) {
                    if (view[i].value != static_cast<double>(view[i].timestamp) ||
                        (i > 0 && view[i - 1].timestamp > view[i].timestamp)) {
                        violation.store(true);
                    }
                }
                reads.fetch_add(1);
            }
        });
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(300));
    stop.store(true);
    writer.join();
    for (auto& reader : readers) reader.join();
    EXPECT_FALSE(violation.load());
    EXPECT_GT(reads.load(), 100u);
}

TEST(CacheStoreConcurrency, ConcurrentGetOrCreate) {
    sensors::CacheStore store;
    std::vector<std::thread> threads;
    std::atomic<bool> mismatch{false};
    for (int worker = 0; worker < 4; ++worker) {
        threads.emplace_back([&store, &mismatch] {
            for (int i = 0; i < 500; ++i) {
                const std::string topic = "/t" + std::to_string(i % 50);
                sensors::SensorCache& first = store.getOrCreate(topic);
                sensors::SensorCache& second = store.getOrCreate(topic);
                if (&first != &second) mismatch.store(true);
                first.store({i, 1.0});
            }
        });
    }
    for (auto& thread : threads) thread.join();
    EXPECT_FALSE(mismatch.load());
    EXPECT_EQ(store.sensorCount(), 50u);
}

TEST(BrokerConcurrency, ParallelPublishersSingleSubscriber) {
    mqtt::Broker broker;
    std::atomic<std::uint64_t> received{0};
    broker.subscribe("#", [&](const mqtt::Message&) { received.fetch_add(1); });
    std::vector<std::thread> publishers;
    constexpr int kPerThread = 2000;
    for (int p = 0; p < 4; ++p) {
        publishers.emplace_back([&broker, p] {
            for (int i = 0; i < kPerThread; ++i) {
                broker.publish({"/p" + std::to_string(p), {{i, 1.0}}});
            }
        });
    }
    for (auto& publisher : publishers) publisher.join();
    EXPECT_EQ(received.load(), 4u * kPerThread);
}

TEST(BrokerConcurrency, SubscribeUnsubscribeWhilePublishing) {
    mqtt::Broker broker;
    std::atomic<bool> stop{false};
    std::thread publisher([&] {
        while (!stop.load()) broker.publish({"/t", {{1, 1.0}}});
    });
    for (int i = 0; i < 200; ++i) {
        const auto id = broker.subscribe("#", [](const mqtt::Message&) {});
        ASSERT_NE(id, 0u);
        ASSERT_TRUE(broker.unsubscribe(id));
    }
    stop.store(true);
    publisher.join();
    EXPECT_EQ(broker.subscriptionCount(), 0u);
}

TEST(AsyncBrokerConcurrency, BackPressureDoesNotDrop) {
    mqtt::AsyncBroker broker(/*max_queue=*/64);
    std::atomic<std::uint64_t> received{0};
    broker.subscribe("#", [&](const mqtt::Message&) {
        received.fetch_add(1);
    });
    std::vector<std::thread> publishers;
    constexpr int kPerThread = 3000;
    for (int p = 0; p < 3; ++p) {
        publishers.emplace_back([&broker] {
            for (int i = 0; i < kPerThread; ++i) {
                ASSERT_GE(broker.publish({"/q", {{i, 1.0}}}), 0);
            }
        });
    }
    for (auto& publisher : publishers) publisher.join();
    broker.flush();
    EXPECT_EQ(received.load(), 3u * kPerThread);
}

TEST(FullStackConcurrency, ScheduledPusherWithLiveOperators) {
    // Real scheduled sampling + online operators + REST-style on-demand
    // reads racing against them.
    pusher::Pusher pusher(pusher::PusherConfig{"stress", 60 * kNsPerSec, 2});
    pusher::TesterGroupConfig tester;
    tester.num_sensors = 50;
    tester.interval_ns = 20 * kNsPerMs;
    pusher.addGroup(std::make_unique<pusher::TesterGroup>(tester));

    core::QueryEngine engine;
    engine.setCacheStore(&pusher.cacheStore());
    engine.rebuildTree();
    core::OperatorManager manager(
        core::makeHostContext(engine, &pusher.cacheStore(), nullptr, nullptr));
    plugins::registerBuiltinPlugins(manager);
    const auto config = common::parseConfig(R"(
operator live {
    interval 20ms
    window 1s
    operation average
    input {
        sensor "<topdown>test0"
    }
    output {
        sensor "<topdown>test0-avg"
    }
}
)");
    ASSERT_TRUE(config.ok);
    ASSERT_EQ(manager.loadPlugin("aggregator", config.root), 1);

    pusher.start();
    manager.start();
    std::atomic<bool> stop{false};
    std::thread prober([&] {
        while (!stop.load()) {
            engine.latest("/test/test0");
            engine.queryRelative("/test/test0-avg", kNsPerSec);
        }
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(400));
    stop.store(true);
    prober.join();
    manager.stop();
    pusher.stop();
    const auto op = manager.findOperator("live");
    EXPECT_GT(op->computeCount(), 3u);
    EXPECT_EQ(op->errorCount(), 0u);
    EXPECT_GT(pusher.readingsSampled(), 100u);
}

}  // namespace
}  // namespace wm
