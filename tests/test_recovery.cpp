// Crash-recovery integration suite (ISSUE: durability tentpole). Covers the
// storage backend's WAL+snapshot recovery under injected crashes, operator
// model checkpoint round trips, the supervisor's deterministic restart
// policy, and at-least-once replay with sequence dedup on the data path.
// Everything is deterministic: fixed seeds, explicit timestamps, no sleeps.

#include <gtest/gtest.h>

#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "common/fault.h"
#include "core/hosting.h"
#include "core/operator_manager.h"
#include "core/supervisor.h"
#include "plugins/classifier_operator.h"
#include "plugins/registry.h"
#include "plugins/smoothing_operator.h"
#include "pusher/plugins/perfsim_group.h"
#include "simulator/topology.h"
#include "storage/storage_backend.h"
#include "test_fixtures.h"

namespace wm {
namespace {

using common::kNsPerSec;
using common::TimestampNs;
using storage::DurabilityOptions;
using storage::StorageBackend;
using wm::testing::AgentHarness;
using wm::testing::makeTesterPusher;

std::string freshDir(const std::string& name) {
    const std::string dir = ::testing::TempDir() + "/" + name;
    std::filesystem::remove_all(dir);
    return dir;
}

void expectSameReadings(StorageBackend& a, StorageBackend& b) {
    const auto topics = a.topics();
    ASSERT_EQ(topics, b.topics());
    for (const auto& topic : topics) {
        const auto lhs = a.query(topic, 0, 1000 * kNsPerSec);
        const auto rhs = b.query(topic, 0, 1000 * kNsPerSec);
        ASSERT_EQ(lhs.size(), rhs.size()) << topic;
        for (std::size_t i = 0; i < lhs.size(); ++i) {
            EXPECT_EQ(lhs[i].timestamp, rhs[i].timestamp) << topic;
            EXPECT_DOUBLE_EQ(lhs[i].value, rhs[i].value) << topic;
        }
    }
}

// --- storage crash recovery ---------------------------------------------------

TEST(StorageRecovery, RestartReplaysWalToIdenticalState) {
    const std::string dir = freshDir("wm_recovery_wal");
    StorageBackend original;
    ASSERT_TRUE(original.enableDurability({dir}));
    for (int i = 1; i <= 5; ++i) {
        ASSERT_TRUE(original.insert("/n0/power", {i * kNsPerSec, 100.0 + i}));
        ASSERT_TRUE(original.insert("/n1/temp", {i * kNsPerSec, 40.0 + 0.5 * i}));
    }
    // No checkpoint, no clean shutdown: recovery comes from the WAL alone.
    StorageBackend restarted;
    ASSERT_TRUE(restarted.enableDurability({dir}));
    const auto stats = restarted.durabilityStats();
    EXPECT_TRUE(stats.enabled);
    EXPECT_GE(stats.wal_records_replayed, 10u);
    EXPECT_FALSE(stats.recovered_from_snapshot);
    expectSameReadings(original, restarted);
    EXPECT_EQ(restarted.query("/n0/power", 0, 100 * kNsPerSec).size(), 5u);
}

TEST(StorageRecovery, CrashMidWalAppendTruncatesTornTail) {
    common::fault::FaultInjector injector(1);
    common::fault::ScopedInjector scoped(injector);
    const std::string dir = freshDir("wm_recovery_torn");
    {
        StorageBackend victim;
        ASSERT_TRUE(victim.enableDurability({dir}));
        ASSERT_TRUE(victim.insert("/s", {1 * kNsPerSec, 1.0}));
        ASSERT_TRUE(victim.insert("/s", {2 * kNsPerSec, 2.0}));
        injector.armFromText("persist.wal_append", "fail once");
        // The append dies mid-frame: the insert MUST be refused (it would
        // not survive the crash) and the backend flags itself unhealthy.
        EXPECT_FALSE(victim.insert("/s", {3 * kNsPerSec, 3.0}));
        EXPECT_FALSE(victim.healthy());
        EXPECT_EQ(victim.durabilityStats().wal_append_failures, 1u);
    }  // killed here, torn frame on disk
    StorageBackend restarted;
    ASSERT_TRUE(restarted.enableDurability({dir}));
    const auto stats = restarted.durabilityStats();
    EXPECT_EQ(stats.torn_tail_truncations, 1u);
    EXPECT_EQ(stats.wal_records_replayed, 2u);
    EXPECT_TRUE(restarted.healthy());
    // Only the durable inserts exist — exactly the pre-crash accepted state.
    const auto readings = restarted.query("/s", 0, 100 * kNsPerSec);
    ASSERT_EQ(readings.size(), 2u);
    EXPECT_DOUBLE_EQ(readings[1].value, 2.0);

    // Idempotence across a second restart: same state again.
    StorageBackend third;
    ASSERT_TRUE(third.enableDurability({dir}));
    expectSameReadings(restarted, third);
    EXPECT_EQ(third.durabilityStats().torn_tail_truncations, 0u);
}

TEST(StorageRecovery, CrashMidSnapshotPreservesPreviousState) {
    common::fault::FaultInjector injector(1);
    common::fault::ScopedInjector scoped(injector);
    const std::string dir = freshDir("wm_recovery_snap");
    {
        DurabilityOptions options{dir};
        options.snapshot_every = 0;  // checkpoint only on demand
        StorageBackend victim;
        ASSERT_TRUE(victim.enableDurability(options));
        for (int i = 1; i <= 4; ++i) {
            ASSERT_TRUE(victim.insert("/s", {i * kNsPerSec, 1.0 * i}));
        }
        ASSERT_TRUE(victim.checkpointNow());
        EXPECT_EQ(victim.durabilityStats().snapshots_written, 1u);
        for (int i = 5; i <= 7; ++i) {
            ASSERT_TRUE(victim.insert("/s", {i * kNsPerSec, 1.0 * i}));
        }
        injector.armFromText("persist.snapshot_write", "fail");
        EXPECT_FALSE(victim.checkpointNow());  // dies mid-snapshot
        EXPECT_EQ(victim.durabilityStats().snapshot_failures, 1u);
        injector.disarm("persist.snapshot_write");
    }
    StorageBackend restarted;
    ASSERT_TRUE(restarted.enableDurability({dir}));
    const auto stats = restarted.durabilityStats();
    // The old snapshot survived the failed compaction; the WAL replays the
    // readings logged after it.
    EXPECT_TRUE(stats.recovered_from_snapshot);
    EXPECT_GE(stats.wal_records_replayed, 3u);
    EXPECT_EQ(restarted.query("/s", 0, 100 * kNsPerSec).size(), 7u);
}

TEST(StorageRecovery, AutomaticCompactionThenRecovery) {
    const std::string dir = freshDir("wm_recovery_compact");
    {
        DurabilityOptions options{dir};
        options.snapshot_every = 4;
        StorageBackend victim;
        ASSERT_TRUE(victim.enableDurability(options));
        for (int i = 1; i <= 10; ++i) {
            ASSERT_TRUE(victim.insert("/s", {i * kNsPerSec, 2.0 * i}));
        }
        EXPECT_GE(victim.durabilityStats().snapshots_written, 2u);
    }
    StorageBackend restarted;
    DurabilityOptions options{dir};
    options.snapshot_every = 4;
    ASSERT_TRUE(restarted.enableDurability(options));
    EXPECT_TRUE(restarted.durabilityStats().recovered_from_snapshot);
    const auto readings = restarted.query("/s", 0, 100 * kNsPerSec);
    ASSERT_EQ(readings.size(), 10u);
    EXPECT_DOUBLE_EQ(readings[9].value, 20.0);
}

// --- operator state checkpoints -----------------------------------------------

/// A host (caches + engine + manager) whose sensor content the test controls.
struct Host {
    sensors::CacheStore caches;
    core::QueryEngine engine;
    std::unique_ptr<core::OperatorManager> manager;

    void finish() {
        engine.setCacheStore(&caches);
        engine.rebuildTree();
        manager = std::make_unique<core::OperatorManager>(
            core::makeHostContext(engine, &caches, nullptr, nullptr));
        plugins::registerBuiltinPlugins(*manager);
    }

    int load(const std::string& plugin, const std::string& config_text) {
        const auto parsed = common::parseConfig(config_text);
        EXPECT_TRUE(parsed.ok) << parsed.error;
        return manager->loadPlugin(plugin, parsed.root);
    }

    double output(const std::string& topic) {
        const auto* cache = caches.find(topic);
        EXPECT_NE(cache, nullptr) << topic;
        return cache->latest()->value;
    }
};

constexpr const char* kSmoothingConfig = R"(
operator smooth {
    interval 1s
    alpha 0.25
    input {
        sensor "<bottomup>power"
    }
    output {
        sensor "<bottomup>power-smooth"
    }
}
)";

void fillPower(Host& host) {
    for (const std::string node : {"/n0", "/n1"}) {
        auto& cache = host.caches.getOrCreate(node + "/power");
        for (int i = 0; i <= 10; ++i) {
            cache.store({i * kNsPerSec, 150.0 + ((i % 2 == 0) ? 5.0 : -5.0)});
        }
    }
}

TEST(OperatorCheckpoint, SmoothingStateSurvivesRestart) {
    const std::string dir = freshDir("wm_opsnap_smooth");
    Host original;
    fillPower(original);
    original.finish();
    ASSERT_EQ(original.load("smoothing", kSmoothingConfig), 1);
    for (int tick = 11; tick <= 20; ++tick) {
        original.manager->tickAll(tick * kNsPerSec);
    }
    ASSERT_EQ(original.manager->saveOperatorStates(dir), 1u);
    EXPECT_EQ(original.manager->operatorSnapshotsWritten(), 1u);

    Host restarted;
    fillPower(restarted);
    restarted.finish();
    ASSERT_EQ(restarted.load("smoothing", kSmoothingConfig), 1);
    ASSERT_EQ(restarted.manager->restoreOperatorStates(dir), 1u);
    EXPECT_EQ(restarted.manager->operatorSnapshotsRestored(), 1u);

    // One more tick on fresh input: the restored EWMA must continue exactly
    // where the original left off, not re-initialise from the new reading.
    for (Host* host : {&original, &restarted}) {
        for (const std::string node : {"/n0", "/n1"}) {
            host->caches.getOrCreate(node + "/power").store({21 * kNsPerSec, 170.0});
        }
        host->manager->tickAll(21 * kNsPerSec);
    }
    EXPECT_DOUBLE_EQ(restarted.output("/n0/power-smooth"),
                     original.output("/n0/power-smooth"));
    EXPECT_DOUBLE_EQ(restarted.output("/n1/power-smooth"),
                     original.output("/n1/power-smooth"));
}

TEST(OperatorCheckpoint, MismatchedSettingsRejectTheSnapshot) {
    const std::string dir = freshDir("wm_opsnap_mismatch");
    Host original;
    fillPower(original);
    original.finish();
    ASSERT_EQ(original.load("smoothing", kSmoothingConfig), 1);
    original.manager->tickAll(11 * kNsPerSec);
    ASSERT_EQ(original.manager->saveOperatorStates(dir), 1u);

    // Same operator name, different alpha: the fingerprint must reject the
    // stale state instead of resuming a model shaped by other settings.
    Host reconfigured;
    fillPower(reconfigured);
    reconfigured.finish();
    const std::string changed = std::string(kSmoothingConfig).replace(
        std::string(kSmoothingConfig).find("0.25"), 4, "0.50");
    ASSERT_EQ(reconfigured.load("smoothing", changed), 1);
    EXPECT_EQ(reconfigured.manager->restoreOperatorStates(dir), 0u);
}

TEST(OperatorCheckpoint, TrainedClassifierSurvivesRestartWithoutRetraining) {
    const std::string dir = freshDir("wm_opsnap_classifier");
    const std::string node_path = "/r0/c0/s0";
    auto node = std::make_shared<pusher::SimulatedNode>(4, 99);
    pusher::Pusher pusher(pusher::PusherConfig{node_path});
    pusher::PerfsimGroupConfig perf;
    perf.node_path = node_path;
    pusher.addGroup(std::make_unique<pusher::PerfsimGroup>(perf, node));

    core::QueryEngine engine;
    engine.setCacheStore(&pusher.cacheStore());
    auto& label_cache = pusher.cacheStore().getOrCreate(node_path + "/app-label");
    pusher.sampleOnce(kNsPerSec);
    label_cache.store({kNsPerSec, 0.0});
    engine.rebuildTree();

    const auto config = common::parseConfig(R"(
operator fingerprint {
    interval 1s
    window 3s
    trainingSamples 120
    trees 12
    maxDepth 8
    input {
        sensor "<bottomup-1>app-label"
        sensor "<bottomup, filter cpu>cpu-cycles"
        sensor "<bottomup, filter cpu>instructions"
        sensor "<bottomup, filter cpu>cache-misses"
        sensor "<bottomup, filter cpu>vector-ops"
    }
    output {
        sensor "<bottomup-1>app-predicted"
        sensor "<bottomup-1>app-confidence"
    }
}
)");
    ASSERT_TRUE(config.ok) << config.error;

    double trained_accuracy = 0.0;
    TimestampNs t = 2 * kNsPerSec;
    {
        core::OperatorManager trainer(
            core::makeHostContext(engine, &pusher.cacheStore(), nullptr, nullptr));
        plugins::registerBuiltinPlugins(trainer);
        ASSERT_EQ(trainer.loadPlugin("classifier", config.root), 1);
        auto op = std::dynamic_pointer_cast<plugins::ClassifierOperator>(
            trainer.findOperator("fingerprint"));
        ASSERT_NE(op, nullptr);
        int phase = 0;
        node->startApp(simulator::AppKind::kLammps);
        while (!op->modelTrained() && t < 500 * kNsPerSec) {
            if ((t / kNsPerSec) % 30 == 0) {
                phase = 1 - phase;
                node->startApp(phase == 0 ? simulator::AppKind::kLammps
                                          : simulator::AppKind::kKripke);
            }
            pusher.sampleOnce(t);
            label_cache.store({t, static_cast<double>(phase)});
            trainer.tickAll(t);
            t += kNsPerSec;
        }
        ASSERT_TRUE(op->modelTrained());
        trained_accuracy = op->oobAccuracy();
        ASSERT_EQ(trainer.saveOperatorStates(dir), 1u);
    }  // daemon killed: the trained model only lives in the snapshot now

    core::OperatorManager restarted(
        core::makeHostContext(engine, &pusher.cacheStore(), nullptr, nullptr));
    plugins::registerBuiltinPlugins(restarted);
    ASSERT_EQ(restarted.loadPlugin("classifier", config.root), 1);
    auto op = std::dynamic_pointer_cast<plugins::ClassifierOperator>(
        restarted.findOperator("fingerprint"));
    ASSERT_NE(op, nullptr);
    EXPECT_FALSE(op->modelTrained());
    ASSERT_EQ(restarted.restoreOperatorStates(dir), 1u);
    ASSERT_TRUE(op->modelTrained());  // no retraining window
    EXPECT_DOUBLE_EQ(op->oobAccuracy(), trained_accuracy);

    // The restored forest classifies live counters, labels withheld.
    auto classify = [&](simulator::AppKind app) {
        node->startApp(app);
        for (int i = 0; i < 6; ++i, t += kNsPerSec) {
            pusher.sampleOnce(t);
            restarted.tickAll(t);
        }
        return pusher.cacheStore().find(node_path + "/app-predicted")->latest()->value;
    };
    EXPECT_DOUBLE_EQ(classify(simulator::AppKind::kLammps), 0.0);
    EXPECT_DOUBLE_EQ(classify(simulator::AppKind::kKripke), 1.0);
}

TEST(OperatorCheckpoint, SaveRestoreSaveIsStable) {
    // Round-trip stability at the blob level: restoring a snapshot and
    // saving again yields byte-identical state for every stateful plugin
    // that collected some history.
    const std::string dir = freshDir("wm_opsnap_stable");
    Host original;
    fillPower(original);
    original.finish();
    ASSERT_EQ(original.load("smoothing", kSmoothingConfig), 1);
    for (int tick = 11; tick <= 15; ++tick) original.manager->tickAll(tick * kNsPerSec);
    const auto op = original.manager->findOperator("smooth");
    ASSERT_NE(op, nullptr);
    std::string blob;
    ASSERT_TRUE(op->saveState(&blob));

    Host restarted;
    fillPower(restarted);
    restarted.finish();
    ASSERT_EQ(restarted.load("smoothing", kSmoothingConfig), 1);
    const auto op2 = restarted.manager->findOperator("smooth");
    ASSERT_TRUE(op2->restoreState(blob));
    std::string blob2;
    ASSERT_TRUE(op2->saveState(&blob2));
    EXPECT_EQ(blob, blob2);
}

// --- supervisor ---------------------------------------------------------------

core::SupervisorConfig deterministicSupervisor() {
    core::SupervisorConfig config;
    config.restart_backoff.max_attempts = 3;
    config.restart_backoff.initial_backoff_ns = 100 * common::kNsPerMs;
    config.restart_backoff.multiplier = 2.0;
    config.restart_backoff.max_backoff_ns = kNsPerSec;
    config.restart_backoff.jitter = 0.0;
    return config;
}

TEST(Supervisor, HealthyComponentIsLeftAlone) {
    core::Supervisor supervisor(deterministicSupervisor());
    int restarts = 0;
    supervisor.registerComponent(
        {"steady", [] { return true; }, [&] { ++restarts; return true; }});
    for (int i = 0; i < 10; ++i) supervisor.pollOnce(i * kNsPerSec);
    EXPECT_EQ(restarts, 0);
    EXPECT_EQ(supervisor.restartsTotal(), 0u);
}

TEST(Supervisor, RestartsFaultedComponentAndResetsBackoff) {
    core::Supervisor supervisor(deterministicSupervisor());
    bool healthy = false;
    int restarts = 0;
    supervisor.registerComponent({"flappy", [&] { return healthy; },
                                  [&] {
                                      ++restarts;
                                      healthy = true;
                                      return true;
                                  }});
    supervisor.pollOnce(kNsPerSec);
    EXPECT_EQ(restarts, 1);
    EXPECT_EQ(supervisor.restartsTotal(), 1u);
    ASSERT_EQ(supervisor.components().size(), 1u);
    EXPECT_TRUE(supervisor.components()[0].healthy);

    // Recovery reset the backoff: a later fault restarts immediately again.
    healthy = false;
    supervisor.pollOnce(60 * kNsPerSec);
    EXPECT_EQ(restarts, 2);
    EXPECT_TRUE(supervisor.components()[0].healthy);
}

TEST(Supervisor, BackoffPacesAttemptsThenGivesUp) {
    core::Supervisor supervisor(deterministicSupervisor());
    int attempts = 0;
    supervisor.registerComponent(
        {"doomed", [] { return false; }, [&] { ++attempts; return false; }});
    // Dense polling: attempts must be paced by the backoff, not the poll rate.
    TimestampNs now = kNsPerSec;
    supervisor.pollOnce(now);
    EXPECT_EQ(attempts, 1);
    supervisor.pollOnce(now + 1);  // inside the 100 ms window
    EXPECT_EQ(attempts, 1);
    now += 100 * common::kNsPerMs;
    supervisor.pollOnce(now);
    EXPECT_EQ(attempts, 2);
    now += 200 * common::kNsPerMs;
    supervisor.pollOnce(now);
    EXPECT_EQ(attempts, 3);
    // Budget exhausted: the component is marked gave-up and left alone.
    for (int i = 1; i <= 10; ++i) supervisor.pollOnce(now + i * 10 * kNsPerSec);
    EXPECT_EQ(attempts, 3);
    ASSERT_EQ(supervisor.components().size(), 1u);
    EXPECT_TRUE(supervisor.components()[0].gave_up);
    EXPECT_EQ(supervisor.failedRestartsTotal(), 3u);
}

TEST(Supervisor, RestartsStoppedCollectAgent) {
    AgentHarness harness;
    core::Supervisor supervisor(deterministicSupervisor());
    auto* agent = &harness.agent;
    supervisor.registerComponent({"collectagent", [agent] { return agent->running(); },
                                  [agent] {
                                      agent->stop();
                                      agent->start();
                                      return agent->running();
                                  }});
    harness.agent.stop();
    EXPECT_FALSE(harness.agent.running());
    supervisor.pollOnce(kNsPerSec);
    EXPECT_TRUE(harness.agent.running());
    EXPECT_EQ(supervisor.restartsTotal(), 1u);
    harness.broker.publish({"/s", {{kNsPerSec, 1.0}}});
    EXPECT_EQ(harness.agent.messagesReceived(), 1u);
}

// --- at-least-once replay + sequence dedup ------------------------------------

TEST(ReplayDedup, AgentRestartLosesNothingAndDuplicatesNothing) {
    AgentHarness harness;
    auto pusher = makeTesterPusher(&harness.broker, 4);
    pusher->sampleOnce(1 * kNsPerSec);
    EXPECT_EQ(harness.agent.messagesReceived(), 4u);

    // The agent dies; a tick's worth of publishes has no subscriber.
    harness.agent.stop();
    pusher->sampleOnce(2 * kNsPerSec);
    EXPECT_EQ(harness.agent.messagesReceived(), 4u);

    // Supervised recovery: restart, then at-least-once replay of the ring
    // (both the delivered tick and the missed one).
    harness.agent.start();
    EXPECT_EQ(pusher->replayRecent(), 8u);

    // The missed readings arrived exactly once; replayed duplicates of the
    // first tick were dropped by their sequence numbers.
    EXPECT_EQ(harness.agent.dedupDrops(), 4u);
    for (const auto& topic : harness.storage.topics()) {
        const auto readings = harness.storage.query(topic, 0, 100 * kNsPerSec);
        EXPECT_EQ(readings.size(), 2u) << topic;  // t=1s and t=2s, no dups
    }
    EXPECT_EQ(harness.agent.readingsStored(), 8u);
}

TEST(ReplayDedup, UnsequencedMessagesAreNeverDeduplicated) {
    AgentHarness harness;
    // Hand-published messages carry sequence 0 (unsequenced): repeats are
    // legitimate data, not replays.
    harness.broker.publish({"/raw", {{1 * kNsPerSec, 1.0}}});
    harness.broker.publish({"/raw", {{2 * kNsPerSec, 2.0}}});
    EXPECT_EQ(harness.agent.dedupDrops(), 0u);
    EXPECT_EQ(harness.agent.readingsStored(), 2u);
}

// --- quarantine journal -------------------------------------------------------

TEST(QuarantineJournal, QuarantinedReadingsSurviveAgentCrash) {
    common::fault::FaultInjector injector(1);
    common::fault::ScopedInjector scoped(injector);
    const std::string dir = freshDir("wm_quarantine_wal");
    std::filesystem::create_directories(dir);
    collectagent::CollectAgentConfig config;
    config.quarantine_wal_path = dir + "/quarantine.wal";

    mqtt::Broker broker;
    StorageBackend storage;
    auto agent = std::make_unique<collectagent::CollectAgent>(config, broker, storage);
    agent->start();
    injector.armFromText("storage.insert", "fail");
    broker.publish({"/q", {{1 * kNsPerSec, 1.0}, {2 * kNsPerSec, 2.0}}});
    broker.publish({"/q", {{3 * kNsPerSec, 3.0}}});
    EXPECT_EQ(agent->quarantinedReadings(), 3u);

    // The agent crashes before the quarantine drains.
    agent.reset();
    auto revived = std::make_unique<collectagent::CollectAgent>(config, broker, storage);
    EXPECT_EQ(revived->quarantineWalReplayed(), 3u);
    EXPECT_EQ(revived->quarantinedReadings(), 3u);

    // Storage recovers; the journaled readings drain into it.
    injector.disarm("storage.insert");
    EXPECT_EQ(revived->retryQuarantined(), 3u);
    EXPECT_EQ(storage.query("/q", 0, 100 * kNsPerSec).size(), 3u);

    // A drained quarantine leaves an empty journal behind.
    revived.reset();
    collectagent::CollectAgent clean(config, broker, storage);
    EXPECT_EQ(clean.quarantineWalReplayed(), 0u);
    EXPECT_EQ(clean.quarantinedReadings(), 0u);
}

}  // namespace
}  // namespace wm
