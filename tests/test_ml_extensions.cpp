// Tests for the ML substrate extensions: ridge linear regression and the
// random-forest classifier, plus the classifier operator plugin performing
// application fingerprinting against the simulator.

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "analytics/classifier.h"
#include "analytics/linear_regression.h"
#include "common/rng.h"
#include "core/hosting.h"
#include "core/operator_manager.h"
#include "plugins/classifier_operator.h"
#include "plugins/registry.h"
#include "pusher/plugins/perfsim_group.h"
#include "pusher/pusher.h"

namespace wm::analytics {
namespace {

// --- linear regression --------------------------------------------------------

TEST(LinearRegression, RecoversExactLinearModel) {
    common::Rng rng(1);
    std::vector<std::vector<double>> x;
    std::vector<double> y;
    for (int i = 0; i < 200; ++i) {
        const double a = rng.uniform(-5.0, 5.0);
        const double b = rng.uniform(0.0, 100.0);
        x.push_back({a, b});
        y.push_back(3.0 * a - 0.5 * b + 7.0);
    }
    LinearRegression model;
    LinearRegressionParams params;
    params.l2 = 1e-9;  // exact recovery needs a negligible ridge bias
    ASSERT_TRUE(model.fit(x, y, params));
    EXPECT_NEAR(model.coefficients()[0], 3.0, 1e-3);
    EXPECT_NEAR(model.coefficients()[1], -0.5, 1e-3);
    EXPECT_NEAR(model.intercept(), 7.0, 1e-2);
    EXPECT_LT(model.trainRmse(), 0.05);
    EXPECT_NEAR(model.predict({1.0, 10.0}), 3.0 - 5.0 + 7.0, 0.05);
}

TEST(LinearRegression, HandlesNoisyData) {
    common::Rng rng(2);
    std::vector<std::vector<double>> x;
    std::vector<double> y;
    for (int i = 0; i < 500; ++i) {
        const double a = rng.uniform(0.0, 1.0);
        x.push_back({a});
        y.push_back(2.0 * a + rng.gaussian(0.0, 0.1));
    }
    LinearRegression model;
    ASSERT_TRUE(model.fit(x, y));
    EXPECT_NEAR(model.coefficients()[0], 2.0, 0.05);
    EXPECT_NEAR(model.trainRmse(), 0.1, 0.03);
}

TEST(LinearRegression, RidgeSurvivesCollinearFeatures) {
    common::Rng rng(3);
    std::vector<std::vector<double>> x;
    std::vector<double> y;
    for (int i = 0; i < 100; ++i) {
        const double a = rng.uniform(0.0, 1.0);
        x.push_back({a, 2.0 * a, 3.0 * a});  // perfectly collinear
        y.push_back(a * 6.0);
    }
    LinearRegression model;
    ASSERT_TRUE(model.fit(x, y));
    EXPECT_NEAR(model.predict({0.5, 1.0, 1.5}), 3.0, 0.1);
}

TEST(LinearRegression, RejectsDegenerateInput) {
    LinearRegression model;
    EXPECT_FALSE(model.fit({}, {}));
    EXPECT_FALSE(model.fit({{1.0}}, {1.0}));               // single sample
    EXPECT_FALSE(model.fit({{1.0}, {1.0, 2.0}}, {1.0, 2.0}));  // ragged
    EXPECT_FALSE(model.trained());
    EXPECT_DOUBLE_EQ(model.predict({1.0}), 0.0);
}

// --- classification forest ----------------------------------------------------

/// Two interleaved class regions on a 2D grid.
void makeClassData(common::Rng& rng, std::size_t n,
                   std::vector<std::vector<double>>& x,
                   std::vector<std::size_t>& labels) {
    for (std::size_t i = 0; i < n; ++i) {
        const double a = rng.uniform(0.0, 1.0);
        const double b = rng.uniform(0.0, 1.0);
        x.push_back({a, b});
        labels.push_back((a > 0.5) == (b > 0.5) ? 0 : 1);  // XOR pattern
    }
}

TEST(ClassificationTree, LearnsXorPattern) {
    common::Rng data_rng(5);
    std::vector<std::vector<double>> x;
    std::vector<std::size_t> labels;
    makeClassData(data_rng, 500, x, labels);
    std::vector<std::size_t> rows(x.size());
    std::iota(rows.begin(), rows.end(), 0u);
    ClassificationTree tree;
    common::Rng rng(1);
    tree.fit(x, labels, rows, 2, ClassifierTreeParams{}, rng);
    ASSERT_TRUE(tree.trained());
    EXPECT_EQ(tree.predict({0.2, 0.2}), 0u);
    EXPECT_EQ(tree.predict({0.8, 0.8}), 0u);
    EXPECT_EQ(tree.predict({0.2, 0.8}), 1u);
    EXPECT_EQ(tree.predict({0.8, 0.2}), 1u);
}

TEST(ClassificationTree, PureNodeIsLeaf) {
    std::vector<std::vector<double>> x{{1.0}, {2.0}, {3.0}};
    std::vector<std::size_t> labels{1, 1, 1};
    std::vector<std::size_t> rows{0, 1, 2};
    ClassificationTree tree;
    common::Rng rng(1);
    tree.fit(x, labels, rows, 2, ClassifierTreeParams{}, rng);
    EXPECT_EQ(tree.nodeCount(), 1u);
    EXPECT_EQ(tree.predict({42.0}), 1u);
}

TEST(RandomForestClassifier, HighOobAccuracyOnSeparableData) {
    common::Rng data_rng(7);
    std::vector<std::vector<double>> x;
    std::vector<std::size_t> labels;
    makeClassData(data_rng, 1000, x, labels);
    RandomForestClassifier forest;
    ClassifierForestParams params;
    params.num_trees = 16;
    ASSERT_TRUE(forest.fit(x, labels, params));
    EXPECT_EQ(forest.classCount(), 2u);
    EXPECT_GT(forest.oobAccuracy(), 0.9);
}

TEST(RandomForestClassifier, ProbabilitiesSumToOne) {
    common::Rng data_rng(8);
    std::vector<std::vector<double>> x;
    std::vector<std::size_t> labels;
    makeClassData(data_rng, 200, x, labels);
    RandomForestClassifier forest;
    ASSERT_TRUE(forest.fit(x, labels));
    const auto probabilities = forest.predictProbabilities({0.3, 0.7});
    double total = 0.0;
    for (double p : probabilities) total += p;
    EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(RandomForestClassifier, MultiClass) {
    common::Rng rng(9);
    std::vector<std::vector<double>> x;
    std::vector<std::size_t> labels;
    for (int i = 0; i < 600; ++i) {
        const double a = rng.uniform(0.0, 3.0);
        x.push_back({a});
        labels.push_back(static_cast<std::size_t>(a));  // 3 bands
    }
    RandomForestClassifier forest;
    ASSERT_TRUE(forest.fit(x, labels));
    EXPECT_EQ(forest.classCount(), 3u);
    EXPECT_EQ(forest.predict({0.5}), 0u);
    EXPECT_EQ(forest.predict({1.5}), 1u);
    EXPECT_EQ(forest.predict({2.5}), 2u);
}

TEST(RandomForestClassifier, RejectsBadInput) {
    RandomForestClassifier forest;
    EXPECT_FALSE(forest.fit({}, {}));
    EXPECT_FALSE(forest.fit({{1.0}}, {0, 1}));
    EXPECT_FALSE(forest.trained());
}

}  // namespace
}  // namespace wm::analytics

namespace wm::plugins {
namespace {

using common::kNsPerSec;
using common::TimestampNs;

TEST(ClassifierPlugin, FingerprintsApplications) {
    // A simulated node alternating between two applications with distinct
    // counter signatures; a synthetic label sensor supplies ground truth
    // during training. After training, the classifier must identify the
    // running app from counters alone.
    const std::string node_path = "/r0/c0/s0";
    auto node = std::make_shared<pusher::SimulatedNode>(4, 99);
    pusher::Pusher pusher(pusher::PusherConfig{node_path});
    pusher::PerfsimGroupConfig perf;
    perf.node_path = node_path;
    pusher.addGroup(std::make_unique<pusher::PerfsimGroup>(perf, node));

    core::QueryEngine engine;
    engine.setCacheStore(&pusher.cacheStore());
    core::OperatorManager manager(
        core::makeHostContext(engine, &pusher.cacheStore(), nullptr, nullptr));
    registerBuiltinPlugins(manager);

    auto& label_cache = pusher.cacheStore().getOrCreate(node_path + "/app-label");
    pusher.sampleOnce(kNsPerSec);
    label_cache.store({kNsPerSec, 0.0});
    engine.rebuildTree();

    const auto config = common::parseConfig(R"(
operator fingerprint {
    interval 1s
    window 3s
    trainingSamples 120
    trees 12
    maxDepth 8
    input {
        sensor "<bottomup-1>app-label"
        sensor "<bottomup, filter cpu>cpu-cycles"
        sensor "<bottomup, filter cpu>instructions"
        sensor "<bottomup, filter cpu>cache-misses"
        sensor "<bottomup, filter cpu>vector-ops"
    }
    output {
        sensor "<bottomup-1>app-predicted"
        sensor "<bottomup-1>app-confidence"
    }
}
)");
    ASSERT_TRUE(config.ok) << config.error;
    ASSERT_EQ(manager.loadPlugin("classifier", config.root), 1);
    auto op = std::dynamic_pointer_cast<ClassifierOperator>(
        manager.findOperator("fingerprint"));
    ASSERT_NE(op, nullptr);

    // Training: alternate LAMMPS (class 0) and Kripke (class 1).
    TimestampNs t = 2 * kNsPerSec;
    int phase = 0;
    node->startApp(simulator::AppKind::kLammps);
    while (!op->modelTrained() && t < 500 * kNsPerSec) {
        if ((t / kNsPerSec) % 30 == 0) {
            phase = 1 - phase;
            node->startApp(phase == 0 ? simulator::AppKind::kLammps
                                      : simulator::AppKind::kKripke);
        }
        pusher.sampleOnce(t);
        label_cache.store({t, static_cast<double>(phase)});
        manager.tickAll(t);
        t += kNsPerSec;
    }
    ASSERT_TRUE(op->modelTrained());
    EXPECT_GT(op->oobAccuracy(), 0.85);

    // Online identification without labels.
    auto classify = [&](simulator::AppKind app) {
        node->startApp(app);
        for (int i = 0; i < 6; ++i, t += kNsPerSec) {
            pusher.sampleOnce(t);
            manager.tickAll(t);
        }
        return pusher.cacheStore().find(node_path + "/app-predicted")->latest()->value;
    };
    EXPECT_DOUBLE_EQ(classify(simulator::AppKind::kLammps), 0.0);
    EXPECT_DOUBLE_EQ(classify(simulator::AppKind::kKripke), 1.0);
    const auto confidence =
        pusher.cacheStore().find(node_path + "/app-confidence")->latest();
    ASSERT_TRUE(confidence.has_value());
    EXPECT_GT(confidence->value, 0.6);
}

TEST(ClassifierPlugin, NoTrainingWithoutLabelSensor) {
    sensors::CacheStore caches;
    core::QueryEngine engine;
    engine.setCacheStore(&caches);
    for (int i = 0; i < 10; ++i) {
        caches.getOrCreate("/n0/cpu-cycles").store({i * kNsPerSec, i * 1e9});
    }
    engine.rebuildTree();
    core::OperatorManager manager(
        core::makeHostContext(engine, &caches, nullptr, nullptr));
    registerBuiltinPlugins(manager);
    const auto config = common::parseConfig(R"(
operator fp {
    interval 1s
    window 3s
    trainingSamples 5
    input {
        sensor "<bottomup>cpu-cycles"
    }
    output {
        sensor "<bottomup>pred"
    }
}
)");
    ASSERT_TRUE(config.ok);
    ASSERT_EQ(manager.loadPlugin("classifier", config.root), 1);
    auto op = std::dynamic_pointer_cast<ClassifierOperator>(manager.findOperator("fp"));
    for (int i = 0; i < 10; ++i) manager.tickAll((20 + i) * kNsPerSec);
    EXPECT_FALSE(op->modelTrained());
    EXPECT_EQ(op->trainingSetSize(), 0u);  // no label, no samples
}

}  // namespace
}  // namespace wm::plugins
