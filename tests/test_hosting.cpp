// Tests for the host wiring (core/hosting.h): the publish fan-out into
// cache / broker / storage sinks, and degenerate host configurations.

#include "core/hosting.h"

#include <gtest/gtest.h>

namespace wm::core {
namespace {

using common::kNsPerSec;

class PassthroughOperator final : public OperatorTemplate {
  public:
    using OperatorTemplate::OperatorTemplate;

  protected:
    std::vector<SensorValue> compute(const Unit& unit, common::TimestampNs t) override {
        std::vector<SensorValue> out;
        for (const auto& topic : unit.outputs) out.push_back({topic, {t, 42.0}});
        return out;
    }
};

TEST(Hosting, PublishFansOutToAllSinks) {
    sensors::CacheStore caches;
    mqtt::Broker broker;
    storage::StorageBackend storage;
    QueryEngine engine;
    engine.setCacheStore(&caches);
    std::atomic<int> broker_hits{0};
    broker.subscribe("#", [&](const mqtt::Message&) { broker_hits.fetch_add(1); });

    const OperatorContext context =
        makeHostContext(engine, &caches, &broker, &storage);
    context.publish({"/x/out", {kNsPerSec, 7.5}});

    ASSERT_NE(caches.find("/x/out"), nullptr);
    EXPECT_DOUBLE_EQ(caches.find("/x/out")->latest()->value, 7.5);
    EXPECT_EQ(broker_hits.load(), 1);
    ASSERT_TRUE(storage.latest("/x/out").has_value());
    EXPECT_DOUBLE_EQ(storage.latest("/x/out")->value, 7.5);
}

TEST(Hosting, NullSinksAreSkipped) {
    sensors::CacheStore caches;
    QueryEngine engine;
    engine.setCacheStore(&caches);
    const OperatorContext context = makeHostContext(engine, nullptr, nullptr, nullptr);
    // Publishing into a sink-less host must be a harmless no-op.
    context.publish({"/void/out", {kNsPerSec, 1.0}});
    EXPECT_EQ(caches.find("/void/out"), nullptr);
}

TEST(Hosting, OperatorWithoutQueryEngineProducesNoInputData) {
    sensors::CacheStore caches;
    QueryEngine engine;
    engine.setCacheStore(&caches);
    OperatorContext context = makeHostContext(engine, &caches, nullptr, nullptr);
    context.query_engine = nullptr;  // simulated mis-wiring

    OperatorConfig config;
    config.name = "p";
    auto op = std::make_shared<PassthroughOperator>(config, context);
    op->setUnits({{"/n", {"/n/in"}, {"/n/out"}}});
    // Must not crash; the operator still emits its constant output.
    op->computeAll(kNsPerSec);
    EXPECT_EQ(op->errorCount(), 0u);
    ASSERT_NE(caches.find("/n/out"), nullptr);
}

TEST(Hosting, JobManagerIsPassedThrough) {
    sensors::CacheStore caches;
    jobs::JobManager jobs;
    QueryEngine engine;
    engine.setCacheStore(&caches);
    const OperatorContext context =
        makeHostContext(engine, &caches, nullptr, nullptr, &jobs);
    EXPECT_EQ(context.job_manager, &jobs);
    EXPECT_EQ(context.query_engine, &engine);
    EXPECT_FALSE(context.actuate);  // no control authority unless wired
}

}  // namespace
}  // namespace wm::core
