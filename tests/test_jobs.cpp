#include "jobs/job_manager.h"

#include <gtest/gtest.h>

namespace wm::jobs {
namespace {

using common::kNsPerSec;

JobRecord makeJob(const std::string& id, common::TimestampNs start,
                  common::TimestampNs end = 0) {
    JobRecord job;
    job.job_id = id;
    job.user_id = "user1";
    job.nodes = {"/rack0/chassis0/server0", "/rack0/chassis0/server1"};
    job.start_time = start;
    job.end_time = end;
    return job;
}

TEST(JobManager, SubmitAndFind) {
    JobManager manager;
    EXPECT_TRUE(manager.submit(makeJob("1001", 10 * kNsPerSec)));
    const auto found = manager.find("1001");
    ASSERT_TRUE(found.has_value());
    EXPECT_EQ(found->nodes.size(), 2u);
    EXPECT_FALSE(manager.find("9999").has_value());
}

TEST(JobManager, RejectsInvalidSubmissions) {
    JobManager manager;
    JobRecord no_id = makeJob("", 0);
    EXPECT_FALSE(manager.submit(no_id));
    JobRecord no_nodes = makeJob("1", 0);
    no_nodes.nodes.clear();
    EXPECT_FALSE(manager.submit(no_nodes));
    EXPECT_TRUE(manager.submit(makeJob("1", 0)));
    EXPECT_FALSE(manager.submit(makeJob("1", 5)));  // duplicate active id
}

TEST(JobManager, ResubmitAfterCompletionAllowed) {
    JobManager manager;
    EXPECT_TRUE(manager.submit(makeJob("1", 0)));
    EXPECT_TRUE(manager.complete("1", 10 * kNsPerSec));
    EXPECT_TRUE(manager.submit(makeJob("1", 20 * kNsPerSec)));
}

TEST(JobManager, CompleteOnlyOnce) {
    JobManager manager;
    manager.submit(makeJob("1", 0));
    EXPECT_TRUE(manager.complete("1", 5));
    EXPECT_FALSE(manager.complete("1", 6));
    EXPECT_FALSE(manager.complete("ghost", 6));
}

TEST(JobManager, RunningAtRespectsBoundaries) {
    JobManager manager;
    manager.submit(makeJob("1", 10 * kNsPerSec, 20 * kNsPerSec));
    manager.submit(makeJob("2", 15 * kNsPerSec));  // still running
    EXPECT_TRUE(manager.runningAt(5 * kNsPerSec).empty());
    EXPECT_EQ(manager.runningAt(10 * kNsPerSec).size(), 1u);   // start inclusive
    EXPECT_EQ(manager.runningAt(19 * kNsPerSec).size(), 2u);
    EXPECT_EQ(manager.runningAt(20 * kNsPerSec).size(), 1u);   // end exclusive
    EXPECT_EQ(manager.runningAt(100 * kNsPerSec)[0].job_id, "2");
}

TEST(JobManager, RunningAtIsSortedByJobId) {
    JobManager manager;
    manager.submit(makeJob("20", 0));
    manager.submit(makeJob("10", 0));
    const auto running = manager.runningAt(1);
    ASSERT_EQ(running.size(), 2u);
    EXPECT_EQ(running[0].job_id, "10");
    EXPECT_EQ(running[1].job_id, "20");
}

TEST(JobManager, IntervalIntersection) {
    JobManager manager;
    manager.submit(makeJob("1", 10 * kNsPerSec, 20 * kNsPerSec));
    manager.submit(makeJob("2", 30 * kNsPerSec, 40 * kNsPerSec));
    EXPECT_EQ(manager.inInterval(0, 5 * kNsPerSec).size(), 0u);
    EXPECT_EQ(manager.inInterval(15 * kNsPerSec, 35 * kNsPerSec).size(), 2u);
    EXPECT_EQ(manager.inInterval(25 * kNsPerSec, 28 * kNsPerSec).size(), 0u);
}

TEST(JobManager, JobsOnNode) {
    JobManager manager;
    manager.submit(makeJob("1", 0));
    auto other = makeJob("2", 0);
    other.nodes = {"/rack1/chassis0/server0"};
    manager.submit(other);
    EXPECT_EQ(manager.jobsOnNode("/rack0/chassis0/server0", 1).size(), 1u);
    EXPECT_EQ(manager.jobsOnNode("/rack1/chassis0/server0", 1).size(), 1u);
    EXPECT_EQ(manager.jobsOnNode("/rack9/chassis0/server0", 1).size(), 0u);
}

TEST(JobRecord, RunningAtSemantics) {
    const JobRecord running = makeJob("1", 10, 0);
    EXPECT_TRUE(running.runningAt(10));
    EXPECT_TRUE(running.runningAt(1000000));
    EXPECT_FALSE(running.runningAt(9));
    const JobRecord ended = makeJob("1", 10, 20);
    EXPECT_TRUE(ended.runningAt(19));
    EXPECT_FALSE(ended.runningAt(20));
}

}  // namespace
}  // namespace wm::jobs
