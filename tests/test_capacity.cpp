// wm-cost capacity model (src/analysis/capacity.*, docs/STATIC_ANALYSIS.md
// "Layer 5: capacity analysis"):
//
//  * budget parsing and the WM0908 knob diagnostics,
//  * the WM0901-WM0907 / WM0909 budget family on small in-memory configs,
//  * byte-stability of the wintermute-capacity-v1 report, and
//  * the cross-validation contract: the real in-process pipeline, stood up
//    from configs/wintermuted.cfg exactly as ScenarioRunner wires it, must
//    land within 15% of the static prediction for both broker ingest rate
//    and cache memory. This is what keeps the model a predictor rather
//    than a guess.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "analysis/analyzer.h"
#include "analysis/capacity.h"
#include "collectagent/collect_agent.h"
#include "common/config.h"
#include "common/time_utils.h"
#include "core/hosting.h"
#include "core/operator_manager.h"
#include "core/query_engine.h"
#include "jobs/job_manager.h"
#include "mqtt/broker.h"
#include "plugins/registry.h"
#include "pusher/plugins/facilitysim_group.h"
#include "pusher/plugins/perfsim_group.h"
#include "pusher/plugins/procfssim_group.h"
#include "pusher/plugins/sysfssim_group.h"
#include "pusher/pusher.h"
#include "pusher/sim_node.h"
#include "simulator/app_model.h"
#include "simulator/topology.h"
#include "storage/shard_map.h"
#include "storage/sharded_storage_backend.h"
#include "storage/storage_backend.h"

namespace wm::analysis {
namespace {

using common::kNsPerSec;
using common::TimestampNs;

AnalysisSummary analyze(const std::string& text, DiagnosticSink& sink,
                        CapacityReport* report = nullptr) {
    auto parsed = common::parseConfig(text);
    EXPECT_TRUE(parsed.ok) << parsed.error;
    return analyzeConfig(parsed.root, "", sink, report);
}

// ---------------------------------------------------------------------------
// Budget parsing (WM0908 family).
// ---------------------------------------------------------------------------

TEST(CapacityBudgets, ParsesEveryKnob) {
    auto parsed = common::parseConfig(
        "capacity {\n"
        "    maxRssMb 512\n"
        "    maxMsgsPerSec 1000\n"
        "    maxOperatorLagMs 250\n"
        "    maxSubtreeRateShare 0.7\n"
        "    maxRestSeriesReadings 50000\n"
        "    growthHorizon 12h\n"
        "    plugin aggregator {\n"
        "        maxRssMb 64\n"
        "    }\n"
        "}\n");
    ASSERT_TRUE(parsed.ok) << parsed.error;
    DiagnosticSink sink;
    CapacityBudgets budgets = parseCapacityBudgets(parsed.root, sink);
    EXPECT_FALSE(sink.hasErrors()) << renderText(sink);
    EXPECT_TRUE(budgets.declared);
    EXPECT_DOUBLE_EQ(budgets.max_rss_mb, 512.0);
    EXPECT_DOUBLE_EQ(budgets.max_msgs_per_sec, 1000.0);
    EXPECT_DOUBLE_EQ(budgets.max_operator_lag_ms, 250.0);
    EXPECT_DOUBLE_EQ(budgets.max_subtree_rate_share, 0.7);
    EXPECT_EQ(budgets.max_rest_series_readings, 50000);
    EXPECT_EQ(budgets.growth_horizon_ns, 12 * 3600 * kNsPerSec);
    ASSERT_EQ(budgets.plugin_max_rss_mb.size(), 1u);
    EXPECT_EQ(budgets.plugin_max_rss_mb[0].first, "aggregator");
    EXPECT_DOUBLE_EQ(budgets.plugin_max_rss_mb[0].second, 64.0);
}

TEST(CapacityBudgets, AbsentBlockIsUndeclared) {
    auto parsed = common::parseConfig("pusher {\n}\n");
    ASSERT_TRUE(parsed.ok);
    DiagnosticSink sink;
    CapacityBudgets budgets = parseCapacityBudgets(parsed.root, sink);
    EXPECT_FALSE(budgets.declared);
    EXPECT_TRUE(sink.codes().empty());
}

TEST(CapacityBudgets, UnknownKnobIsWM0908) {
    auto parsed = common::parseConfig("capacity {\n    frobnicate 3\n}\n");
    ASSERT_TRUE(parsed.ok);
    DiagnosticSink sink;
    parseCapacityBudgets(parsed.root, sink);
    EXPECT_TRUE(sink.hasErrors());
    EXPECT_TRUE(sink.hasCode("WM0908"));
}

TEST(CapacityBudgets, NonPositiveValuesAreWM0908) {
    DiagnosticSink sink;
    analyze("capacity {\n    maxRssMb 0\n    maxSubtreeRateShare 1.5\n}\n", sink);
    EXPECT_TRUE(sink.hasErrors());
    EXPECT_TRUE(sink.hasCode("WM0908"));
}

TEST(CapacityBudgets, OverrideForUnconfiguredPluginIsWM0908) {
    DiagnosticSink sink;
    analyze("capacity {\n    plugin regressor {\n        maxRssMb 4\n    }\n}\n",
            sink);
    EXPECT_TRUE(sink.hasCode("WM0908"));
}

TEST(CapacityBudgets, NonPositiveStorageTtlIsWM0908) {
    DiagnosticSink sink;
    analyze("collectagent {\n    storageTtl 0s\n}\n", sink);
    EXPECT_TRUE(sink.hasErrors());
    EXPECT_TRUE(sink.hasCode("WM0908"));
}

// ---------------------------------------------------------------------------
// Budget diagnostics on the default 8-node topology.
// ---------------------------------------------------------------------------

TEST(CapacityDiagnostics, MemoryOverrunIsWM0901) {
    // ~700 caches of ~3 KB blow a 1 MB budget on the default topology.
    DiagnosticSink sink;
    CapacityReport report;
    analyze("capacity {\n    maxRssMb 1\n}\n", sink, &report);
    EXPECT_TRUE(sink.hasCode("WM0901"));
    EXPECT_GT(report.data_rss_bytes, std::size_t{1024 * 1024});
}

TEST(CapacityDiagnostics, PluginOverrideOverrunIsWM0901) {
    DiagnosticSink sink;
    analyze("plugin aggregator {\n"
            "    host collectagent\n"
            "    operator avg {\n"
            "        interval 2s\n"
            "        window 30s\n"
            "        operation average\n"
            "        input {\n"
            "            sensor \"<bottomup-1>power\"\n"
            "        }\n"
            "        output {\n"
            "            sensor \"<bottomup-1>power-avg\"\n"
            "        }\n"
            "    }\n"
            "}\n"
            "capacity {\n"
            "    plugin aggregator {\n"
            "        maxRssMb 0.000001\n"  // ~1 byte: any state overruns
            "    }\n"
            "}\n",
            sink);
    EXPECT_TRUE(sink.hasCode("WM0901"));
}

TEST(CapacityDiagnostics, RateOverrunIsWM0902) {
    DiagnosticSink sink;
    CapacityReport report;
    analyze("capacity {\n    maxMsgsPerSec 10\n}\n", sink, &report);
    EXPECT_TRUE(sink.hasCode("WM0902"));
    EXPECT_GT(report.total_msgs_per_sec, 10.0);
}

TEST(CapacityDiagnostics, OperatorLagIsWM0903) {
    // 36000s window at 1s sampling: each pass visits ~36001 readings per
    // input topic, far beyond a 10ms lag budget.
    DiagnosticSink sink;
    analyze("pusher {\n"
            "    samplingInterval 1s\n"
            "    cacheWindow 40000s\n"
            "}\n"
            "plugin perfmetrics {\n"
            "    host pusher\n"
            "    operator pm {\n"
            "        interval 1s\n"
            "        window 36000s\n"
            "        input {\n"
            "            sensor \"<bottomup>cpu-cycles\"\n"
            "            sensor \"<bottomup>instructions\"\n"
            "        }\n"
            "        output {\n"
            "            sensor \"<bottomup>cpi\"\n"
            "        }\n"
            "    }\n"
            "}\n"
            "capacity {\n"
            "    maxOperatorLagMs 10\n"
            "}\n",
            sink);
    EXPECT_TRUE(sink.hasCode("WM0903"));
}

TEST(CapacityDiagnostics, UnboundedGrowthIsWM0904) {
    // Budget is generous (no WM0901), but without storageTtl the backend
    // grows forever, so the budget is a matter of time.
    DiagnosticSink sink;
    CapacityReport report;
    analyze("capacity {\n    maxRssMb 4096\n}\n", sink, &report);
    EXPECT_FALSE(sink.hasCode("WM0901"));
    EXPECT_TRUE(sink.hasCode("WM0904"));
    EXPECT_FALSE(report.storage_bounded);
    EXPECT_GT(report.storage_growth_bytes_per_sec, 0.0);
}

TEST(CapacityDiagnostics, StorageTtlBoundsGrowth) {
    DiagnosticSink sink;
    CapacityReport report;
    analyze("collectagent {\n    storageTtl 600s\n}\n"
            "capacity {\n    maxRssMb 4096\n}\n",
            sink, &report);
    EXPECT_FALSE(sink.hasCode("WM0904")) << renderText(sink);
    EXPECT_TRUE(report.storage_bounded);
    EXPECT_GT(report.storage_steady_bytes, 0u);
}

TEST(CapacityDiagnostics, SubMillisecondSamplingIsWM0905) {
    // Structural: fires with no capacity block at all.
    DiagnosticSink sink;
    analyze("pusher {\n    samplingInterval 100us\n}\n", sink);
    EXPECT_FALSE(sink.hasErrors());
    EXPECT_TRUE(sink.hasCode("WM0905"));
}

TEST(CapacityDiagnostics, OperatorFasterThanSamplingIsWM0905) {
    DiagnosticSink sink;
    analyze("plugin aggregator {\n"
            "    host collectagent\n"
            "    operator avg {\n"
            "        interval 100ms\n"
            "        window 30s\n"
            "        operation average\n"
            "        input {\n"
            "            sensor \"<bottomup-1>power\"\n"
            "        }\n"
            "        output {\n"
            "            sensor \"<bottomup-1>power-avg\"\n"
            "        }\n"
            "    }\n"
            "}\n",
            sink);
    EXPECT_FALSE(sink.hasErrors());
    EXPECT_TRUE(sink.hasCode("WM0905"));
}

TEST(CapacityDiagnostics, FanInHotSpotIsWM0906) {
    // Two racks of the mini-cluster carry ~49% each; a 0.4 threshold flags
    // both (but not the tiny facility subtree).
    DiagnosticSink sink;
    CapacityReport report;
    analyze("cluster {\n"
            "    racks 2\n    chassisPerRack 2\n    nodesPerChassis 2\n"
            "    cpusPerNode 8\n"
            "}\n"
            "capacity {\n    maxSubtreeRateShare 0.4\n}\n",
            sink, &report);
    EXPECT_TRUE(sink.hasCode("WM0906"));
    EXPECT_GE(sink.warningCount(), 2u);
    ASSERT_GT(report.subtrees.size(), 1u);
    double total_share = 0.0;
    for (const auto& subtree : report.subtrees) total_share += subtree.share;
    EXPECT_NEAR(total_share, 1.0, 1e-9);
}

TEST(CapacityDiagnostics, FanInRequiresDeclaredBudgets) {
    // A single-rack deployment is trivially lopsided (rack0 carries ~70%,
    // the facility loop the rest); without a capacity block that must stay
    // silent, or every small config would warn.
    DiagnosticSink sink;
    analyze("cluster {\n"
            "    racks 1\n    chassisPerRack 1\n    nodesPerChassis 1\n"
            "    cpusPerNode 2\n"
            "}\n",
            sink);
    EXPECT_FALSE(sink.hasCode("WM0906")) << renderText(sink);
}

TEST(CapacityDiagnostics, RestWorstCaseIsWM0907) {
    DiagnosticSink sink;
    CapacityReport report;
    analyze("capacity {\n    maxRestSeriesReadings 10\n}\n", sink, &report);
    EXPECT_TRUE(sink.hasCode("WM0907"));
    EXPECT_GT(report.rest_series_worst_readings, 10u);
}

TEST(CapacityDiagnostics, PublishBufferOverflowIsWM0909) {
    // Structural: one tick of a 2-cpu node publishes more than an 8-slot
    // resilience buffer holds; no capacity block required.
    DiagnosticSink sink;
    analyze("resilience {\n    publishBufferMax 8\n}\n", sink);
    EXPECT_FALSE(sink.hasErrors());
    EXPECT_TRUE(sink.hasCode("WM0909"));
}

// ---------------------------------------------------------------------------
// Report rendering.
// ---------------------------------------------------------------------------

TEST(CapacityReportJson, ShippedConfigIsCleanAndByteStable) {
    const std::string path = std::string(WM_CONFIG_DIR) + "/wintermuted.cfg";
    DiagnosticSink first_sink;
    CapacityReport first;
    analyzeConfigFile(path, first_sink, &first);
    EXPECT_FALSE(first_sink.hasErrors()) << renderText(first_sink);
    EXPECT_EQ(first_sink.warningCount(), 0u) << renderText(first_sink);

    DiagnosticSink second_sink;
    CapacityReport second;
    analyzeConfigFile(path, second_sink, &second);

    const std::string a = renderCapacityJson(first, path);
    const std::string b = renderCapacityJson(second, path);
    EXPECT_EQ(a, b);
    EXPECT_EQ(a.rfind("{\"schema\":\"wintermute-capacity-v1\"", 0), 0u);
    EXPECT_EQ(a.back(), '\n');

    // Topology echo of the shipped mini-cluster (2x2x2 nodes + facility).
    EXPECT_EQ(first.nodes, 8u);
    EXPECT_EQ(first.pushers, 9u);
    EXPECT_GT(first.raw_sensors, 0u);
    EXPECT_TRUE(first.budgets.declared);
    EXPECT_TRUE(first.storage_bounded);
    // Rates are internally consistent: subtrees partition the total.
    double subtree_sum = 0.0;
    for (const auto& subtree : first.subtrees) subtree_sum += subtree.msgs_per_sec;
    EXPECT_NEAR(subtree_sum, first.total_msgs_per_sec, 1e-6);
    EXPECT_NEAR(first.raw_msgs_per_sec + first.operator_msgs_per_sec,
                first.total_msgs_per_sec, 1e-6);
}

// ---------------------------------------------------------------------------
// Cross-validation: static prediction vs the real in-process pipeline.
// ---------------------------------------------------------------------------

// Stands up the full data path from the shipped config exactly as
// ScenarioRunner::build does (simulated nodes -> Pushers -> synchronous
// broker -> Collect Agent, Wintermute operators on both hosts), minus the
// scenario-only label stream. Synchronous and single-threaded.
class MiniPipeline {
  public:
    bool build(const common::ConfigNode& root, std::string* error) {
        simulator::Topology topology;
        if (const common::ConfigNode* cluster = root.child("cluster")) {
            topology.racks = static_cast<std::size_t>(cluster->getInt("racks", 2));
            topology.chassis_per_rack =
                static_cast<std::size_t>(cluster->getInt("chassisPerRack", 2));
            topology.nodes_per_chassis =
                static_cast<std::size_t>(cluster->getInt("nodesPerChassis", 2));
            topology.cpus_per_node =
                static_cast<std::size_t>(cluster->getInt("cpusPerNode", 8));
        }
        const common::ConfigNode* cluster = root.child("cluster");
        const simulator::AppKind app = simulator::appFromName(
            cluster != nullptr ? cluster->getString("app", "lammps") : "lammps");

        TimestampNs window = 180 * kNsPerSec;
        if (const common::ConfigNode* pusher_cfg = root.child("pusher")) {
            sampling_ = pusher_cfg->getDurationNs("samplingInterval", kNsPerSec);
            window = pusher_cfg->getDurationNs("cacheWindow", 180 * kNsPerSec);
        }

        // `collectagent { shards }` splits storage and agents exactly like
        // wintermuted: sharded backend + one agent per non-empty shard of
        // the sorted round-robin subtree deal.
        std::size_t shards = 1;
        if (const common::ConfigNode* agent_cfg = root.child("collectagent")) {
            shards = static_cast<std::size_t>(agent_cfg->getInt("shards", 1));
        }
        if (shards > 1) {
            storage_ = std::make_unique<storage::ShardedStorageBackend>(shards);
            std::vector<std::string> prefixes;
            for (std::size_t n = 0; n < topology.nodeCount(); ++n) {
                const std::string node_path = topology.nodePath(n);
                prefixes.push_back(node_path.substr(0, node_path.find('/', 1)));
            }
            prefixes.push_back("/facility");
            const auto dealt =
                storage::assignSubtreeShards(std::move(prefixes), shards);
            std::vector<std::vector<std::string>> filters(shards);
            for (const auto& [prefix, shard] : dealt) {
                filters[shard].push_back(prefix + "/#");
            }
            for (std::size_t i = 0; i < shards; ++i) {
                if (filters[i].empty()) continue;
                collectagent::CollectAgentConfig config;
                config.name = "collectagent-" + std::to_string(i);
                config.filters = std::move(filters[i]);
                config.cache_window_ns = window;
                agents_.push_back(std::make_unique<collectagent::CollectAgent>(
                    config, broker_, *storage_));
            }
        } else {
            storage_ = std::make_unique<storage::StorageBackend>();
            agents_.push_back(std::make_unique<collectagent::CollectAgent>(
                collectagent::CollectAgentConfig{.cache_window_ns = window},
                broker_, *storage_));
        }
        for (auto& agent : agents_) agent->start();

        for (std::size_t n = 0; n < topology.nodeCount(); ++n) {
            const std::string node_path = topology.nodePath(n);
            auto node = std::make_shared<pusher::SimulatedNode>(
                topology.cpus_per_node, 4242 + n);
            node->startApp(app);
            nodes_.push_back(node);

            auto p = std::make_unique<pusher::Pusher>(
                pusher::PusherConfig{node_path, window, 2}, &broker_);
            pusher::PerfsimGroupConfig perf;
            perf.node_path = node_path;
            perf.interval_ns = sampling_;
            p->addGroup(std::make_unique<pusher::PerfsimGroup>(perf, node));
            pusher::SysfssimGroupConfig sys;
            sys.node_path = node_path;
            sys.interval_ns = sampling_;
            p->addGroup(std::make_unique<pusher::SysfssimGroup>(sys, node));
            pusher::ProcfssimGroupConfig proc;
            proc.node_path = node_path;
            proc.interval_ns = sampling_;
            p->addGroup(std::make_unique<pusher::ProcfssimGroup>(proc, node));
            pushers_.push_back(std::move(p));
        }

        facility_ = std::make_shared<pusher::SimulatedFacility>(
            simulator::FacilityCharacteristics{}, [this] {
                double total = 0.0;
                for (auto& p : pushers_) {
                    const auto* cache = p->cacheStore().find(p->name() + "/power");
                    if (cache != nullptr) {
                        const auto latest = cache->latest();
                        if (latest) total += latest->value;
                    }
                }
                return total;
            });
        auto facility_pusher = std::make_unique<pusher::Pusher>(
            pusher::PusherConfig{"/facility", window, 2}, &broker_);
        pusher::FacilitysimGroupConfig facility_group;
        facility_group.interval_ns = sampling_;
        facility_pusher->addGroup(
            std::make_unique<pusher::FacilitysimGroup>(facility_group, facility_));
        pushers_.push_back(std::move(facility_pusher));

        for (auto& p : pushers_) {
            auto engine = std::make_unique<core::QueryEngine>();
            engine->setCacheStore(&p->cacheStore());
            auto manager = std::make_unique<core::OperatorManager>(
                core::makeHostContext(*engine, &p->cacheStore(), &broker_, nullptr));
            plugins::registerBuiltinPlugins(*manager);
            pusher_engines_.push_back(std::move(engine));
            pusher_managers_.push_back(std::move(manager));
        }
        agent_engine_.setCacheStore(&agents_.front()->cacheStore());
        for (std::size_t i = 1; i < agents_.size(); ++i) {
            agent_engine_.addCacheStore(&agents_[i]->cacheStore());
        }
        agent_engine_.setStorage(storage_.get());
        agent_manager_ = std::make_unique<core::OperatorManager>(core::makeHostContext(
            agent_engine_, &agents_.front()->cacheStore(), nullptr, storage_.get(),
            &jobs_));
        plugins::registerBuiltinPlugins(*agent_manager_);

        tick(1 * kNsPerSec);  // warm the sensor space for unit resolution
        for (const auto* plugin : root.childrenOf("plugin")) {
            const std::string name = plugin->value();
            const std::string host = plugin->getString("host", "collectagent");
            if (host == "pusher") {
                for (auto& manager : pusher_managers_) {
                    if (manager->loadPlugin(name, *plugin) < 0) {
                        if (error != nullptr) *error = "unknown plugin: " + name;
                        return false;
                    }
                }
            } else if (agent_manager_->loadPlugin(name, *plugin) < 0) {
                if (error != nullptr) *error = "unknown plugin: " + name;
                return false;
            }
        }
        return true;
    }

    void tick(TimestampNs t_ns) {
        for (auto& p : pushers_) p->sampleOnce(t_ns);
        for (auto& engine : pusher_engines_) engine->rebuildTree();
        agent_engine_.rebuildTree();
        for (auto& manager : pusher_managers_) manager->tickAll(t_ns);
        if (agent_manager_) agent_manager_->tickAll(t_ns);
    }

    TimestampNs samplingNs() const { return sampling_; }
    mqtt::Broker& broker() { return broker_; }
    collectagent::CollectAgent& agent() { return *agents_.front(); }
    std::vector<std::unique_ptr<collectagent::CollectAgent>>& agents() {
        return agents_;
    }
    storage::Storage& storage() { return *storage_; }
    std::vector<std::unique_ptr<pusher::Pusher>>& pushers() { return pushers_; }

  private:
    TimestampNs sampling_ = kNsPerSec;
    mqtt::Broker broker_;
    std::unique_ptr<storage::Storage> storage_;
    jobs::JobManager jobs_;
    std::vector<std::unique_ptr<collectagent::CollectAgent>> agents_;
    pusher::SimulatedFacilityPtr facility_;
    std::vector<std::shared_ptr<pusher::SimulatedNode>> nodes_;
    std::vector<std::unique_ptr<pusher::Pusher>> pushers_;
    std::vector<std::unique_ptr<core::QueryEngine>> pusher_engines_;
    std::vector<std::unique_ptr<core::OperatorManager>> pusher_managers_;
    core::QueryEngine agent_engine_;
    std::unique_ptr<core::OperatorManager> agent_manager_;
};

double relativeError(double measured, double predicted) {
    if (predicted == 0.0) return measured == 0.0 ? 0.0 : 1.0;
    return std::abs(measured - predicted) / predicted;
}

TEST(CapacityCrossValidation, PredictionWithin15PercentOfPipeline) {
    const std::string path = std::string(WM_CONFIG_DIR) + "/wintermuted.cfg";

    // The static prediction, from config alone.
    DiagnosticSink sink;
    CapacityReport predicted;
    analyzeConfigFile(path, sink, &predicted);
    ASSERT_FALSE(sink.hasErrors()) << renderText(sink);
    ASSERT_GT(predicted.total_msgs_per_sec, 0.0);

    // The measurement: the same config driving the real data path.
    auto parsed = common::parseConfigFile(path);
    ASSERT_TRUE(parsed.ok) << parsed.error;
    MiniPipeline pipeline;
    std::string error;
    ASSERT_TRUE(pipeline.build(parsed.root, &error)) << error;

    const std::uint64_t published_before = pipeline.broker().publishedCount();
    constexpr TimestampNs kTicks = 60;
    for (TimestampNs t = 2; t <= 1 + kTicks; ++t) {
        pipeline.tick(t * kNsPerSec);
    }
    const std::uint64_t published_after = pipeline.broker().publishedCount();
    const double elapsed_sec =
        static_cast<double>(kTicks) *
        (static_cast<double>(pipeline.samplingNs()) / static_cast<double>(kNsPerSec));
    const double measured_rate =
        static_cast<double>(published_after - published_before) / elapsed_sec;
    EXPECT_LE(relativeError(measured_rate, predicted.total_msgs_per_sec), 0.15)
        << "measured " << measured_rate << " msgs/s vs predicted "
        << predicted.total_msgs_per_sec;

    std::size_t measured_pusher_bytes = 0;
    for (auto& p : pipeline.pushers()) {
        measured_pusher_bytes += p->cacheStore().memoryBytes();
    }
    EXPECT_LE(relativeError(static_cast<double>(measured_pusher_bytes),
                            static_cast<double>(predicted.pusher_cache_bytes)),
              0.15)
        << "measured pusher caches " << measured_pusher_bytes
        << " B vs predicted " << predicted.pusher_cache_bytes << " B";

    const std::size_t measured_agent_bytes =
        pipeline.agent().cacheStore().memoryBytes();
    EXPECT_LE(relativeError(static_cast<double>(measured_agent_bytes),
                            static_cast<double>(predicted.agent_cache_bytes)),
              0.15)
        << "measured agent caches " << measured_agent_bytes
        << " B vs predicted " << predicted.agent_cache_bytes << " B";
}

// Sharded variant of the cross-validation contract: with
// `collectagent { shards 2 }` the static per-shard load prediction
// (assignSubtreeShards over the config's subtrees) must match the real
// sharded pipeline — per-agent ingest shares within 15%, the per-shard
// cache-bytes prediction summing to the whole-plane prediction, and the
// sharded storage's aggregated accounting equal to the per-shard sums.
TEST(CapacityCrossValidation, ShardedPredictionMatchesPipeline) {
    const std::string config_text =
        "cluster {\n"
        "    racks 3\n"
        "    chassisPerRack 1\n"
        "    nodesPerChassis 2\n"
        "    cpusPerNode 4\n"
        "}\n"
        "collectagent {\n"
        "    shards 2\n"
        "}\n";

    DiagnosticSink sink;
    CapacityReport predicted;
    analyze(config_text, sink, &predicted);
    ASSERT_FALSE(sink.hasErrors()) << renderText(sink);
    ASSERT_EQ(predicted.shards, 2u);
    ASSERT_EQ(predicted.shard_loads.size(), 2u);

    // The shard loads partition the whole plane's prediction.
    double share_sum = 0.0;
    double rate_sum = 0.0;
    std::size_t topic_sum = 0;
    std::size_t cache_sum = 0;
    for (const auto& load : predicted.shard_loads) {
        share_sum += load.share;
        rate_sum += load.msgs_per_sec;
        topic_sum += load.topics;
        cache_sum += load.cache_bytes;
    }
    EXPECT_NEAR(share_sum, 1.0, 1e-9);
    EXPECT_NEAR(rate_sum, predicted.total_msgs_per_sec, 1e-6);
    std::size_t subtree_topic_sum = 0;
    for (const auto& subtree : predicted.subtrees) subtree_topic_sum += subtree.topics;
    EXPECT_EQ(topic_sum, subtree_topic_sum);
    // No operators configured, so the shard cache predictions sum exactly
    // to the agent-plane cache prediction.
    EXPECT_EQ(cache_sum, predicted.agent_cache_bytes);

    // Measurement: the same config driving the sharded pipeline.
    auto parsed = common::parseConfig(config_text);
    ASSERT_TRUE(parsed.ok) << parsed.error;
    MiniPipeline pipeline;
    std::string error;
    ASSERT_TRUE(pipeline.build(parsed.root, &error)) << error;
    ASSERT_EQ(pipeline.agents().size(), 2u);

    for (TimestampNs t = 2; t <= 31; ++t) {
        pipeline.tick(t * kNsPerSec);
    }

    std::uint64_t received_total = 0;
    for (auto& agent : pipeline.agents()) {
        received_total += agent->messagesReceived();
    }
    ASSERT_GT(received_total, 0u);
    for (std::size_t i = 0; i < pipeline.agents().size(); ++i) {
        const double measured_share =
            static_cast<double>(pipeline.agents()[i]->messagesReceived()) /
            static_cast<double>(received_total);
        EXPECT_LE(std::abs(measured_share - predicted.shard_loads[i].share), 0.15)
            << "agent " << i << " measured share " << measured_share
            << " vs predicted " << predicted.shard_loads[i].share;
    }

    // /status-style aggregation: whole-store accounting is the per-shard sum.
    auto& sharded =
        dynamic_cast<storage::ShardedStorageBackend&>(pipeline.storage());
    std::size_t per_shard_memory = 0;
    std::size_t per_shard_readings = 0;
    for (std::size_t i = 0; i < sharded.shardCount(); ++i) {
        per_shard_memory += sharded.shard(i).memoryBytes();
        per_shard_readings += sharded.shard(i).stats().reading_count;
    }
    EXPECT_EQ(sharded.memoryBytes(),
              per_shard_memory + sizeof(storage::ShardedStorageBackend));
    EXPECT_EQ(sharded.stats().reading_count, per_shard_readings);
    EXPECT_GT(per_shard_readings, 0u);
}

}  // namespace
}  // namespace wm::analysis
