// Tests for the CSV replay monitoring plugin: trace loading, slice-based
// re-stamping, looping, and end-to-end replay through a Pusher into the
// analysis stack.

#include <gtest/gtest.h>

#include <fstream>

#include "core/hosting.h"
#include "core/operator_manager.h"
#include "plugins/registry.h"
#include "pusher/plugins/csvreplay_group.h"
#include "pusher/pusher.h"
#include "storage/storage_backend.h"

namespace wm::pusher {
namespace {

using common::kNsPerSec;
using common::TimestampNs;

std::string writeTrace(const std::string& name, const std::string& contents) {
    const std::string path = ::testing::TempDir() + "/" + name;
    std::ofstream out(path);
    out << contents;
    return path;
}

TEST(CsvReplay, LoadsAndSortsRows) {
    const std::string path = writeTrace("replay_sorted.csv",
                                        "topic,timestamp,value\n"
                                        "/n/power,3000000000,103\n"
                                        "/n/power,1000000000,101\n"
                                        "/n/power,2000000000,102\n");
    CsvReplayConfig config;
    config.path = path;
    CsvReplayGroup group(config);
    ASSERT_TRUE(group.loaded());
    EXPECT_EQ(group.rowCount(), 3u);
    const auto first = group.read(10 * kNsPerSec);
    ASSERT_EQ(first.size(), 1u);
    EXPECT_DOUBLE_EQ(first[0].reading.value, 101.0);  // sorted: oldest first
    EXPECT_EQ(first[0].reading.timestamp, 10 * kNsPerSec);  // re-stamped
}

TEST(CsvReplay, SliceGroupsRowsPerTick) {
    // 1 s recorded spacing, replayed with 2 s slices: two rows per tick.
    std::string contents = "topic,timestamp,value\n";
    for (int i = 0; i < 6; ++i) {
        contents += "/n/s," + std::to_string(i * kNsPerSec) + "," +
                    std::to_string(i) + "\n";
    }
    CsvReplayConfig config;
    config.path = writeTrace("replay_slice.csv", contents);
    config.slice_ns = 2 * kNsPerSec;
    config.loop = false;
    CsvReplayGroup group(config);
    ASSERT_TRUE(group.loaded());
    EXPECT_EQ(group.read(kNsPerSec).size(), 2u);
    EXPECT_EQ(group.read(2 * kNsPerSec).size(), 2u);
    EXPECT_EQ(group.read(3 * kNsPerSec).size(), 2u);
    EXPECT_TRUE(group.read(4 * kNsPerSec).empty());
    EXPECT_TRUE(group.exhausted());
}

TEST(CsvReplay, LoopsWhenConfigured) {
    CsvReplayConfig config;
    config.path = writeTrace("replay_loop.csv",
                             "/n/s,0,1\n/n/s,500000000,2\n");  // 0.5 s apart
    config.slice_ns = kNsPerSec;
    CsvReplayGroup group(config);
    ASSERT_TRUE(group.loaded());
    EXPECT_EQ(group.read(kNsPerSec).size(), 2u);
    // Exhausted, but looping restarts from the top.
    EXPECT_EQ(group.read(2 * kNsPerSec).size(), 2u);
    EXPECT_FALSE(group.exhausted());
}

TEST(CsvReplay, TopicPrefixAndMalformedRows) {
    CsvReplayConfig config;
    config.path = writeTrace("replay_prefix.csv",
                             "garbage line\n"
                             "/n/power,notanumber,5\n"
                             "/n/power,1000,42.5\n");
    config.topic_prefix = "/replay";
    CsvReplayGroup group(config);
    ASSERT_TRUE(group.loaded());
    EXPECT_EQ(group.rowCount(), 1u);  // malformed rows skipped
    const auto readings = group.read(kNsPerSec);
    ASSERT_EQ(readings.size(), 1u);
    EXPECT_EQ(readings[0].topic, "/replay/n/power");
    EXPECT_DOUBLE_EQ(readings[0].reading.value, 42.5);
}

TEST(CsvReplay, MissingFileIsNotLoaded) {
    CsvReplayConfig config;
    config.path = "/nonexistent/trace.csv";
    CsvReplayGroup group(config);
    EXPECT_FALSE(group.loaded());
    EXPECT_TRUE(group.read(kNsPerSec).empty());
}

TEST(CsvReplay, SensorsEnumerateDistinctTopics) {
    CsvReplayConfig config;
    config.path = writeTrace("replay_sensors.csv",
                             "/a/x,1,1\n/a/y,2,2\n/a/x,3,3\n");
    CsvReplayGroup group(config);
    EXPECT_EQ(group.sensors().size(), 2u);
}

TEST(CsvReplay, RoundTripFromStorageDumpThroughAnalysis) {
    // dumpCsv -> replay -> Pusher -> aggregator operator: recorded data runs
    // through the same online stack as live data.
    storage::StorageBackend recorded;
    for (int i = 0; i < 20; ++i) {
        recorded.insert("/n0/power", {i * kNsPerSec, 100.0 + i});
    }
    const std::string path = ::testing::TempDir() + "/replay_roundtrip.csv";
    ASSERT_TRUE(recorded.dumpCsv(path));

    Pusher pusher(PusherConfig{"replay-host"});
    CsvReplayConfig config;
    config.path = path;
    config.slice_ns = 5 * kNsPerSec;  // 5 recorded seconds per live tick
    config.loop = false;
    pusher.addGroup(std::make_unique<CsvReplayGroup>(config));

    core::QueryEngine engine;
    engine.setCacheStore(&pusher.cacheStore());
    core::OperatorManager manager(
        core::makeHostContext(engine, &pusher.cacheStore(), nullptr, nullptr));
    plugins::registerBuiltinPlugins(manager);
    pusher.sampleOnce(kNsPerSec);
    engine.rebuildTree();
    const auto op_config = common::parseConfig(R"(
operator replay-max {
    interval 1s
    window 60s
    operation maximum
    input {
        sensor "<bottomup>power"
    }
    output {
        sensor "<bottomup>power-max"
    }
}
)");
    ASSERT_TRUE(op_config.ok);
    ASSERT_EQ(manager.loadPlugin("aggregator", op_config.root), 1);
    for (TimestampNs t = 2; t <= 6; ++t) {
        pusher.sampleOnce(t * kNsPerSec);
        manager.tickAll(t * kNsPerSec);
    }
    const auto* result = pusher.cacheStore().find("/n0/power-max");
    ASSERT_NE(result, nullptr);
    ASSERT_TRUE(result->latest().has_value());
    EXPECT_DOUBLE_EQ(result->latest()->value, 119.0);  // max of the trace
}

}  // namespace
}  // namespace wm::pusher
