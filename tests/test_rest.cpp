#include <gtest/gtest.h>

#include "rest/http_server.h"
#include "rest/router.h"

namespace wm::rest {
namespace {

TEST(Router, DispatchesExactRoutes) {
    Router router;
    router.route("GET", "/hello", [](const Request&) { return Response::text("hi"); });
    const Response response = router.dispatch({"GET", "/hello", {}, {}, ""});
    EXPECT_EQ(response.status, 200);
    EXPECT_EQ(response.body, "hi");
}

TEST(Router, MethodMatters) {
    Router router;
    router.route("GET", "/x", [](const Request&) { return Response::text("get"); });
    EXPECT_EQ(router.dispatch({"POST", "/x", {}, {}, ""}).status, 404);
}

TEST(Router, PathParamsAreCaptured) {
    Router router;
    router.route("GET", "/operators/:name/units", [](const Request& request) {
        return Response::text(request.path_params.at("name"));
    });
    const Response response = router.dispatch({"GET", "/operators/avg1/units", {}, {}, ""});
    EXPECT_EQ(response.body, "avg1");
}

TEST(Router, LaterRoutesWin) {
    Router router;
    router.route("GET", "/x", [](const Request&) { return Response::text("first"); });
    router.route("GET", "/x", [](const Request&) { return Response::text("second"); });
    EXPECT_EQ(router.dispatch({"GET", "/x", {}, {}, ""}).body, "second");
}

TEST(Router, UnmatchedIs404) {
    Router router;
    const Response response = router.dispatch({"GET", "/nothing", {}, {}, ""});
    EXPECT_EQ(response.status, 404);
}

TEST(Router, HandlerExceptionsBecome500) {
    Router router;
    router.route("GET", "/boom",
                 [](const Request&) -> Response { throw std::runtime_error("bad"); });
    const Response response = router.dispatch({"GET", "/boom", {}, {}, ""});
    EXPECT_EQ(response.status, 500);
    EXPECT_NE(response.body.find("bad"), std::string::npos);
}

TEST(Router, RejectsMalformedPatterns) {
    Router router;
    EXPECT_FALSE(router.route("GET", "no-slash", [](const Request&) {
        return Response::text("");
    }));
    EXPECT_FALSE(router.route("", "/x", [](const Request&) { return Response::text(""); }));
}

TEST(ParseQuery, DecodesPairs) {
    const auto q = Router::parseQuery("a=1&b=hello+world&c=%2Fpath&flag");
    EXPECT_EQ(q.at("a"), "1");
    EXPECT_EQ(q.at("b"), "hello world");
    EXPECT_EQ(q.at("c"), "/path");
    EXPECT_EQ(q.at("flag"), "");
}

TEST(JsonEscape, EscapesSpecials) {
    EXPECT_EQ(jsonEscape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    EXPECT_EQ(jsonEscape("plain"), "plain");
}

class HttpServerTest : public ::testing::Test {
  protected:
    void SetUp() override {
        router_.route("GET", "/ping",
                      [](const Request&) { return Response::text("pong"); });
        router_.route("POST", "/echo", [](const Request& request) {
            return Response::text(request.body);
        });
        router_.route("GET", "/query", [](const Request& request) {
            auto it = request.query.find("name");
            return Response::text(it == request.query.end() ? "none" : it->second);
        });
        server_ = std::make_unique<HttpServer>(router_);
        ASSERT_TRUE(server_->start(0));
    }

    Router router_;
    std::unique_ptr<HttpServer> server_;
};

TEST_F(HttpServerTest, GetRoundTrip) {
    const HttpResult result = httpRequest("127.0.0.1", server_->port(), "GET", "/ping");
    ASSERT_TRUE(result.ok) << result.error;
    EXPECT_EQ(result.status, 200);
    EXPECT_EQ(result.body, "pong");
}

TEST_F(HttpServerTest, PostBodyRoundTrip) {
    const HttpResult result =
        httpRequest("127.0.0.1", server_->port(), "POST", "/echo", "payload");
    ASSERT_TRUE(result.ok) << result.error;
    EXPECT_EQ(result.body, "payload");
}

TEST_F(HttpServerTest, QueryStringParsing) {
    const HttpResult result =
        httpRequest("127.0.0.1", server_->port(), "GET", "/query?name=wintermute");
    ASSERT_TRUE(result.ok) << result.error;
    EXPECT_EQ(result.body, "wintermute");
}

TEST_F(HttpServerTest, UnknownRouteIs404) {
    const HttpResult result = httpRequest("127.0.0.1", server_->port(), "GET", "/missing");
    ASSERT_TRUE(result.ok) << result.error;
    EXPECT_EQ(result.status, 404);
}

TEST_F(HttpServerTest, SequentialRequests) {
    for (int i = 0; i < 10; ++i) {
        const HttpResult result = httpRequest("127.0.0.1", server_->port(), "GET", "/ping");
        ASSERT_TRUE(result.ok) << result.error;
    }
    EXPECT_GE(server_->requestCount(), 10u);
}

TEST_F(HttpServerTest, StopUnbindsPort) {
    const std::uint16_t port = server_->port();
    server_->stop();
    EXPECT_FALSE(server_->running());
    const HttpResult result = httpRequest("127.0.0.1", port, "GET", "/ping", "", 500);
    EXPECT_FALSE(result.ok);
}

}  // namespace
}  // namespace wm::rest
