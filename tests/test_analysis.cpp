// Tests for the wm-check static configuration analyzer (src/analysis):
// diagnostic sink and renderers, the dataflow cycle detector, the dry-run
// pipeline on good and bad configurations, and the no-threads guarantee.
//
// The bad-configuration corpus lives in tests/data/bad_*.cfg. Each file's
// first line is a `# wm-check-expect: WM#### ...` header naming the exact
// set of diagnostic codes the analyzer must emit for it; the golden test
// below asserts the sets match. tools/config_check.py runs the same corpus
// through the wm_check binary.

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/analyzer.h"
#include "analysis/dataflow.h"
#include "analysis/diagnostic.h"
#include "common/config.h"

namespace wm::analysis {
namespace {

namespace fs = std::filesystem;

// ---------------------------------------------------------------- sink ----

TEST(DiagnosticSink, CountsAndCodes) {
    DiagnosticSink sink;
    sink.setFile("x.cfg");
    sink.error("WM0103", "no units", 12, 5, "aggregator/avg");
    sink.warning("WM0204", "dead output");
    sink.info("WM0601", "unknown block");
    sink.error("WM0103", "again");

    EXPECT_EQ(sink.errorCount(), 2u);
    EXPECT_EQ(sink.warningCount(), 1u);
    EXPECT_EQ(sink.infoCount(), 1u);
    EXPECT_TRUE(sink.hasErrors());
    EXPECT_TRUE(sink.hasCode("WM0103"));
    EXPECT_FALSE(sink.hasCode("WM0001"));
    // Sorted and deduplicated.
    EXPECT_EQ(sink.codes(),
              (std::vector<std::string>{"WM0103", "WM0204", "WM0601"}));
    EXPECT_EQ(sink.diagnostics().size(), 4u);
    EXPECT_EQ(sink.diagnostics()[0].location.file, "x.cfg");
    EXPECT_EQ(sink.diagnostics()[0].location.line, 12u);
    EXPECT_EQ(sink.diagnostics()[0].location.column, 5u);
}

TEST(DiagnosticSink, EmptyHasNoErrors) {
    DiagnosticSink sink;
    EXPECT_FALSE(sink.hasErrors());
    EXPECT_TRUE(sink.codes().empty());
}

// ----------------------------------------------------------- renderers ----

TEST(Renderers, TextFormat) {
    DiagnosticSink sink;
    sink.setFile("demo.cfg");
    sink.error("WM0101", "unknown plugin 'foo'", 3, 1);
    sink.warning("WM0204", "nobody consumes it", 9, 5, "aggregator/avg");

    std::string text = renderText(sink);
    EXPECT_NE(text.find("demo.cfg:3:1: error[WM0101] unknown plugin 'foo'"),
              std::string::npos)
        << text;
    EXPECT_NE(text.find("demo.cfg:9:5: warning[WM0204] aggregator/avg: "
                        "nobody consumes it"),
              std::string::npos)
        << text;
    EXPECT_NE(text.find("1 error, 1 warning, 0 infos"), std::string::npos)
        << text;
}

TEST(Renderers, TextOmitsUnknownLocation) {
    DiagnosticSink sink;
    sink.setFile("demo.cfg");
    sink.error("WM0203", "operator dependency cycle: a -> b -> a");
    std::string text = renderText(sink);
    // No ":0:0:" — file-level findings carry only the file name.
    EXPECT_EQ(text.find(":0:"), std::string::npos) << text;
    EXPECT_NE(text.find("demo.cfg: error[WM0203]"), std::string::npos) << text;
}

TEST(Renderers, JsonFormat) {
    DiagnosticSink sink;
    sink.setFile("demo.cfg");
    sink.error("WM0103", "no units resolve", 12, 5, "aggregator/avg");
    sink.warning("WM0301", "window too small");

    std::string json = renderJson(sink);
    EXPECT_NE(json.find("\"code\":\"WM0103\""), std::string::npos) << json;
    EXPECT_NE(json.find("\"severity\":\"error\""), std::string::npos) << json;
    EXPECT_NE(json.find("\"file\":\"demo.cfg\""), std::string::npos) << json;
    EXPECT_NE(json.find("\"line\":12"), std::string::npos) << json;
    EXPECT_NE(json.find("\"column\":5"), std::string::npos) << json;
    EXPECT_NE(json.find("\"subject\":\"aggregator/avg\""), std::string::npos)
        << json;
    EXPECT_NE(json.find("\"summary\":{\"errors\":1,\"warnings\":1,\"infos\":0}"),
              std::string::npos)
        << json;
}

TEST(Renderers, JsonEscapesStrings) {
    DiagnosticSink sink;
    sink.error("WM0404", "bad \"value\"\twith\nescapes");
    std::string json = renderJson(sink);
    EXPECT_NE(json.find("bad \\\"value\\\"\\twith\\nescapes"),
              std::string::npos)
        << json;
}

// ------------------------------------------------------------ dataflow ----

TEST(Dataflow, DetectsTopicCycle) {
    DataflowGraph graph;
    DataflowNode a;
    a.id = "p/a@collectagent";
    a.input_topics = {"/r0/c0/s0/b-out"};
    a.output_topics = {"/r0/c0/s0/a-out"};
    DataflowNode b;
    b.id = "p/b@collectagent";
    b.input_topics = {"/r0/c0/s0/a-out"};
    b.output_topics = {"/r0/c0/s0/b-out"};
    graph.addNode(a);
    graph.addNode(b);

    auto cycles = graph.cycles();
    ASSERT_EQ(cycles.size(), 1u);
    EXPECT_EQ(cycles[0].size(), 2u);
}

TEST(Dataflow, DetectsNameLevelSelfLoop) {
    // Unresolvable output (empty topics) still cycles through leaf names.
    DataflowGraph graph;
    DataflowNode a;
    a.id = "p/a@collectagent";
    a.input_names = {"x"};
    a.output_names = {"x"};
    graph.addNode(a);
    auto cycles = graph.cycles();
    ASSERT_EQ(cycles.size(), 1u);
    EXPECT_EQ(cycles[0], std::vector<std::string>{"p/a@collectagent"});
}

TEST(Dataflow, AcyclicChainHasNoCycles) {
    DataflowGraph graph;
    DataflowNode a;
    a.id = "p/a";
    a.output_topics = {"/t/one"};
    DataflowNode b;
    b.id = "p/b";
    b.input_topics = {"/t/one"};
    b.output_topics = {"/t/two"};
    graph.addNode(a);
    graph.addNode(b);
    EXPECT_TRUE(graph.cycles().empty());
}

TEST(Dataflow, DetectsTopicLevelSelfLoop) {
    // An operator consuming its own resolved output topic is a cycle of one.
    DataflowGraph graph;
    DataflowNode a;
    a.id = "p/a@collectagent";
    a.input_topics = {"/r0/c0/s0/x"};
    a.output_topics = {"/r0/c0/s0/x"};
    graph.addNode(a);
    auto cycles = graph.cycles();
    ASSERT_EQ(cycles.size(), 1u);
    EXPECT_EQ(cycles[0], std::vector<std::string>{"p/a@collectagent"});
}

TEST(Dataflow, DisjointCyclesReportedSeparately) {
    // Two independent 2-cycles must come back as two components, not one
    // merged blob (each needs its own WM0203 with its own member list).
    DataflowGraph graph;
    const char* ids[] = {"p/a", "p/b", "p/c", "p/d"};
    const char* inputs[] = {"/t/b", "/t/a", "/t/d", "/t/c"};
    const char* outputs[] = {"/t/a", "/t/b", "/t/c", "/t/d"};
    for (int i = 0; i < 4; ++i) {
        DataflowNode node;
        node.id = ids[i];
        node.input_topics = {inputs[i]};
        node.output_topics = {outputs[i]};
        graph.addNode(node);
    }
    auto cycles = graph.cycles();
    ASSERT_EQ(cycles.size(), 2u);
    EXPECT_EQ(cycles[0].size(), 2u);
    EXPECT_EQ(cycles[1].size(), 2u);
    // Membership is {a,b} and {c,d} in some order, never mixed.
    for (const auto& cycle : cycles) {
        const bool first_pair = cycle[0] == "p/a" || cycle[0] == "p/b";
        for (const auto& id : cycle) {
            EXPECT_EQ(first_pair, id == "p/a" || id == "p/b") << id;
        }
    }
}

TEST(Dataflow, DiamondFanInIsNotACycle) {
    // a feeds b and c, both feed d: heavy fan-in, but acyclic — the analyzer
    // must not confuse reconvergent paths with feedback.
    DataflowGraph graph;
    DataflowNode a;
    a.id = "p/a";
    a.output_topics = {"/t/a1", "/t/a2"};
    DataflowNode b;
    b.id = "p/b";
    b.input_topics = {"/t/a1"};
    b.output_topics = {"/t/b"};
    DataflowNode c;
    c.id = "p/c";
    c.input_topics = {"/t/a2"};
    c.output_topics = {"/t/c"};
    DataflowNode d;
    d.id = "p/d";
    d.input_topics = {"/t/b", "/t/c"};
    d.output_topics = {"/t/d"};
    graph.addNode(a);
    graph.addNode(b);
    graph.addNode(c);
    graph.addNode(d);
    EXPECT_TRUE(graph.cycles().empty());
}

// ---------------------------------------------------------- good paths ----

TEST(Analyzer, MinimalConfigIsClean) {
    const char* text =
        "cluster {\n"
        "    racks 1\n"
        "    chassisPerRack 1\n"
        "    nodesPerChassis 1\n"
        "    cpusPerNode 2\n"
        "}\n"
        "plugin aggregator {\n"
        "    host collectagent\n"
        "    operator avg {\n"
        "        input {\n"
        "            sensor \"<bottomup-1>power\"\n"
        "        }\n"
        "        output {\n"
        "            sensor \"<bottomup-1>power-avg\"\n"
        "        }\n"
        "    }\n"
        "}\n";
    auto parsed = common::parseConfig(text);
    ASSERT_TRUE(parsed.ok) << parsed.error;
    DiagnosticSink sink;
    AnalysisSummary summary = analyzeConfig(parsed.root, "", sink);
    EXPECT_FALSE(sink.hasErrors()) << renderText(sink);
    EXPECT_EQ(sink.warningCount(), 0u) << renderText(sink);
    // 1 node pusher + the facility pusher.
    EXPECT_EQ(summary.pusher_hosts, 2u);
    // Node: 2 cpus x 5 perf counters + 2 sysfs + 2 procfs = 14; facility: 6.
    EXPECT_EQ(summary.sensors_in_tree, 20u);
    EXPECT_EQ(summary.operators_analyzed, 1u);
    EXPECT_GE(summary.units_resolved, 1u);
}

TEST(Analyzer, UnknownTopLevelBlockIsInfoOnly) {
    auto parsed = common::parseConfig(
        "cluster {\n"
        "    racks 1\n"
        "    chassisPerRack 1\n"
        "    nodesPerChassis 1\n"
        "    cpusPerNode 2\n"
        "}\n"
        "mystery {\n"
        "    key value\n"
        "}\n");
    ASSERT_TRUE(parsed.ok) << parsed.error;
    DiagnosticSink sink;
    analyzeConfig(parsed.root, "", sink);
    EXPECT_FALSE(sink.hasErrors()) << renderText(sink);
    EXPECT_TRUE(sink.hasCode("WM0601")) << renderText(sink);
}

TEST(Analyzer, CollectAgentFilterDiagnostics) {
    const char* cluster =
        "cluster {\n"
        "    racks 1\n"
        "    chassisPerRack 1\n"
        "    nodesPerChassis 1\n"
        "    cpusPerNode 2\n"
        "}\n";
    // Invalid filter ('#' not last): WM0205, an error.
    auto parsed = common::parseConfig(std::string(cluster) +
                                      "collectagent {\n    filter \"/a/#/b\"\n}\n");
    ASSERT_TRUE(parsed.ok) << parsed.error;
    DiagnosticSink invalid;
    analyzeConfig(parsed.root, "", invalid);
    EXPECT_TRUE(invalid.hasCode("WM0205")) << renderText(invalid);
    EXPECT_TRUE(invalid.hasErrors());

    // Valid filter that matches no published topic: WM0206, a warning.
    parsed = common::parseConfig(std::string(cluster) +
                                 "collectagent {\n    filter \"/rak0/#\"\n}\n");
    ASSERT_TRUE(parsed.ok) << parsed.error;
    DiagnosticSink unmatched;
    analyzeConfig(parsed.root, "", unmatched);
    EXPECT_TRUE(unmatched.hasCode("WM0206")) << renderText(unmatched);
    EXPECT_FALSE(unmatched.hasErrors()) << renderText(unmatched);

    // A filter matching the simulated cluster's raw sensors: clean.
    parsed = common::parseConfig(std::string(cluster) +
                                 "collectagent {\n    filter \"/rack0/#\"\n}\n");
    ASSERT_TRUE(parsed.ok) << parsed.error;
    DiagnosticSink matching;
    analyzeConfig(parsed.root, "", matching);
    EXPECT_FALSE(matching.hasCode("WM0205")) << renderText(matching);
    EXPECT_FALSE(matching.hasCode("WM0206")) << renderText(matching);

    // No filter key at all: the "#" default needs no diagnostics.
    parsed = common::parseConfig(std::string(cluster) + "collectagent {\n}\n");
    ASSERT_TRUE(parsed.ok) << parsed.error;
    DiagnosticSink silent;
    analyzeConfig(parsed.root, "", silent);
    EXPECT_FALSE(silent.hasCode("WM0205"));
    EXPECT_FALSE(silent.hasCode("WM0206"));
    EXPECT_FALSE(silent.hasCode("WM0601"));  // known top-level block
}

TEST(Analyzer, ShippedConfigIsClean) {
    DiagnosticSink sink;
    AnalysisSummary summary =
        analyzeConfigFile(std::string(WM_CONFIG_DIR) + "/wintermuted.cfg", sink);
    EXPECT_FALSE(sink.hasErrors()) << renderText(sink);
    EXPECT_GT(summary.pusher_hosts, 0u);
    EXPECT_GT(summary.sensors_in_tree, 0u);
    EXPECT_GT(summary.operators_analyzed, 0u);
    EXPECT_GT(summary.units_resolved, 0u);
}

TEST(Analyzer, MissingFileYieldsWm0001) {
    DiagnosticSink sink;
    analyzeConfigFile("/nonexistent/nowhere.cfg", sink);
    EXPECT_TRUE(sink.hasCode("WM0001")) << renderText(sink);
    EXPECT_TRUE(sink.hasErrors());
}

// The --check contract: the dry run must not start any thread. Parse the
// Threads: line of /proc/self/status before and after a full analysis of the
// shipped configuration.
#ifdef __linux__
namespace {
int threadCount() {
    std::ifstream status("/proc/self/status");
    std::string line;
    while (std::getline(status, line)) {
        if (line.rfind("Threads:", 0) == 0) {
            return std::stoi(line.substr(8));
        }
    }
    return -1;
}
}  // namespace

TEST(Analyzer, DryRunStartsNoThreads) {
    int before = threadCount();
    ASSERT_GT(before, 0);
    DiagnosticSink sink;
    analyzeConfigFile(std::string(WM_CONFIG_DIR) + "/wintermuted.cfg", sink);
    EXPECT_EQ(threadCount(), before);
}
#endif

// -------------------------------------------------------- golden corpus ----

std::vector<std::string> expectedCodes(const fs::path& config) {
    std::ifstream in(config);
    std::string first;
    std::getline(in, first);
    const std::string marker = "# wm-check-expect:";
    EXPECT_EQ(first.rfind(marker, 0), 0u)
        << config << " lacks a wm-check-expect header";
    std::istringstream tokens(first.substr(marker.size()));
    std::vector<std::string> codes;
    std::string code;
    while (tokens >> code) codes.push_back(code);
    std::sort(codes.begin(), codes.end());
    return codes;
}

TEST(GoldenCorpus, EveryBadConfigFailsWithExpectedCodes) {
    std::vector<fs::path> corpus;
    for (const auto& entry : fs::directory_iterator(WM_TEST_DATA_DIR)) {
        const std::string name = entry.path().filename().string();
        if (name.rfind("bad_", 0) == 0 &&
            entry.path().extension() == ".cfg") {
            corpus.push_back(entry.path());
        }
    }
    std::sort(corpus.begin(), corpus.end());
    ASSERT_GE(corpus.size(), 9u) << "bad-config corpus went missing";

    for (const fs::path& config : corpus) {
        SCOPED_TRACE(config.string());
        std::vector<std::string> expected = expectedCodes(config);
        ASSERT_FALSE(expected.empty());

        DiagnosticSink sink;
        analyzeConfigFile(config.string(), sink);
        // Warning-only corpus entries exist (the WM09xx capacity family has
        // advisory findings); every entry must flag *something*.
        EXPECT_TRUE(sink.hasErrors() || sink.warningCount() > 0)
            << renderText(sink);
        EXPECT_EQ(sink.codes(), expected) << renderText(sink);

        // The same codes must round-trip through the JSON renderer.
        std::string json = renderJson(sink);
        for (const std::string& code : expected) {
            EXPECT_NE(json.find("\"code\":\"" + code + "\""),
                      std::string::npos)
                << config << ": " << code << " missing from JSON";
        }
        // And appear in the text renderer as severity[code].
        std::string text = renderText(sink);
        for (const std::string& code : expected) {
            EXPECT_NE(text.find("[" + code + "]"), std::string::npos)
                << config << ": " << code << " missing from text";
        }
    }
}

}  // namespace
}  // namespace wm::analysis
