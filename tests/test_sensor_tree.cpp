#include "core/sensor_tree.h"

#include <gtest/gtest.h>

namespace wm::core {
namespace {

/// The sensor space of the paper's Figure 2 (abbreviated to one rack branch
/// plus the root-level sensors).
std::vector<std::string> figure2Topics() {
    return {
        "/db-uptime",
        "/time-to-live",
        "/r03/inlet-temp",
        "/r03/c02/power",
        "/r03/c02/s02/memfree",
        "/r03/c02/s02/cpu0/cache-misses",
        "/r03/c02/s02/cpu0/cpu-cycles",
        "/r03/c02/s02/cpu1/cache-misses",
        "/r03/c02/s02/cpu1/cpu-cycles",
        "/r03/c02/s01/memfree",
        "/r03/c02/s01/cpu0/cache-misses",
        "/r03/c02/s01/cpu0/cpu-cycles",
    };
}

TEST(SensorTree, BuildCountsSensors) {
    SensorTree tree;
    EXPECT_EQ(tree.build(figure2Topics()), figure2Topics().size());
    EXPECT_EQ(tree.sensorCount(), figure2Topics().size());
}

TEST(SensorTree, ComponentNodesExist) {
    SensorTree tree;
    tree.build(figure2Topics());
    EXPECT_TRUE(tree.hasNode("/"));
    EXPECT_TRUE(tree.hasNode("/r03"));
    EXPECT_TRUE(tree.hasNode("/r03/c02"));
    EXPECT_TRUE(tree.hasNode("/r03/c02/s02"));
    EXPECT_TRUE(tree.hasNode("/r03/c02/s02/cpu1"));
    EXPECT_FALSE(tree.hasNode("/r99"));
    // A sensor topic is not a component node.
    EXPECT_FALSE(tree.hasNode("/r03/c02/power"));
}

TEST(SensorTree, SensorsAttachToTheirComponent) {
    SensorTree tree;
    tree.build(figure2Topics());
    EXPECT_EQ(tree.sensorsOf("/"), (std::vector<std::string>{"db-uptime", "time-to-live"}));
    EXPECT_EQ(tree.sensorsOf("/r03/c02"), (std::vector<std::string>{"power"}));
    EXPECT_TRUE(tree.hasSensor("/r03/c02/s02/cpu0", "cpu-cycles"));
    EXPECT_FALSE(tree.hasSensor("/r03/c02/s02/cpu0", "power"));
    EXPECT_TRUE(tree.sensorsOf("/unknown").empty());
}

TEST(SensorTree, DepthBookkeeping) {
    SensorTree tree;
    tree.build(figure2Topics());
    EXPECT_EQ(tree.maxDepth(), 4u);  // rack / chassis / server / cpu
    EXPECT_EQ(tree.nodesAtDepth(1), (std::vector<std::string>{"/r03"}));
    EXPECT_EQ(tree.nodesAtDepth(3).size(), 2u);  // s01, s02
    EXPECT_EQ(tree.nodesAtDepth(4).size(), 3u);  // cpu0 x2 + cpu1
    EXPECT_EQ(tree.nodesAtDepth(0), (std::vector<std::string>{"/"}));
}

TEST(SensorTree, ChildrenAreSorted) {
    SensorTree tree;
    tree.build(figure2Topics());
    EXPECT_EQ(tree.children("/r03/c02"),
              (std::vector<std::string>{"/r03/c02/s01", "/r03/c02/s02"}));
    EXPECT_TRUE(tree.children("/r03/c02/s01/cpu0").empty());
}

TEST(SensorTree, AddSensorIncrementally) {
    SensorTree tree;
    tree.build(figure2Topics());
    EXPECT_TRUE(tree.addSensor("/r03/c02/s02/healthy"));
    EXPECT_TRUE(tree.hasSensor("/r03/c02/s02", "healthy"));
    // Duplicates are rejected.
    EXPECT_FALSE(tree.addSensor("/r03/c02/s02/healthy"));
    // Invalid topics too.
    EXPECT_FALSE(tree.addSensor("/"));
    EXPECT_FALSE(tree.addSensor(""));
}

TEST(SensorTree, AllSensorsRoundTrip) {
    SensorTree tree;
    auto topics = figure2Topics();
    tree.build(topics);
    std::sort(topics.begin(), topics.end());
    EXPECT_EQ(tree.allSensors(), topics);
}

TEST(SensorTree, ClearResets) {
    SensorTree tree;
    tree.build(figure2Topics());
    tree.clear();
    EXPECT_EQ(tree.sensorCount(), 0u);
    EXPECT_EQ(tree.maxDepth(), 0u);
    EXPECT_FALSE(tree.hasNode("/r03"));
}

TEST(SensorTree, HierarchicalRelation) {
    EXPECT_TRUE(SensorTree::hierarchicallyRelated("/a/b", "/a/b/c"));      // descendant
    EXPECT_TRUE(SensorTree::hierarchicallyRelated("/a/b/c", "/a/b"));      // ancestor
    EXPECT_TRUE(SensorTree::hierarchicallyRelated("/a/b", "/a/b"));        // self
    EXPECT_FALSE(SensorTree::hierarchicallyRelated("/a/b", "/a/c"));       // sibling
    EXPECT_FALSE(SensorTree::hierarchicallyRelated("/a/b/x", "/a/c/y"));   // cousins
    EXPECT_TRUE(SensorTree::hierarchicallyRelated("/", "/anything"));
}

TEST(SensorTree, UnevenBranchDepths) {
    SensorTree tree;
    tree.build({"/shallow/sensor", "/deep/a/b/c/sensor"});
    EXPECT_EQ(tree.maxDepth(), 4u);
    EXPECT_TRUE(tree.hasSensor("/shallow", "sensor"));
    EXPECT_TRUE(tree.hasSensor("/deep/a/b/c", "sensor"));
}

}  // namespace
}  // namespace wm::core
