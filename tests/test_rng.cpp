#include "common/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

namespace wm::common {
namespace {

TEST(Rng, DeterministicForEqualSeeds) {
    Rng a(123);
    Rng b(123);
    for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
    Rng a(1);
    Rng b(2);
    int equal = 0;
    for (int i = 0; i < 100; ++i) {
        if (a.next() == b.next()) ++equal;
    }
    EXPECT_LT(equal, 5);
}

TEST(Rng, UniformInUnitInterval) {
    Rng rng(7);
    double sum = 0.0;
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, UniformIntRespectsBound) {
    Rng rng(11);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 1000; ++i) {
        const std::uint64_t v = rng.uniformInt(10);
        ASSERT_LT(v, 10u);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 10u);  // all values hit over 1000 draws
}

TEST(Rng, GaussianMomentsApproximate) {
    Rng rng(13);
    double sum = 0.0;
    double sq = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        const double g = rng.gaussian();
        sum += g;
        sq += g * g;
    }
    const double mean = sum / n;
    const double var = sq / n - mean * mean;
    EXPECT_NEAR(mean, 0.0, 0.03);
    EXPECT_NEAR(var, 1.0, 0.05);
}

TEST(Rng, GaussianScaledMoments) {
    Rng rng(17);
    double sum = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) sum += rng.gaussian(10.0, 2.0);
    EXPECT_NEAR(sum / n, 10.0, 0.1);
}

TEST(Rng, ExponentialMeanMatchesRate) {
    Rng rng(19);
    double sum = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) sum += rng.exponential(4.0);
    EXPECT_NEAR(sum / n, 0.25, 0.01);
}

TEST(Rng, BernoulliFrequency) {
    Rng rng(23);
    int hits = 0;
    for (int i = 0; i < 10000; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
    EXPECT_NEAR(hits / 10000.0, 0.3, 0.02);
}

TEST(Rng, ShufflePreservesElements) {
    Rng rng(29);
    std::vector<int> values{1, 2, 3, 4, 5, 6, 7, 8};
    auto shuffled = values;
    rng.shuffle(shuffled);
    auto sorted = shuffled;
    std::sort(sorted.begin(), sorted.end());
    EXPECT_EQ(sorted, values);
}

TEST(Rng, SampleWithoutReplacementIsDistinct) {
    Rng rng(31);
    const auto sample = rng.sampleWithoutReplacement(100, 20);
    ASSERT_EQ(sample.size(), 20u);
    std::set<std::size_t> unique(sample.begin(), sample.end());
    EXPECT_EQ(unique.size(), 20u);
    for (std::size_t v : sample) EXPECT_LT(v, 100u);
}

TEST(Rng, SampleClampsOversizedRequests) {
    Rng rng(37);
    EXPECT_EQ(rng.sampleWithoutReplacement(5, 50).size(), 5u);
    EXPECT_TRUE(rng.sampleWithoutReplacement(0, 3).empty());
}

TEST(Rng, ReseedRestartsSequence) {
    Rng rng(41);
    const auto first = rng.next();
    rng.next();
    rng.reseed(41);
    EXPECT_EQ(rng.next(), first);
}

}  // namespace
}  // namespace wm::common
