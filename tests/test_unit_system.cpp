#include "core/unit_system.h"

#include <gtest/gtest.h>

namespace wm::core {
namespace {

// --- Pattern parsing ---------------------------------------------------------

struct ParseCase {
    std::string text;
    bool ok;
    LevelAnchor anchor;
    int offset;
    std::string filter;
    std::string sensor;
};

class PatternParsing : public ::testing::TestWithParam<ParseCase> {};

TEST_P(PatternParsing, Cases) {
    const ParseCase& c = GetParam();
    const auto parsed = parsePattern(c.text);
    ASSERT_EQ(parsed.has_value(), c.ok) << c.text;
    if (!c.ok) return;
    EXPECT_EQ(parsed->anchor, c.anchor);
    EXPECT_EQ(parsed->offset, c.offset);
    EXPECT_EQ(parsed->filter, c.filter);
    EXPECT_EQ(parsed->sensor_name, c.sensor);
}

INSTANTIATE_TEST_SUITE_P(
    Cases, PatternParsing,
    ::testing::Values(
        // The paper's Section III-C pattern expressions.
        ParseCase{"<topdown+1>power", true, LevelAnchor::kTopDown, 1, "", "power"},
        ParseCase{"<bottomup, filter cpu>cpu-cycles", true, LevelAnchor::kBottomUp, 0,
                  "cpu", "cpu-cycles"},
        ParseCase{"<bottomup, filter cpu>cache-misses", true, LevelAnchor::kBottomUp, 0,
                  "cpu", "cache-misses"},
        ParseCase{"<bottomup-1>healthy", true, LevelAnchor::kBottomUp, -1, "", "healthy"},
        // Bare anchors and absolute topics.
        ParseCase{"<topdown>power", true, LevelAnchor::kTopDown, 0, "", "power"},
        ParseCase{"<bottomup>cpi", true, LevelAnchor::kBottomUp, 0, "", "cpi"},
        ParseCase{"/rack0/chassis0/power", true, LevelAnchor::kAbsolute, 0, "",
                  "/rack0/chassis0/power"},
        // Whitespace robustness.
        ParseCase{"  <bottomup-2> deep ", true, LevelAnchor::kBottomUp, -2, "", "deep"},
        // Malformed expressions.
        ParseCase{"", false, LevelAnchor::kAbsolute, 0, "", ""},
        ParseCase{"<topdown-1>power", false, LevelAnchor::kTopDown, 0, "", ""},
        ParseCase{"<bottomup+1>power", false, LevelAnchor::kBottomUp, 0, "", ""},
        ParseCase{"<sideways>power", false, LevelAnchor::kTopDown, 0, "", ""},
        ParseCase{"<topdown>", false, LevelAnchor::kTopDown, 0, "", ""},
        ParseCase{"<topdown power", false, LevelAnchor::kTopDown, 0, "", ""},
        ParseCase{"<topdown, unknown x>power", false, LevelAnchor::kTopDown, 0, "", ""},
        ParseCase{"<bottomup, filter >power", false, LevelAnchor::kBottomUp, 0, "", ""},
        ParseCase{"<bottomup, filter [>power", false, LevelAnchor::kBottomUp, 0, "", ""},
        ParseCase{"noslash", false, LevelAnchor::kAbsolute, 0, "", ""},
        ParseCase{"<bottomup>a/b", false, LevelAnchor::kBottomUp, 0, "", ""}));

TEST(PatternExpression, ToStringRoundTrips) {
    for (const std::string text :
         {"<topdown+1>power", "<bottomup, filter cpu>cpu-cycles", "<bottomup-1>healthy",
          "<bottomup>cpi", "/abs/topic"}) {
        const auto parsed = parsePattern(text);
        ASSERT_TRUE(parsed.has_value()) << text;
        const auto reparsed = parsePattern(parsed->toString());
        ASSERT_TRUE(reparsed.has_value()) << parsed->toString();
        EXPECT_EQ(reparsed->anchor, parsed->anchor);
        EXPECT_EQ(reparsed->offset, parsed->offset);
        EXPECT_EQ(reparsed->filter, parsed->filter);
        EXPECT_EQ(reparsed->sensor_name, parsed->sensor_name);
    }
}

TEST(PatternExpression, ResolveDepth) {
    PatternExpression expr;
    expr.anchor = LevelAnchor::kTopDown;
    expr.offset = 0;
    EXPECT_EQ(expr.resolveDepth(4), 1u);
    expr.offset = 2;
    EXPECT_EQ(expr.resolveDepth(4), 3u);
    expr.offset = 4;
    EXPECT_FALSE(expr.resolveDepth(4).has_value());  // past the deepest level
    expr.anchor = LevelAnchor::kBottomUp;
    expr.offset = 0;
    EXPECT_EQ(expr.resolveDepth(4), 4u);
    expr.offset = -3;
    EXPECT_EQ(expr.resolveDepth(4), 1u);
    expr.offset = -4;
    EXPECT_FALSE(expr.resolveDepth(4).has_value());  // the root is excluded
    expr.anchor = LevelAnchor::kAbsolute;
    EXPECT_FALSE(expr.resolveDepth(4).has_value());
}

// --- Unit resolution: the paper's Figure 2 example ---------------------------

/// Two racks, two chassis each, two servers each, two cpus each — plus the
/// exact sensors of Figure 2.
class UnitResolution : public ::testing::Test {
  protected:
    void SetUp() override {
        std::vector<std::string> topics;
        for (const std::string rack : {"r01", "r02"}) {
            topics.push_back("/" + rack + "/inlet-temp");
            for (const std::string chassis : {"c01", "c02"}) {
                const std::string cpath = "/" + rack + "/" + chassis;
                topics.push_back(cpath + "/power");
                for (const std::string server : {"s01", "s02"}) {
                    const std::string spath = cpath + "/" + server;
                    topics.push_back(spath + "/memfree");
                    for (const std::string cpu : {"cpu0", "cpu1"}) {
                        topics.push_back(spath + "/" + cpu + "/cpu-cycles");
                        topics.push_back(spath + "/" + cpu + "/cache-misses");
                    }
                }
            }
        }
        topics.push_back("/db-uptime");
        tree_.build(topics);
    }

    SensorTree tree_;
};

TEST_F(UnitResolution, PaperExampleUnitAtS02) {
    // input:  <topdown+1>power ; <bottomup, filter cpu>cpu-cycles ;
    //         <bottomup, filter cpu>cache-misses
    // output: <bottomup-1>healthy
    const auto unit_template = makeUnitTemplate(
        {"<topdown+1>power", "<bottomup, filter cpu>cpu-cycles",
         "<bottomup, filter cpu>cache-misses"},
        {"<bottomup-1>healthy"});
    ASSERT_TRUE(unit_template.has_value());
    const UnitResolver resolver(tree_);
    const auto unit = resolver.resolveUnitAt("/r01/c02/s02", *unit_template);
    ASSERT_TRUE(unit.has_value());
    EXPECT_EQ(unit->name, "/r01/c02/s02");
    // Power resolves one level below topdown: the chassis the unit belongs to.
    // The two cpus contribute cycles and cache misses each.
    const std::vector<std::string> expected_inputs{
        "/r01/c02/power",
        "/r01/c02/s02/cpu0/cpu-cycles",
        "/r01/c02/s02/cpu1/cpu-cycles",
        "/r01/c02/s02/cpu0/cache-misses",
        "/r01/c02/s02/cpu1/cache-misses",
    };
    // resolveExpression sorts within each expression; compare as sets.
    EXPECT_EQ(std::set<std::string>(unit->inputs.begin(), unit->inputs.end()),
              std::set<std::string>(expected_inputs.begin(), expected_inputs.end()));
    ASSERT_EQ(unit->outputs.size(), 1u);
    EXPECT_EQ(unit->outputs[0], "/r01/c02/s02/healthy");
}

TEST_F(UnitResolution, ResolveUnitsCreatesOnePerServer) {
    const auto unit_template = makeUnitTemplate(
        {"<topdown+1>power", "<bottomup, filter cpu>cpu-cycles"}, {"<bottomup-1>healthy"});
    ASSERT_TRUE(unit_template.has_value());
    const UnitResolver resolver(tree_);
    const auto units = resolver.resolveUnits(*unit_template);
    // 2 racks x 2 chassis x 2 servers = 8 units.
    ASSERT_EQ(units.size(), 8u);
    std::set<std::string> names;
    for (const auto& unit : units) names.insert(unit.name);
    EXPECT_EQ(names.size(), 8u);
    EXPECT_TRUE(names.count("/r02/c01/s01") == 1);
}

TEST_F(UnitResolution, FilterRestrictsDomain) {
    PatternExpression expr = *parsePattern("<bottomup-1, filter s01>memfree");
    const UnitResolver resolver(tree_);
    const auto domain = resolver.domain(expr, /*require_sensor=*/true);
    EXPECT_EQ(domain.size(), 4u);  // only the s01 servers
    for (const auto& node : domain) {
        EXPECT_NE(node.find("s01"), std::string::npos);
    }
}

TEST_F(UnitResolution, InputRequiresSensorPresence) {
    // "inlet-temp" exists only at rack level; requiring it at chassis level
    // yields an empty domain and therefore no unit.
    const auto unit_template =
        makeUnitTemplate({"<topdown+1>inlet-temp"}, {"<bottomup-1>out"});
    ASSERT_TRUE(unit_template.has_value());
    const UnitResolver resolver(tree_);
    EXPECT_TRUE(resolver.resolveUnits(*unit_template).empty());
}

TEST_F(UnitResolution, HierarchicallyUnrelatedNodesExcluded) {
    // From unit /r01/c01/s01, the cpus of other servers must not appear.
    const auto unit_template =
        makeUnitTemplate({"<bottomup>cpu-cycles"}, {"<bottomup-1>out"});
    ASSERT_TRUE(unit_template.has_value());
    const UnitResolver resolver(tree_);
    const auto unit = resolver.resolveUnitAt("/r01/c01/s01", *unit_template);
    ASSERT_TRUE(unit.has_value());
    ASSERT_EQ(unit->inputs.size(), 2u);
    for (const auto& topic : unit->inputs) {
        EXPECT_EQ(topic.find("/r01/c01/s01/"), 0u) << topic;
    }
}

TEST_F(UnitResolution, AscendingPathInputs) {
    // A rack-level sensor seen from a cpu-level unit (ascending resolution).
    const auto unit_template =
        makeUnitTemplate({"<topdown>inlet-temp"}, {"<bottomup>busy"});
    ASSERT_TRUE(unit_template.has_value());
    const UnitResolver resolver(tree_);
    const auto unit = resolver.resolveUnitAt("/r02/c01/s01/cpu0", *unit_template);
    ASSERT_TRUE(unit.has_value());
    ASSERT_EQ(unit->inputs.size(), 1u);
    EXPECT_EQ(unit->inputs[0], "/r02/inlet-temp");
}

TEST_F(UnitResolution, AbsoluteInputBypassesHierarchy) {
    const auto unit_template =
        makeUnitTemplate({"/db-uptime", "<bottomup>cpu-cycles"}, {"<bottomup>score"});
    ASSERT_TRUE(unit_template.has_value());
    const UnitResolver resolver(tree_);
    const auto unit = resolver.resolveUnitAt("/r01/c01/s01/cpu1", *unit_template);
    ASSERT_TRUE(unit.has_value());
    EXPECT_EQ(unit->inputs[0], "/db-uptime");
}

TEST_F(UnitResolution, MissingAbsoluteInputFailsUnit) {
    const auto unit_template =
        makeUnitTemplate({"/no/such/sensor"}, {"<bottomup>score"});
    ASSERT_TRUE(unit_template.has_value());
    const UnitResolver resolver(tree_);
    EXPECT_FALSE(resolver.resolveUnitAt("/r01/c01/s01/cpu1", *unit_template).has_value());
}

TEST_F(UnitResolution, UnknownUnitNodeFails) {
    const auto unit_template = makeUnitTemplate({}, {"<bottomup>out"});
    ASSERT_TRUE(unit_template.has_value());
    const UnitResolver resolver(tree_);
    EXPECT_FALSE(resolver.resolveUnitAt("/r09/c09/s09", *unit_template).has_value());
}

TEST_F(UnitResolution, NoOutputsMeansNoUnits) {
    UnitTemplate empty;
    const UnitResolver resolver(tree_);
    EXPECT_TRUE(resolver.resolveUnits(empty).empty());
}

TEST(MakeUnitTemplate, PropagatesParseFailures) {
    EXPECT_FALSE(makeUnitTemplate({"<bad"}, {"<bottomup>x"}).has_value());
    EXPECT_FALSE(makeUnitTemplate({"<bottomup>x"}, {"garbage"}).has_value());
    EXPECT_TRUE(makeUnitTemplate({}, {}).has_value());
}

}  // namespace
}  // namespace wm::core
