// Differential property tests for the topic-segment trie
// (mqtt/subscription_index.h): its matching semantics are pinned to the
// `topicMatches` oracle in mqtt/topic.h over randomized topic/filter
// corpora, through subscribe/unsubscribe churn, and under concurrent
// publishes via the Broker (sanitizer fodder for the lock protocol).

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "mqtt/broker.h"
#include "mqtt/subscription_index.h"
#include "mqtt/topic.h"

namespace wm::mqtt {
namespace {

SubscriptionPtr makeSubscription(SubscriptionId id, std::string filter) {
    auto subscription = std::make_shared<Subscription>();
    subscription->id = id;
    subscription->filter = std::move(filter);
    subscription->handler = std::make_shared<const MessageHandler>([](const Message&) {});
    return subscription;
}

/// Ids of the subscriptions the index matches for `topic`.
std::set<SubscriptionId> indexMatches(const SubscriptionIndex& index,
                                      const std::string& topic) {
    std::vector<SubscriptionPtr> out;
    index.match(topic, out);
    std::set<SubscriptionId> ids;
    for (const auto& subscription : out) ids.insert(subscription->id);
    return ids;
}

/// Ids the linear `topicMatches` oracle says should match.
std::set<SubscriptionId> oracleMatches(
    const std::vector<std::pair<SubscriptionId, std::string>>& filters,
    const std::string& topic) {
    std::set<SubscriptionId> ids;
    for (const auto& [id, filter] : filters) {
        if (topicMatches(filter, topic)) ids.insert(id);
    }
    return ids;
}

/// Random topic over a tiny segment alphabet so collisions (and hence
/// matches) are frequent. Always slash-rooted, like real sensor topics.
std::string randomTopic(common::Rng& rng) {
    static const char* kSegments[] = {"a", "b", "c", "rack0", "x"};
    const std::size_t depth = 1 + rng.uniformInt(4);
    std::string topic;
    for (std::size_t i = 0; i < depth; ++i) {
        topic += "/";
        topic += kSegments[rng.uniformInt(std::size(kSegments))];
    }
    return topic;
}

/// Random valid filter: a topic shape where each segment may be '+' and the
/// tail may be '#'. Occasionally the bare "#" or "+" filters.
std::string randomFilter(common::Rng& rng) {
    if (rng.uniformInt(20) == 0) return "#";
    if (rng.uniformInt(20) == 0) return "+";
    static const char* kSegments[] = {"a", "b", "c", "rack0", "x"};
    const std::size_t depth = 1 + rng.uniformInt(4);
    std::string filter;
    for (std::size_t i = 0; i < depth; ++i) {
        filter += "/";
        if (i + 1 == depth && rng.uniformInt(5) == 0) {
            filter += "#";
            return filter;
        }
        filter += rng.uniformInt(4) == 0 ? "+" : kSegments[rng.uniformInt(std::size(kSegments))];
    }
    return filter;
}

TEST(SubscriptionIndex, WildcardEdgeCases) {
    SubscriptionIndex index;
    index.insert(makeSubscription(1, "#"));
    index.insert(makeSubscription(2, "/a/#"));   // matches "/a" itself
    index.insert(makeSubscription(3, "/+/b"));
    index.insert(makeSubscription(4, "+"));      // one segment, no leading '/'
    index.insert(makeSubscription(5, "/+"));     // empty root + one segment
    index.insert(makeSubscription(6, "/a/b"));

    EXPECT_EQ(indexMatches(index, "/a"), (std::set<SubscriptionId>{1, 2, 5}));
    EXPECT_EQ(indexMatches(index, "/a/b"), (std::set<SubscriptionId>{1, 2, 3, 6}));
    EXPECT_EQ(indexMatches(index, "/a/b/c"), (std::set<SubscriptionId>{1, 2}));
    EXPECT_EQ(indexMatches(index, "/c/b"), (std::set<SubscriptionId>{1, 3}));
    EXPECT_EQ(indexMatches(index, "bare"), (std::set<SubscriptionId>{1, 4}));
    EXPECT_TRUE(index.matchesAny("/never/seen"));  // '#' catches everything
}

TEST(SubscriptionIndex, MatchesAnyWithoutCatchAll) {
    SubscriptionIndex index;
    index.insert(makeSubscription(1, "/a/+/c"));
    EXPECT_TRUE(index.matchesAny("/a/b/c"));
    EXPECT_FALSE(index.matchesAny("/a/b/d"));
    EXPECT_FALSE(index.matchesAny("/a/b"));
}

/// The core differential property: for randomized filter corpora and
/// topics, the trie returns exactly the oracle's match set.
TEST(SubscriptionIndex, DifferentialVsTopicMatchesOracle) {
    common::Rng rng(0xD1FFu);
    for (int round = 0; round < 20; ++round) {
        SubscriptionIndex index;
        std::vector<std::pair<SubscriptionId, std::string>> filters;
        const std::size_t n = 1 + rng.uniformInt(60);
        for (std::size_t i = 0; i < n; ++i) {
            const std::string filter = randomFilter(rng);
            ASSERT_TRUE(isValidFilter(filter)) << filter;
            filters.emplace_back(i + 1, filter);
            index.insert(makeSubscription(i + 1, filter));
        }
        EXPECT_EQ(index.size(), n);
        for (int probe = 0; probe < 200; ++probe) {
            const std::string topic = randomTopic(rng);
            const auto expected = oracleMatches(filters, topic);
            EXPECT_EQ(indexMatches(index, topic), expected)
                << "topic " << topic << " round " << round;
            EXPECT_EQ(index.matchesAny(topic), !expected.empty()) << topic;
        }
    }
}

/// Same property through erase churn: removing a random subset must remove
/// exactly those ids from every match set, and pruning must not detach
/// branches still carrying subscriptions.
TEST(SubscriptionIndex, DifferentialThroughEraseChurn) {
    common::Rng rng(0xC0FFEEu);
    for (int round = 0; round < 10; ++round) {
        SubscriptionIndex index;
        std::vector<std::pair<SubscriptionId, std::string>> filters;
        for (std::size_t i = 0; i < 80; ++i) {
            const std::string filter = randomFilter(rng);
            filters.emplace_back(i + 1, filter);
            index.insert(makeSubscription(i + 1, filter));
        }
        // Erase ~half, in random order.
        std::vector<std::size_t> order(filters.size());
        for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
        for (std::size_t i = order.size(); i > 1; --i) {
            std::swap(order[i - 1], order[rng.uniformInt(i)]);
        }
        for (std::size_t k = 0; k < order.size() / 2; ++k) {
            const auto& [id, filter] = filters[order[k]];
            const SubscriptionPtr erased = index.erase(id, filter);
            ASSERT_NE(erased, nullptr);
            EXPECT_EQ(erased->id, id);
            // A second erase of the same id is a no-op.
            EXPECT_EQ(index.erase(id, filter), nullptr);
        }
        std::vector<std::pair<SubscriptionId, std::string>> remaining;
        for (std::size_t k = order.size() / 2; k < order.size(); ++k) {
            remaining.push_back(filters[order[k]]);
        }
        EXPECT_EQ(index.size(), remaining.size());
        for (int probe = 0; probe < 100; ++probe) {
            const std::string topic = randomTopic(rng);
            EXPECT_EQ(indexMatches(index, topic), oracleMatches(remaining, topic))
                << "topic " << topic << " round " << round;
        }
        // Erase the rest: the trie must end empty but stay functional.
        for (const auto& [id, filter] : remaining) {
            ASSERT_NE(index.erase(id, filter), nullptr);
        }
        EXPECT_EQ(index.size(), 0u);
        EXPECT_FALSE(index.matchesAny("/a/b"));
        index.insert(makeSubscription(999, "/a/b"));
        EXPECT_TRUE(index.matchesAny("/a/b"));
    }
}

/// Duplicate filters: several subscriptions can share one filter; erase
/// removes only the targeted id.
TEST(SubscriptionIndex, SharedFilterErasesOnlyTargetId) {
    SubscriptionIndex index;
    index.insert(makeSubscription(1, "/a/+"));
    index.insert(makeSubscription(2, "/a/+"));
    index.insert(makeSubscription(3, "/a/+"));
    EXPECT_EQ(indexMatches(index, "/a/b"), (std::set<SubscriptionId>{1, 2, 3}));
    ASSERT_NE(index.erase(2, "/a/+"), nullptr);
    EXPECT_EQ(indexMatches(index, "/a/b"), (std::set<SubscriptionId>{1, 3}));
    EXPECT_EQ(index.size(), 2u);
}

/// Subscribe/unsubscribe churn racing publishes through the Broker: the
/// lock protocol must keep the trie consistent (run under TSan/ASan in CI).
/// Deliveries hold the handler via shared_ptr, so a handler may run just
/// after its subscription was removed — counts are therefore bounded, not
/// exact.
TEST(SubscriptionIndex, BrokerChurnUnderConcurrentPublish) {
    Broker broker;
    std::atomic<std::uint64_t> delivered{0};
    const SubscriptionId stable = broker.subscribe(
        "/stable/#", [&delivered](const Message&) { delivered.fetch_add(1); });
    ASSERT_NE(stable, 0u);

    constexpr int kPublishes = 2000;
    std::atomic<bool> stop{false};
    std::thread churn([&broker, &stop] {
        common::Rng rng(7);
        std::vector<SubscriptionId> live;
        while (!stop.load(std::memory_order_relaxed)) {
            if (live.size() < 20 || rng.uniformInt(2) == 0) {
                const SubscriptionId id = broker.subscribe(
                    "/churn/s" + std::to_string(rng.uniformInt(50)) + "/#",
                    [](const Message&) {});
                if (id != 0) live.push_back(id);
            } else {
                const std::size_t pick = rng.uniformInt(live.size());
                broker.unsubscribe(live[pick]);
                live.erase(live.begin() + static_cast<std::ptrdiff_t>(pick));
            }
        }
        for (const SubscriptionId id : live) broker.unsubscribe(id);
    });

    common::Rng rng(11);
    for (int i = 0; i < kPublishes; ++i) {
        broker.publish({"/stable/t", {{i + 1, 1.0}}});
        broker.publish({"/churn/s" + std::to_string(rng.uniformInt(50)) + "/v",
                        {{i + 1, 2.0}}});
    }
    stop.store(true);
    churn.join();

    // The stable subscription saw every one of its publishes.
    EXPECT_EQ(delivered.load(), static_cast<std::uint64_t>(kPublishes));
    EXPECT_EQ(broker.subscriptionCount(), 1u);
    broker.unsubscribe(stable);
    EXPECT_EQ(broker.subscriptionCount(), 0u);
}

}  // namespace
}  // namespace wm::mqtt
