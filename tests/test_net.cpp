// Wire-transport tests (src/net/, docs/RESILIENCE.md "Wire transport").
//
// Three layers, mirroring the decoder's purity guarantee:
//  * codec — encode*/decodePayload/frameEncode/frameDecode round-trips and
//    rejections, no sockets involved;
//  * fuzz — seeded random truncation, bit-flipping and garbage against
//    frameDecode, decodePayload and the underlying persist::Decoder: every
//    hostile input must come back as a clean reject, never a crash, an
//    over-read, or a count-driven huge allocation;
//  * sockets — Listener + Connection end-to-end over real loopback TCP:
//    delivery, cumulative acks, reconnect-with-replay exactly-once, the
//    dense frame_seq gap detection, and the net.* fault points.

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <functional>
#include <map>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/fault.h"
#include "common/mutex.h"
#include "common/rng.h"
#include "common/time_utils.h"
#include "mqtt/broker.h"
#include "mqtt/message.h"
#include "net/connection.h"
#include "net/frame.h"
#include "net/listener.h"
#include "net/socket.h"
#include "persist/serializer.h"

namespace wm::net {
namespace {

bool waitUntil(const std::function<bool()>& predicate, int budget_ms = 5000) {
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::milliseconds(budget_ms);
    while (std::chrono::steady_clock::now() < deadline) {
        if (predicate()) return true;
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    return predicate();
}

mqtt::Message makeMessage(const std::string& topic, std::uint64_t seq) {
    mqtt::Message message;
    message.topic = topic;
    message.sequence = seq;
    message.readings.push_back(
        {static_cast<common::TimestampNs>(seq) * 1000, double(seq) * 0.5});
    return message;
}

// --- Codec ----------------------------------------------------------------

TEST(NetFrameCodec, ConnectRoundTrip) {
    ConnectFrame in;
    in.client = "pusherd-7";
    in.epoch = 0xDEADBEEFCAFEULL;
    Frame out;
    ASSERT_TRUE(decodePayload(encodeConnect(in), &out));
    EXPECT_EQ(out.type, FrameType::kConnect);
    EXPECT_EQ(out.connect.version, kProtocolVersion);
    EXPECT_EQ(out.connect.client, "pusherd-7");
    EXPECT_EQ(out.connect.epoch, 0xDEADBEEFCAFEULL);
}

TEST(NetFrameCodec, ConnackRoundTrip) {
    ConnackFrame in;
    in.accepted = false;
    in.reason = "version mismatch";
    Frame out;
    ASSERT_TRUE(decodePayload(encodeConnack(in), &out));
    EXPECT_EQ(out.type, FrameType::kConnack);
    EXPECT_FALSE(out.connack.accepted);
    EXPECT_EQ(out.connack.reason, "version mismatch");
}

TEST(NetFrameCodec, PublishRoundTripCarriesFrameSeqRegistrationsAndBatch) {
    PublishFrame in;
    in.frame_seq = 41;
    in.registrations.push_back({1, "/r0/c0/s0/power"});
    in.registrations.push_back({2, "/r0/c0/s0/temp"});
    in.messages.push_back({1, 100, {{10, 1.5}, {20, 2.5}}});
    in.messages.push_back({2, 200, {{30, 3.5}}});
    Frame out;
    ASSERT_TRUE(decodePayload(encodePublish(in), &out));
    EXPECT_EQ(out.type, FrameType::kPublish);
    EXPECT_EQ(out.publish.frame_seq, 41u);
    ASSERT_EQ(out.publish.registrations.size(), 2u);
    EXPECT_EQ(out.publish.registrations[0].topic, "/r0/c0/s0/power");
    EXPECT_EQ(out.publish.registrations[1].id, 2u);
    ASSERT_EQ(out.publish.messages.size(), 2u);
    EXPECT_EQ(out.publish.messages[0].sequence, 100u);
    ASSERT_EQ(out.publish.messages[0].readings.size(), 2u);
    EXPECT_EQ(out.publish.messages[0].readings[1], (sensors::Reading{20, 2.5}));
    EXPECT_EQ(out.publish.messages[1].topic_id, 2u);
}

TEST(NetFrameCodec, PubackRoundTrip) {
    PubackFrame in;
    in.acks.push_back({1, 100});
    in.acks.push_back({7, 900});
    Frame out;
    ASSERT_TRUE(decodePayload(encodePuback(in), &out));
    EXPECT_EQ(out.type, FrameType::kPuback);
    ASSERT_EQ(out.puback.acks.size(), 2u);
    EXPECT_EQ(out.puback.acks[1].topic_id, 7u);
    EXPECT_EQ(out.puback.acks[1].sequence, 900u);
}

TEST(NetFrameCodec, PingAndDisconnectRoundTrip) {
    Frame out;
    ASSERT_TRUE(decodePayload(encodePingreq(), &out));
    EXPECT_EQ(out.type, FrameType::kPingreq);
    ASSERT_TRUE(decodePayload(encodePingresp(), &out));
    EXPECT_EQ(out.type, FrameType::kPingresp);
    ASSERT_TRUE(decodePayload(encodeDisconnect({"shutdown"}), &out));
    EXPECT_EQ(out.type, FrameType::kDisconnect);
    EXPECT_EQ(out.disconnect.reason, "shutdown");
}

TEST(NetFrameCodec, RejectsEmptyUnknownTypeAndTrailingGarbage) {
    Frame out;
    EXPECT_FALSE(decodePayload("", &out));
    EXPECT_FALSE(decodePayload(std::string(1, '\x63'), &out));
    std::string trailing = encodePingreq();
    trailing += "junk";
    EXPECT_FALSE(decodePayload(trailing, &out));
}

TEST(NetFrameCodec, EveryTruncationOfAPublishRejectsCleanly) {
    PublishFrame in;
    in.frame_seq = 1;
    in.registrations.push_back({1, "/a/b"});
    in.messages.push_back({1, 5, {{10, 1.0}}});
    const std::string payload = encodePublish(in);
    for (std::size_t len = 0; len < payload.size(); ++len) {
        Frame out;
        EXPECT_FALSE(decodePayload(std::string_view(payload).substr(0, len), &out))
            << "truncation to " << len << " bytes decoded";
    }
}

TEST(NetFrameCodec, HostileCountsCannotDriveHugeAllocations) {
    // A PUBLISH claiming 2^32-1 registrations in a 30-byte payload: the
    // plausibility guard must reject it before any reserve() happens.
    persist::Encoder enc;
    enc.putU8(static_cast<std::uint8_t>(FrameType::kPublish));
    enc.putU64(1);           // frame_seq
    enc.putU32(0xFFFFFFFF);  // registration count
    Frame out;
    EXPECT_FALSE(decodePayload(enc.data(), &out));

    persist::Encoder enc2;
    enc2.putU8(static_cast<std::uint8_t>(FrameType::kPublish));
    enc2.putU64(1);
    enc2.putU32(0);           // no registrations
    enc2.putU32(0xFFFFFFFF);  // message count
    EXPECT_FALSE(decodePayload(enc2.data(), &out));
}

// --- Outer framing --------------------------------------------------------

TEST(NetFraming, RoundTrip) {
    const std::string framed = frameEncode("payload-bytes");
    std::string_view payload;
    std::size_t consumed = 0;
    ASSERT_EQ(frameDecode(framed, 1 << 20, &payload, &consumed),
              FrameStatus::kOk);
    EXPECT_EQ(payload, "payload-bytes");
    EXPECT_EQ(consumed, framed.size());
}

TEST(NetFraming, EveryPrefixNeedsMore) {
    const std::string framed = frameEncode("abcdef");
    for (std::size_t len = 0; len < framed.size(); ++len) {
        std::string_view payload;
        std::size_t consumed = 0;
        EXPECT_EQ(frameDecode(std::string_view(framed).substr(0, len), 1 << 20,
                              &payload, &consumed),
                  FrameStatus::kNeedMore)
            << "prefix of " << len << " bytes";
    }
}

TEST(NetFraming, EverySingleBitFlipIsRejected) {
    const std::string framed = frameEncode("sensor payload");
    for (std::size_t byte = 0; byte < framed.size(); ++byte) {
        for (int bit = 0; bit < 8; ++bit) {
            std::string mutated = framed;
            mutated[byte] = static_cast<char>(mutated[byte] ^ (1 << bit));
            std::string_view payload;
            std::size_t consumed = 0;
            const FrameStatus status =
                frameDecode(mutated, 1 << 20, &payload, &consumed);
            // A flipped length byte may yield kNeedMore/kOversized/
            // kMalformed; any flip reaching CRC comparison must mismatch.
            EXPECT_NE(status, FrameStatus::kOk)
                << "bit " << bit << " of byte " << byte << " went unnoticed";
        }
    }
}

TEST(NetFraming, OversizedAndZeroLengthAreRejected) {
    const std::string framed = frameEncode(std::string(256, 'x'));
    std::string_view payload;
    std::size_t consumed = 0;
    EXPECT_EQ(frameDecode(framed, 64, &payload, &consumed),
              FrameStatus::kOversized);
    const std::string zero(kFrameHeaderBytes, '\0');
    EXPECT_EQ(frameDecode(zero, 64, &payload, &consumed),
              FrameStatus::kMalformed);
}

// --- Fuzz -----------------------------------------------------------------

TEST(NetFuzz, RandomBuffersNeverCrashFrameDecode) {
    common::Rng rng(0xF0221);
    for (int i = 0; i < 20000; ++i) {
        const std::size_t len = rng.uniformInt(96);
        std::string buffer(len, '\0');
        for (auto& c : buffer) c = static_cast<char>(rng.next() & 0xFF);
        std::string_view payload;
        std::size_t consumed = 0;
        const FrameStatus status = frameDecode(buffer, 1 << 12, &payload, &consumed);
        if (status == FrameStatus::kOk) {
            // Never an over-read: the extracted view lies inside the buffer.
            EXPECT_LE(consumed, buffer.size());
            EXPECT_LE(payload.size() + kFrameHeaderBytes, buffer.size());
        }
    }
}

TEST(NetFuzz, MutatedPublishPayloadsRejectOrDecodeSanely) {
    PublishFrame in;
    in.frame_seq = 3;
    in.registrations.push_back({1, "/fuzz/topic"});
    in.messages.push_back({1, 42, {{100, 1.0}, {200, 2.0}}});
    const std::string valid = encodePublish(in);
    common::Rng rng(0xF0222);
    for (int i = 0; i < 20000; ++i) {
        std::string mutated = valid;
        const int mutations = 1 + static_cast<int>(rng.uniformInt(4));
        for (int m = 0; m < mutations; ++m) {
            const std::size_t pos = rng.uniformInt(mutated.size());
            mutated[pos] = static_cast<char>(rng.next() & 0xFF);
        }
        Frame out;
        if (decodePayload(mutated, &out) && out.type == FrameType::kPublish) {
            // If a mutation survives decoding, the element counts must still
            // be plausible for the byte budget (no hostile-count blowup).
            EXPECT_LE(out.publish.messages.size(), mutated.size());
            EXPECT_LE(out.publish.registrations.size(), mutated.size());
        }
    }
}

TEST(NetFuzz, PersistDecoderLatchesFailureOnRandomOperations) {
    common::Rng rng(0xF0223);
    for (int i = 0; i < 5000; ++i) {
        const std::size_t len = rng.uniformInt(48);
        std::string buffer(len, '\0');
        for (auto& c : buffer) c = static_cast<char>(rng.next() & 0xFF);
        persist::Decoder dec(buffer);
        bool failed = false;
        for (int op = 0; op < 12; ++op) {
            bool ok = true;
            switch (rng.uniformInt(7)) {
                case 0: { std::uint8_t v; ok = dec.getU8(&v); break; }
                case 1: { std::uint32_t v; ok = dec.getU32(&v); break; }
                case 2: { std::uint64_t v; ok = dec.getU64(&v); break; }
                case 3: { std::int64_t v; ok = dec.getI64(&v); break; }
                case 4: { double v; ok = dec.getF64(&v); break; }
                case 5: { bool v; ok = dec.getBool(&v); break; }
                default: { std::string v; ok = dec.getString(&v); break; }
            }
            if (!ok) failed = true;
            // Once any read fails, ok() must stay latched false forever.
            if (failed) {
                EXPECT_FALSE(dec.ok());
            }
        }
    }
}

// --- Sockets: delivery, acks, replay, faults ------------------------------

/// Counts accepted messages behind a cumulative per-topic watermark — the
/// same dedup rule CollectAgent::onMessage applies — so the socket tests
/// assert exactly-once end to end, replays included.
class DedupRecorder {
  public:
    explicit DedupRecorder(mqtt::Broker& broker) {
        broker.subscribe("#", [this](const mqtt::Message& message) {
            common::MutexLock lock(mutex_);
            std::uint64_t& last = watermark_[message.topic];
            if (message.sequence != 0 && message.sequence <= last) {
                ++dedup_drops_;
                return;
            }
            last = message.sequence;
            accepted_[message.topic].push_back(message.sequence);
        });
    }

    std::size_t acceptedCount() const {
        common::MutexLock lock(mutex_);
        std::size_t n = 0;
        for (const auto& [topic, seqs] : accepted_) n += seqs.size();
        return n;
    }

    std::vector<std::uint64_t> accepted(const std::string& topic) const {
        common::MutexLock lock(mutex_);
        const auto it = accepted_.find(topic);
        return it == accepted_.end() ? std::vector<std::uint64_t>{} : it->second;
    }

    std::uint64_t dedupDrops() const {
        common::MutexLock lock(mutex_);
        return dedup_drops_;
    }

  private:
    mutable common::Mutex mutex_{"test.DedupRecorder", common::LockRank::kLogger};
    std::map<std::string, std::vector<std::uint64_t>> accepted_ WM_GUARDED_BY(mutex_);
    std::map<std::string, std::uint64_t> watermark_ WM_GUARDED_BY(mutex_);
    std::uint64_t dedup_drops_ WM_GUARDED_BY(mutex_) = 0;
};

ConnectionConfig fastClient(std::uint16_t port) {
    ConnectionConfig config;
    config.port = port;
    config.client_name = "test-client";
    config.heartbeat_ns = 100 * common::kNsPerMs;
    config.reconnect = {0, 20 * common::kNsPerMs, 2.0, 200 * common::kNsPerMs, 0.1};
    config.connect_timeout_ms = 500;
    return config;
}

TEST(NetSocket, PublishesFlowThroughRealSocketsAndGetAcked) {
    mqtt::Broker broker;
    DedupRecorder recorder(broker);
    ListenerConfig server_config;
    server_config.heartbeat_ns = 100 * common::kNsPerMs;
    Listener listener(server_config, broker);
    ASSERT_TRUE(listener.start());

    Connection connection(fastClient(listener.port()), nullptr);
    connection.start();
    ASSERT_TRUE(waitUntil([&] { return connection.connected(); }));

    for (std::uint64_t seq = 1; seq <= 50; ++seq) {
        ASSERT_TRUE(waitUntil([&] {
            return connection.publish(makeMessage("/t/a", seq)) &&
                   connection.publish(makeMessage("/t/b", seq + 1000));
        }));
    }
    ASSERT_TRUE(waitUntil([&] { return recorder.acceptedCount() == 100; }));

    // In-order per topic, no duplicates, and cumulative acks catch up.
    std::vector<std::uint64_t> expect_a(50);
    for (std::uint64_t i = 0; i < 50; ++i) expect_a[i] = i + 1;
    EXPECT_EQ(recorder.accepted("/t/a"), expect_a);
    ASSERT_TRUE(waitUntil([&] {
        const auto acks = connection.ackedWatermarks();
        const auto a = acks.find("/t/a");
        const auto b = acks.find("/t/b");
        return a != acks.end() && a->second == 50 && b != acks.end() &&
               b->second == 1050;
    }));
    EXPECT_EQ(connection.counters().publishes_sent, 100u);
    EXPECT_EQ(connection.counters().messages_acked, 100u);
    const auto wire = listener.counters();
    EXPECT_EQ(wire.publishes_forwarded, 100u);
    EXPECT_EQ(wire.crc_rejects, 0u);
    EXPECT_EQ(wire.frame_gaps, 0u);
    EXPECT_GE(wire.frames_in, 100u);

    connection.stop();
    listener.stop();
}

TEST(NetSocket, ReconnectReplayDeliversExactlyOnce) {
    mqtt::Broker broker;
    DedupRecorder recorder(broker);
    ListenerConfig server_config;
    server_config.heartbeat_ns = 100 * common::kNsPerMs;
    auto first = std::make_unique<Listener>(server_config, broker);
    ASSERT_TRUE(first->start());
    const std::uint16_t port = first->port();

    // The hook mimics Pusher::replayRecent: the whole ring, oldest first,
    // on every (re)connect. Seqs 1..5 make up the ring.
    std::vector<mqtt::Message> ring;
    for (std::uint64_t seq = 1; seq <= 5; ++seq) {
        ring.push_back(makeMessage("/t/replay", seq));
    }
    Connection* conn_ptr = nullptr;
    Connection replaying(fastClient(port), [&ring, &conn_ptr] {
        for (const auto& message : ring) {
            if (!conn_ptr->publish(message)) break;
        }
    });
    conn_ptr = &replaying;
    replaying.start();
    ASSERT_TRUE(waitUntil([&] { return replaying.connected(); }));
    ASSERT_TRUE(waitUntil([&] { return recorder.acceptedCount() == 5; }));

    // Server dies; a new listener takes over the same port. The client must
    // reconnect on its own and re-run the replay hook — the recorder's
    // watermark proves the replays dedup to zero new deliveries.
    first->stop();
    first.reset();
    Listener second({.port = port, .heartbeat_ns = 100 * common::kNsPerMs},
                    broker);
    ASSERT_TRUE(waitUntil([&] { return second.start(); }, 2000));
    ASSERT_TRUE(waitUntil([&] {
        return replaying.counters().reconnects >= 1 && replaying.connected();
    }));
    ASSERT_TRUE(waitUntil([&] { return replaying.counters().connects >= 2; }));

    // New traffic after the replay keeps flowing.
    ASSERT_TRUE(waitUntil(
        [&] { return replaying.publish(makeMessage("/t/replay", 6)); }));
    ASSERT_TRUE(waitUntil([&] { return recorder.acceptedCount() == 6; }));
    EXPECT_EQ(recorder.accepted("/t/replay"),
              (std::vector<std::uint64_t>{1, 2, 3, 4, 5, 6}));
    EXPECT_GE(recorder.dedupDrops(), 5u) << "replays should have been deduped";

    replaying.stop();
    second.stop();
}

TEST(NetSocket, FrameSeqGapDropsConnectionWithoutForwarding) {
    mqtt::Broker broker;
    DedupRecorder recorder(broker);
    Listener listener({.heartbeat_ns = 200 * common::kNsPerMs}, broker);
    ASSERT_TRUE(listener.start());

    // A raw hand-rolled client so the dense frame counter can be violated
    // deliberately (net::Connection never does).
    const int fd = tcpConnect("127.0.0.1", listener.port(), 1000);
    ASSERT_GE(fd, 0);
    ConnectFrame hello;
    hello.client = "gap-client";
    ASSERT_TRUE(sendAll(fd, frameEncode(encodeConnect(hello)), 1000));
    std::string buffer;
    ASSERT_TRUE(waitUntil([&] {
        recvSome(fd, &buffer, 50);
        std::string_view payload;
        std::size_t consumed = 0;
        return frameDecode(buffer, 1 << 20, &payload, &consumed) ==
               FrameStatus::kOk;
    }));

    PublishFrame ok_frame;
    ok_frame.frame_seq = 1;
    ok_frame.registrations.push_back({1, "/gap/topic"});
    ok_frame.messages.push_back({1, 10, {{100, 1.0}}});
    ASSERT_TRUE(sendAll(fd, frameEncode(encodePublish(ok_frame)), 1000));
    ASSERT_TRUE(waitUntil([&] { return recorder.acceptedCount() == 1; }));

    // frame_seq jumps 2 -> 3: a frame was lost on a live connection. The
    // server must drop the connection WITHOUT acking or forwarding, so the
    // client's replay-on-reconnect can redeliver the lost reading.
    PublishFrame gap_frame;
    gap_frame.frame_seq = 3;
    gap_frame.messages.push_back({1, 11, {{200, 2.0}}});
    ASSERT_TRUE(sendAll(fd, frameEncode(encodePublish(gap_frame)), 1000));
    ASSERT_TRUE(waitUntil([&] { return listener.counters().frame_gaps == 1; }));
    ASSERT_TRUE(waitUntil([&] {
        std::string drain;
        return recvSome(fd, &drain, 50) < 0;  // server closed the socket
    }));
    EXPECT_EQ(recorder.acceptedCount(), 1u) << "the gapped frame leaked through";
    closeSocket(fd);
    listener.stop();
}

TEST(NetSocket, CorruptFrameCountsCrcRejectAndDropsConnection) {
    mqtt::Broker broker;
    Listener listener({.heartbeat_ns = 200 * common::kNsPerMs}, broker);
    ASSERT_TRUE(listener.start());
    const int fd = tcpConnect("127.0.0.1", listener.port(), 1000);
    ASSERT_GE(fd, 0);

    std::string framed = frameEncode(encodeConnect({}));
    framed.back() = static_cast<char>(framed.back() ^ 0x01);
    ASSERT_TRUE(sendAll(fd, framed, 1000));
    ASSERT_TRUE(waitUntil([&] { return listener.counters().crc_rejects == 1; }));
    ASSERT_TRUE(waitUntil([&] {
        std::string drain;
        return recvSome(fd, &drain, 50) < 0;
    }));
    closeSocket(fd);
    listener.stop();
}

TEST(NetSocket, FrameReadFaultForcesReconnectAndReplayKeepsExactlyOnce) {
    common::fault::FaultInjector injector(0xBADF00D);
    // The 3rd received frame is corrupted server-side (a flaky NIC): the
    // server must count a CRC reject and cut the connection; the client
    // must reconnect and its replay hook redeliver — with zero loss and
    // zero duplicates surviving the dedup watermark.
    ASSERT_TRUE(injector.armFromText("net.frame_read", "fail every=3 limit=1"));
    common::fault::ScopedInjector scoped(injector);

    mqtt::Broker broker;
    DedupRecorder recorder(broker);
    Listener listener({.heartbeat_ns = 100 * common::kNsPerMs}, broker);
    ASSERT_TRUE(listener.start());

    std::vector<mqtt::Message> ring;
    Connection* conn_ptr = nullptr;
    // Held across publish() like the Pusher's buffer lock, so it must rank
    // below kNetConnection in the global lock order.
    common::Mutex ring_mutex{"test.ring", common::LockRank::kPusherBuffer};
    Connection connection(fastClient(listener.port()), [&] {
        common::MutexLock lock(ring_mutex);
        for (const auto& message : ring) {
            if (!conn_ptr->publish(message)) break;
        }
    });
    conn_ptr = &connection;
    connection.start();
    ASSERT_TRUE(waitUntil([&] { return connection.connected(); }));

    for (std::uint64_t seq = 1; seq <= 20; ++seq) {
        const auto message = makeMessage("/flaky/topic", seq);
        {
            common::MutexLock lock(ring_mutex);
            ring.push_back(message);
        }
        ASSERT_TRUE(waitUntil([&] { return connection.publish(message); }));
    }

    ASSERT_TRUE(waitUntil([&] { return listener.counters().crc_rejects >= 1; }));
    ASSERT_TRUE(waitUntil([&] { return connection.counters().reconnects >= 1; }));
    ASSERT_TRUE(waitUntil([&] { return recorder.acceptedCount() == 20; }));
    std::vector<std::uint64_t> expect(20);
    for (std::uint64_t i = 0; i < 20; ++i) expect[i] = i + 1;
    EXPECT_EQ(recorder.accepted("/flaky/topic"), expect);

    connection.stop();
    listener.stop();
}

TEST(NetSocket, PartitionBlackholeTripsHeartbeatAndRecovers) {
    common::fault::FaultInjector injector(0x5EA);
    // While armed, net.partition blackholes the wire in both directions
    // (frames swallowed, nothing read): only the heartbeat machinery can
    // notice. limit bounds the outage so the test can assert recovery.
    ASSERT_TRUE(injector.armFromText("net.partition", "drop limit=60"));
    common::fault::ScopedInjector scoped(injector);

    mqtt::Broker broker;
    DedupRecorder recorder(broker);
    Listener listener({.heartbeat_ns = 80 * common::kNsPerMs}, broker);
    ASSERT_TRUE(listener.start());
    ConnectionConfig client = fastClient(listener.port());
    client.heartbeat_ns = 80 * common::kNsPerMs;
    Connection connection(client, nullptr);
    connection.start();

    // Publishes during the partition are refused or swallowed; afterwards
    // the dead-peer detection must have fired on at least one side and the
    // client must have re-established a working wire.
    ASSERT_TRUE(waitUntil([&] {
        connection.publish(makeMessage("/part/topic", 1));
        return connection.counters().partition_drops > 0 ||
               listener.counters().heartbeat_timeouts > 0;
    }));
    ASSERT_TRUE(waitUntil(
        [&] {
            return connection.connected() &&
                   connection.publish(makeMessage("/part/topic", 2)) &&
                   recorder.acceptedCount() >= 1;
        },
        10000));

    const auto counters = connection.counters();
    EXPECT_GT(counters.partition_drops + counters.heartbeat_timeouts +
                  listener.counters().heartbeat_timeouts,
              0u);
    connection.stop();
    listener.stop();
}

}  // namespace
}  // namespace wm::net
