// Tests for the machine-learning substrate: k-means, CART regression trees,
// random forests and the variational Bayesian GMM.

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <set>

#include "analytics/bayesian_gmm.h"
#include "analytics/decision_tree.h"
#include "analytics/kmeans.h"
#include "analytics/random_forest.h"
#include "common/rng.h"

namespace wm::analytics {
namespace {

// --- k-means ----------------------------------------------------------------

std::vector<Vector> threeBlobs(common::Rng& rng, std::size_t per_blob = 50) {
    const std::vector<Vector> centers{{0.0, 0.0}, {10.0, 0.0}, {0.0, 10.0}};
    std::vector<Vector> points;
    for (const auto& center : centers) {
        for (std::size_t i = 0; i < per_blob; ++i) {
            points.push_back(
                {center[0] + rng.gaussian(0.0, 0.5), center[1] + rng.gaussian(0.0, 0.5)});
        }
    }
    return points;
}

TEST(KMeans, RecoversWellSeparatedBlobs) {
    common::Rng rng(3);
    const auto points = threeBlobs(rng);
    KMeansParams params;
    params.k = 3;
    const KMeansResult result = kmeans(points, params);
    ASSERT_EQ(result.centroids.size(), 3u);
    EXPECT_TRUE(result.converged);
    // Each blob's points share one label, and the three labels differ.
    std::set<std::size_t> blob_labels;
    for (std::size_t blob = 0; blob < 3; ++blob) {
        const std::size_t label = result.labels[blob * 50];
        for (std::size_t i = 0; i < 50; ++i) {
            ASSERT_EQ(result.labels[blob * 50 + i], label) << "blob " << blob;
        }
        blob_labels.insert(label);
    }
    EXPECT_EQ(blob_labels.size(), 3u);
}

TEST(KMeans, EmptyAndDegenerateInputs) {
    EXPECT_TRUE(kmeans({}).centroids.empty());
    KMeansParams params;
    params.k = 5;
    const auto result = kmeans({{1.0}, {2.0}}, params);  // fewer points than k
    EXPECT_LE(result.centroids.size(), 2u);
    ASSERT_EQ(result.labels.size(), 2u);
}

TEST(KMeans, IdenticalPointsCollapse) {
    const std::vector<Vector> same(10, Vector{3.0, 3.0});
    KMeansParams params;
    params.k = 3;
    const auto result = kmeans(same, params);
    ASSERT_FALSE(result.centroids.empty());
    EXPECT_NEAR(result.inertia, 0.0, 1e-12);
}

TEST(KMeans, DeterministicForSeed) {
    common::Rng rng(4);
    const auto points = threeBlobs(rng);
    KMeansParams params;
    params.k = 3;
    params.seed = 77;
    const auto a = kmeans(points, params);
    const auto b = kmeans(points, params);
    EXPECT_EQ(a.labels, b.labels);
    EXPECT_DOUBLE_EQ(a.inertia, b.inertia);
}

// --- decision tree ----------------------------------------------------------

TEST(DecisionTree, FitsStepFunction) {
    std::vector<std::vector<double>> x;
    std::vector<double> y;
    for (int i = 0; i < 200; ++i) {
        const double v = i / 200.0;
        x.push_back({v});
        y.push_back(v < 0.5 ? 1.0 : 5.0);
    }
    std::vector<std::size_t> rows(x.size());
    std::iota(rows.begin(), rows.end(), 0u);
    DecisionTree tree;
    common::Rng rng(1);
    tree.fit(x, y, rows, TreeParams{}, rng);
    ASSERT_TRUE(tree.trained());
    EXPECT_NEAR(tree.predict({0.2}), 1.0, 1e-9);
    EXPECT_NEAR(tree.predict({0.8}), 5.0, 1e-9);
}

TEST(DecisionTree, ConstantResponseIsSingleLeaf) {
    std::vector<std::vector<double>> x{{1.0}, {2.0}, {3.0}, {4.0}};
    std::vector<double> y{7.0, 7.0, 7.0, 7.0};
    std::vector<std::size_t> rows{0, 1, 2, 3};
    DecisionTree tree;
    common::Rng rng(1);
    tree.fit(x, y, rows, TreeParams{}, rng);
    EXPECT_EQ(tree.nodeCount(), 1u);
    EXPECT_DOUBLE_EQ(tree.predict({99.0}), 7.0);
}

TEST(DecisionTree, RespectsMaxDepth) {
    common::Rng data_rng(2);
    std::vector<std::vector<double>> x;
    std::vector<double> y;
    for (int i = 0; i < 500; ++i) {
        const double v = data_rng.uniform();
        x.push_back({v});
        y.push_back(std::sin(20.0 * v));
    }
    std::vector<std::size_t> rows(x.size());
    std::iota(rows.begin(), rows.end(), 0u);
    TreeParams params;
    params.max_depth = 3;
    DecisionTree tree;
    common::Rng rng(1);
    tree.fit(x, y, rows, params, rng);
    EXPECT_LE(tree.depth(), 3u);
}

TEST(DecisionTree, EmptyFitIsUntrained) {
    DecisionTree tree;
    common::Rng rng(1);
    tree.fit({}, {}, {}, TreeParams{}, rng);
    EXPECT_FALSE(tree.trained());
    EXPECT_DOUBLE_EQ(tree.predict({1.0}), 0.0);
}

TEST(DecisionTree, MultiFeatureSplitSelection) {
    // y depends only on feature 1; the tree should ignore feature 0.
    common::Rng data_rng(3);
    std::vector<std::vector<double>> x;
    std::vector<double> y;
    for (int i = 0; i < 300; ++i) {
        const double noise = data_rng.uniform();
        const double signal = data_rng.uniform();
        x.push_back({noise, signal});
        y.push_back(signal > 0.5 ? 10.0 : -10.0);
    }
    std::vector<std::size_t> rows(x.size());
    std::iota(rows.begin(), rows.end(), 0u);
    DecisionTree tree;
    common::Rng rng(1);
    tree.fit(x, y, rows, TreeParams{}, rng);
    EXPECT_NEAR(tree.predict({0.1, 0.9}), 10.0, 0.5);
    EXPECT_NEAR(tree.predict({0.9, 0.1}), -10.0, 0.5);
}

// --- random forest ----------------------------------------------------------

TEST(RandomForest, LearnsSmoothFunction) {
    common::Rng data_rng(5);
    std::vector<std::vector<double>> x;
    std::vector<double> y;
    for (int i = 0; i < 2000; ++i) {
        const double a = data_rng.uniform();
        const double b = data_rng.uniform();
        x.push_back({a, b});
        y.push_back(3.0 * a + std::sin(6.0 * b));
    }
    RandomForest forest;
    ForestParams params;
    params.num_trees = 24;
    ASSERT_TRUE(forest.fit(x, y, params));
    EXPECT_EQ(forest.treeCount(), 24u);
    // In-sample RMSE should be small; OOB reported and finite.
    double sse = 0.0;
    for (std::size_t i = 0; i < x.size(); ++i) {
        const double err = forest.predict(x[i]) - y[i];
        sse += err * err;
    }
    EXPECT_LT(std::sqrt(sse / static_cast<double>(x.size())), 0.25);
    EXPECT_TRUE(std::isfinite(forest.oobRmse()));
    EXPECT_LT(forest.oobRmse(), 0.5);
}

TEST(RandomForest, RejectsBadInput) {
    RandomForest forest;
    EXPECT_FALSE(forest.fit({}, {}));
    EXPECT_FALSE(forest.fit({{1.0}}, {1.0, 2.0}));          // size mismatch
    EXPECT_FALSE(forest.fit({{1.0}, {1.0, 2.0}}, {1.0, 2.0}));  // ragged
    EXPECT_FALSE(forest.trained());
    EXPECT_DOUBLE_EQ(forest.predict({1.0}), 0.0);
}

TEST(RandomForest, DeterministicForSeed) {
    common::Rng data_rng(6);
    std::vector<std::vector<double>> x;
    std::vector<double> y;
    for (int i = 0; i < 300; ++i) {
        const double v = data_rng.uniform();
        x.push_back({v});
        y.push_back(v * v);
    }
    RandomForest a;
    RandomForest b;
    ForestParams params;
    params.seed = 123;
    a.fit(x, y, params);
    b.fit(x, y, params);
    for (double probe = 0.05; probe < 1.0; probe += 0.1) {
        EXPECT_DOUBLE_EQ(a.predict({probe}), b.predict({probe}));
    }
}

TEST(RandomForest, PredictBatchMatchesScalar) {
    std::vector<std::vector<double>> x{{0.1}, {0.5}, {0.9}};
    std::vector<double> y{1.0, 2.0, 3.0};
    RandomForest forest;
    ForestParams params;
    params.num_trees = 4;
    forest.fit(x, y, params);
    const auto batch = forest.predictBatch(x);
    ASSERT_EQ(batch.size(), 3u);
    for (std::size_t i = 0; i < 3; ++i) {
        EXPECT_DOUBLE_EQ(batch[i], forest.predict(x[i]));
    }
}

// --- Bayesian GMM -----------------------------------------------------------

TEST(Digamma, KnownValues) {
    // digamma(1) = -gamma (Euler-Mascheroni).
    EXPECT_NEAR(digamma(1.0), -0.5772156649015329, 1e-10);
    // Recurrence: digamma(x+1) = digamma(x) + 1/x.
    EXPECT_NEAR(digamma(4.5), digamma(3.5) + 1.0 / 3.5, 1e-10);
    // Large-argument asymptotics: digamma(x) ~ ln(x) - 1/(2x).
    EXPECT_NEAR(digamma(1000.0), std::log(1000.0) - 0.0005, 1e-6);
}

TEST(BayesianGmm, RecoversClusterCountAutomatically) {
    common::Rng rng(7);
    const auto points = threeBlobs(rng, 80);
    BayesianGmm model;
    BgmmParams params;
    params.max_components = 10;  // deliberately over-provisioned
    params.seed = 7;
    ASSERT_TRUE(model.fit(points, params));
    // The Dirichlet prior should prune to ~3 effective components.
    EXPECT_GE(model.effectiveComponents(), 3u);
    EXPECT_LE(model.effectiveComponents(), 4u);
    // Weights sum to ~1 over the retained components.
    double total = 0.0;
    for (const auto& comp : model.components()) total += comp.weight;
    EXPECT_NEAR(total, 1.0, 0.05);
}

TEST(BayesianGmm, LabelsSeparateBlobs) {
    common::Rng rng(8);
    const auto points = threeBlobs(rng, 60);
    BayesianGmm model;
    BgmmParams params;
    params.seed = 8;
    ASSERT_TRUE(model.fit(points, params));
    const std::size_t l0 = model.predictLabel({0.0, 0.0});
    const std::size_t l1 = model.predictLabel({10.0, 0.0});
    const std::size_t l2 = model.predictLabel({0.0, 10.0});
    EXPECT_NE(l0, l1);
    EXPECT_NE(l0, l2);
    EXPECT_NE(l1, l2);
}

TEST(BayesianGmm, FlagsFarOutliers) {
    common::Rng rng(9);
    const auto points = threeBlobs(rng, 60);
    BayesianGmm model;
    BgmmParams params;
    params.seed = 9;
    ASSERT_TRUE(model.fit(points, params));
    EXPECT_TRUE(model.isOutlier({100.0, 100.0}, 1e-3));
    EXPECT_FALSE(model.isOutlier({0.1, -0.1}, 1e-3));
    EXPECT_GT(model.maxComponentDensity({0.0, 0.0}),
              model.maxComponentDensity({50.0, 50.0}));
}

TEST(BayesianGmm, ProbabilitiesAreNormalised) {
    common::Rng rng(10);
    const auto points = threeBlobs(rng, 40);
    BayesianGmm model;
    ASSERT_TRUE(model.fit(points));
    const Vector probs = model.predictProbabilities({5.0, 5.0});
    double total = 0.0;
    for (double p : probs) {
        EXPECT_GE(p, 0.0);
        total += p;
    }
    EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(BayesianGmm, RejectsDegenerateInput) {
    BayesianGmm model;
    EXPECT_FALSE(model.fit({}));
    EXPECT_FALSE(model.fit({{1.0}}));                       // single point
    EXPECT_FALSE(model.fit({{1.0, 2.0}, {1.0}}));           // ragged dims
    EXPECT_FALSE(model.trained());
}

TEST(BayesianGmm, ScoreIsHigherNearMass) {
    common::Rng rng(11);
    const auto points = threeBlobs(rng, 50);
    BayesianGmm model;
    ASSERT_TRUE(model.fit(points));
    EXPECT_GT(model.scoreLogLikelihood({0.0, 0.0}),
              model.scoreLogLikelihood({30.0, 30.0}));
}

TEST(BayesianGmm, WorksWithoutStandardization) {
    common::Rng rng(12);
    const auto points = threeBlobs(rng, 50);
    BayesianGmm model;
    BgmmParams params;
    params.standardize = false;
    ASSERT_TRUE(model.fit(points, params));
    EXPECT_GE(model.effectiveComponents(), 2u);
}

TEST(BayesianGmm, MeansLieNearTrueCenters) {
    common::Rng rng(13);
    const auto points = threeBlobs(rng, 100);
    BayesianGmm model;
    BgmmParams params;
    params.seed = 13;
    ASSERT_TRUE(model.fit(points, params));
    const std::vector<Vector> centers{{0.0, 0.0}, {10.0, 0.0}, {0.0, 10.0}};
    for (const auto& center : centers) {
        double best = 1e18;
        for (const auto& comp : model.components()) {
            best = std::min(best, norm2(subtract(comp.mean, center)));
        }
        EXPECT_LT(best, 0.5) << "no component near (" << center[0] << "," << center[1] << ")";
    }
}

}  // namespace
}  // namespace wm::analytics
