#include "common/string_utils.h"

#include <gtest/gtest.h>

namespace wm::common {
namespace {

TEST(Split, BasicSeparation) {
    EXPECT_EQ(split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
}

TEST(Split, DropsEmptySegmentsByDefault) {
    EXPECT_EQ(split("a,,b", ','), (std::vector<std::string>{"a", "b"}));
    EXPECT_EQ(split(",,a,", ','), (std::vector<std::string>{"a"}));
}

TEST(Split, KeepsEmptySegmentsOnRequest) {
    EXPECT_EQ(split("a,,b", ',', true), (std::vector<std::string>{"a", "", "b"}));
}

TEST(Split, EmptyInput) {
    EXPECT_TRUE(split("", ',').empty());
}

TEST(Join, RoundTripsWithSplit) {
    const std::vector<std::string> parts{"x", "y", "z"};
    EXPECT_EQ(split(join(parts, '/'), '/'), parts);
}

TEST(Trim, RemovesSurroundingWhitespace) {
    EXPECT_EQ(trim("  hello \t\n"), "hello");
    EXPECT_EQ(trim("no-op"), "no-op");
    EXPECT_EQ(trim("   "), "");
}

TEST(PrefixSuffix, Predicates) {
    EXPECT_TRUE(startsWith("/rack0/power", "/rack0"));
    EXPECT_FALSE(startsWith("/rack0", "/rack0/power"));
    EXPECT_TRUE(endsWith("/rack0/power", "power"));
    EXPECT_FALSE(endsWith("power", "/rack0/power"));
}

TEST(ToLower, AsciiOnly) {
    EXPECT_EQ(toLower("PoWeR"), "power");
}

struct PathCase {
    std::string input;
    std::string normalized;
    std::string leaf;
    std::string parent;
    std::size_t depth;
};

class PathNormalization : public ::testing::TestWithParam<PathCase> {};

TEST_P(PathNormalization, AllDerivations) {
    const PathCase& c = GetParam();
    EXPECT_EQ(normalizePath(c.input), c.normalized);
    EXPECT_EQ(pathLeaf(c.input), c.leaf);
    EXPECT_EQ(pathParent(c.input), c.parent);
    EXPECT_EQ(pathDepth(c.input), c.depth);
}

INSTANTIATE_TEST_SUITE_P(
    Paths, PathNormalization,
    ::testing::Values(
        PathCase{"/rack0/chassis1/power", "/rack0/chassis1/power", "power",
                 "/rack0/chassis1", 3},
        PathCase{"rack0/power", "/rack0/power", "power", "/rack0", 2},
        PathCase{"//rack0///power/", "/rack0/power", "power", "/rack0", 2},
        PathCase{"/", "/", "", "/", 0},
        PathCase{"", "/", "", "/", 0},
        PathCase{"/sensor", "/sensor", "sensor", "/", 1}));

TEST(PathJoin, NormalizesResult) {
    EXPECT_EQ(pathJoin("/rack0", "power"), "/rack0/power");
    EXPECT_EQ(pathJoin("/rack0/", "/power"), "/rack0/power");
    EXPECT_EQ(pathJoin("/", "power"), "/power");
}

TEST(PathAncestry, ReflexiveAndStrict) {
    EXPECT_TRUE(isPathAncestor("/a/b", "/a/b/c"));
    EXPECT_TRUE(isPathAncestor("/a/b", "/a/b"));
    EXPECT_TRUE(isPathAncestor("/", "/anything"));
    EXPECT_FALSE(isPathAncestor("/a/b/c", "/a/b"));
    // Segment boundaries matter: "/a/b" is not an ancestor of "/a/bc".
    EXPECT_FALSE(isPathAncestor("/a/b", "/a/bc"));
}

}  // namespace
}  // namespace wm::common
