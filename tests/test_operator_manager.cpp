// Operator Manager tests: plugin registry, configuration loading, lifecycle,
// manual ticking and the REST API bindings.

#include "core/operator_manager.h"

#include <gtest/gtest.h>

#include "core/hosting.h"
#include "plugins/registry.h"
#include "rest/http_server.h"

namespace wm::core {
namespace {

using common::kNsPerSec;

class OperatorManagerTest : public ::testing::Test {
  protected:
    void SetUp() override {
        engine_.setCacheStore(&caches_);
        // Two nodes with power sensors.
        for (const std::string node : {"/n0", "/n1"}) {
            sensors::SensorCache& cache = caches_.getOrCreate(node + "/power");
            for (int i = 0; i < 10; ++i) {
                cache.store({i * kNsPerSec, 100.0 + i});
            }
        }
        engine_.rebuildTree();
        manager_ = std::make_unique<OperatorManager>(
            makeHostContext(engine_, &caches_, nullptr, nullptr));
        plugins::registerBuiltinPlugins(*manager_);
    }

    int loadAggregator(const std::string& extra = "") {
        const auto parsed = common::parseConfig(
            "operator avg1 {\n"
            "    interval 1s\n"
            "    window 10s\n" +
            extra +
            "    input {\n"
            "        sensor \"<bottomup>power\"\n"
            "    }\n"
            "    output {\n"
            "        sensor \"<bottomup>power-avg\"\n"
            "    }\n"
            "}\n");
        EXPECT_TRUE(parsed.ok) << parsed.error;
        return manager_->loadPlugin("aggregator", parsed.root);
    }

    sensors::CacheStore caches_;
    QueryEngine engine_;
    std::unique_ptr<OperatorManager> manager_;
};

TEST_F(OperatorManagerTest, BuiltinPluginsAreRegistered) {
    const auto names = manager_->pluginNames();
    for (const std::string expected :
         {"tester", "aggregator", "smoothing", "perfmetrics", "healthchecker",
          "regressor", "persyst", "clustering"}) {
        EXPECT_NE(std::find(names.begin(), names.end(), expected), names.end())
            << expected;
    }
}

TEST_F(OperatorManagerTest, DuplicatePluginRegistrationRejected) {
    EXPECT_FALSE(manager_->registerPlugin(
        "tester", [](const common::ConfigNode&, const OperatorContext&) {
            return std::vector<OperatorPtr>{};
        }));
}

TEST_F(OperatorManagerTest, LoadPluginCreatesOperatorsWithUnits) {
    EXPECT_EQ(loadAggregator(), 1);
    const OperatorPtr op = manager_->findOperator("avg1");
    ASSERT_NE(op, nullptr);
    EXPECT_EQ(op->plugin(), "aggregator");
    EXPECT_EQ(op->units().size(), 2u);  // one per node
}

TEST_F(OperatorManagerTest, UnknownPluginIsError) {
    const auto parsed = common::parseConfig("operator x {\n}\n");
    ASSERT_TRUE(parsed.ok);
    EXPECT_EQ(manager_->loadPlugin("no-such-plugin", parsed.root), -1);
}

TEST_F(OperatorManagerTest, ParallelUnitModeSplitsOperators) {
    EXPECT_EQ(loadAggregator("    unitMode parallel\n"), 2);
    EXPECT_EQ(manager_->operators().size(), 2u);
    for (const auto& op : manager_->operators()) {
        EXPECT_EQ(op->units().size(), 1u);
    }
}

TEST_F(OperatorManagerTest, TickAllComputesOnlineOperators) {
    loadAggregator();
    manager_->tickAll(20 * kNsPerSec);
    const auto* output = caches_.find("/n0/power-avg");
    ASSERT_NE(output, nullptr);
    // Average of 100..109 = 104.5.
    EXPECT_DOUBLE_EQ(output->latest()->value, 104.5);
}

TEST_F(OperatorManagerTest, OutputsEnterTheSensorTreeForPipelines) {
    loadAggregator();
    // The aggregator's declared outputs must be discoverable by a downstream
    // operator before the first tick (pipeline resolution).
    EXPECT_TRUE(engine_.tree().hasSensor("/n0", "power-avg"));
}

TEST_F(OperatorManagerTest, OnDemandThroughManager) {
    loadAggregator("    mode ondemand\n");
    const auto outputs = manager_->computeOnDemand("avg1", "/n1", 20 * kNsPerSec);
    ASSERT_TRUE(outputs.has_value());
    ASSERT_EQ(outputs->size(), 1u);
    EXPECT_EQ((*outputs)[0].topic, "/n1/power-avg");
    // On-demand operators are not ticked by tickAll.
    manager_->tickAll(30 * kNsPerSec);
    EXPECT_EQ(caches_.find("/n0/power-avg"), nullptr);
}

TEST_F(OperatorManagerTest, ComputeOnDemandUnknownOperator) {
    EXPECT_FALSE(manager_->computeOnDemand("ghost", "/n0", 0).has_value());
}

TEST_F(OperatorManagerTest, ScheduledOnlineOperatorsFire) {
    const auto parsed = common::parseConfig(
        "operator fast {\n"
        "    interval 30ms\n"
        "    window 10s\n"
        "    input {\n        sensor \"<bottomup>power\"\n    }\n"
        "    output {\n        sensor \"<bottomup>power-live\"\n    }\n"
        "}\n");
    ASSERT_TRUE(parsed.ok);
    ASSERT_EQ(manager_->loadPlugin("aggregator", parsed.root), 1);
    manager_->start();
    EXPECT_TRUE(manager_->running());
    std::this_thread::sleep_for(std::chrono::milliseconds(150));
    manager_->stop();
    const OperatorPtr op = manager_->findOperator("fast");
    ASSERT_NE(op, nullptr);
    EXPECT_GE(op->computeCount(), 2u);
    ASSERT_NE(caches_.find("/n0/power-live"), nullptr);
}

TEST_F(OperatorManagerTest, RestEndpoints) {
    loadAggregator();
    rest::Router router;
    manager_->bindRest(router);

    const auto plugins = router.dispatch({"GET", "/wintermute/plugins", {}, {}, ""});
    EXPECT_EQ(plugins.status, 200);
    EXPECT_NE(plugins.body.find("\"aggregator\""), std::string::npos);

    const auto operators = router.dispatch({"GET", "/wintermute/operators", {}, {}, ""});
    EXPECT_EQ(operators.status, 200);
    EXPECT_NE(operators.body.find("\"avg1\""), std::string::npos);
    EXPECT_NE(operators.body.find("\"units\":2"), std::string::npos);

    const auto units = router.dispatch({"GET", "/wintermute/units/avg1", {}, {}, ""});
    EXPECT_EQ(units.status, 200);
    EXPECT_NE(units.body.find("\"/n0\""), std::string::npos);

    const auto missing = router.dispatch({"GET", "/wintermute/units/ghost", {}, {}, ""});
    EXPECT_EQ(missing.status, 404);
}

TEST_F(OperatorManagerTest, RestLifecycleToggles) {
    loadAggregator();
    rest::Router router;
    manager_->bindRest(router);
    const auto stop =
        router.dispatch({"PUT", "/wintermute/operators/avg1/stop", {}, {}, ""});
    EXPECT_EQ(stop.status, 200);
    EXPECT_FALSE(manager_->findOperator("avg1")->enabled());
    manager_->tickAll(30 * kNsPerSec);
    EXPECT_EQ(caches_.find("/n0/power-avg"), nullptr);  // disabled: no output
    const auto start =
        router.dispatch({"PUT", "/wintermute/operators/avg1/start", {}, {}, ""});
    EXPECT_EQ(start.status, 200);
    EXPECT_TRUE(manager_->findOperator("avg1")->enabled());
    const auto bad =
        router.dispatch({"PUT", "/wintermute/operators/avg1/reboot", {}, {}, ""});
    EXPECT_EQ(bad.status, 400);
}

TEST_F(OperatorManagerTest, RestOnDemandCompute) {
    loadAggregator("    mode ondemand\n");
    rest::Router router;
    manager_->bindRest(router);
    rest::Request request;
    request.method = "PUT";
    request.path = "/wintermute/compute";
    request.query = {{"operator", "avg1"}, {"unit", "/n0"}};
    const auto response = router.dispatch(request);
    EXPECT_EQ(response.status, 200);
    EXPECT_NE(response.body.find("/n0/power-avg"), std::string::npos);
    EXPECT_NE(response.body.find("104.5"), std::string::npos);

    rest::Request missing_params;
    missing_params.method = "PUT";
    missing_params.path = "/wintermute/compute";
    EXPECT_EQ(router.dispatch(missing_params).status, 400);
}

TEST_F(OperatorManagerTest, RestOverHttpEndToEnd) {
    loadAggregator();
    rest::Router router;
    manager_->bindRest(router);
    rest::HttpServer server(router);
    ASSERT_TRUE(server.start(0));
    const auto result =
        rest::httpRequest("127.0.0.1", server.port(), "GET", "/wintermute/operators");
    ASSERT_TRUE(result.ok) << result.error;
    EXPECT_EQ(result.status, 200);
    EXPECT_NE(result.body.find("avg1"), std::string::npos);
}

}  // namespace
}  // namespace wm::core
