// Property tests on the analytics models: invariants that must hold for any
// seeded random dataset.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "analytics/bayesian_gmm.h"
#include "analytics/classifier.h"
#include "analytics/features.h"
#include "analytics/random_forest.h"
#include "common/rng.h"

namespace wm::analytics {
namespace {

using common::Rng;

class ForestProperties : public ::testing::TestWithParam<std::uint64_t> {};

/// A regression forest averages tree leaf means, so its prediction can never
/// leave the convex hull of the training responses.
TEST_P(ForestProperties, PredictionsBoundedByTrainingRange) {
    Rng rng(GetParam());
    std::vector<std::vector<double>> x;
    std::vector<double> y;
    for (int i = 0; i < 300; ++i) {
        x.push_back({rng.uniform(0.0, 1.0), rng.uniform(0.0, 1.0)});
        y.push_back(rng.uniform(-50.0, 50.0));
    }
    RandomForest forest;
    ForestParams params;
    params.num_trees = 8;
    params.seed = GetParam();
    ASSERT_TRUE(forest.fit(x, y, params));
    const double lo = *std::min_element(y.begin(), y.end());
    const double hi = *std::max_element(y.begin(), y.end());
    for (int probe = 0; probe < 50; ++probe) {
        // Probe far outside the training domain too.
        const double p =
            forest.predict({rng.uniform(-10.0, 10.0), rng.uniform(-10.0, 10.0)});
        EXPECT_GE(p, lo);
        EXPECT_LE(p, hi);
    }
}

/// Determinism: identical data + seed produce identical models.
TEST_P(ForestProperties, FitIsDeterministic) {
    Rng rng(GetParam() + 100);
    std::vector<std::vector<double>> x;
    std::vector<double> y;
    for (int i = 0; i < 200; ++i) {
        x.push_back({rng.uniform(0.0, 1.0)});
        y.push_back(std::sin(x.back()[0] * 9.0));
    }
    ForestParams params;
    params.seed = GetParam();
    RandomForest a;
    RandomForest b;
    a.fit(x, y, params);
    b.fit(x, y, params);
    for (double probe = 0.0; probe <= 1.0; probe += 0.05) {
        ASSERT_DOUBLE_EQ(a.predict({probe}), b.predict({probe}));
    }
    EXPECT_DOUBLE_EQ(a.oobRmse(), b.oobRmse());
}

INSTANTIATE_TEST_SUITE_P(Seeds, ForestProperties, ::testing::Values(1u, 5u, 9u));

class GmmProperties : public ::testing::TestWithParam<std::uint64_t> {};

/// Determinism and label-permutation stability of the Bayesian GMM.
TEST_P(GmmProperties, FitIsDeterministicForSeed) {
    Rng rng(GetParam());
    std::vector<Vector> points;
    for (int i = 0; i < 120; ++i) {
        const double group = static_cast<double>(i % 2) * 10.0;
        points.push_back({group + rng.gaussian(0.0, 0.8), rng.gaussian(0.0, 1.0)});
    }
    BgmmParams params;
    params.seed = GetParam();
    BayesianGmm a;
    BayesianGmm b;
    ASSERT_TRUE(a.fit(points, params));
    ASSERT_TRUE(b.fit(points, params));
    ASSERT_EQ(a.effectiveComponents(), b.effectiveComponents());
    for (const auto& point : points) {
        ASSERT_EQ(a.predictLabel(point), b.predictLabel(point));
        ASSERT_DOUBLE_EQ(a.maxComponentDensity(point), b.maxComponentDensity(point));
    }
}

/// Component weights are a sub-probability vector and means are finite.
TEST_P(GmmProperties, ComponentSanity) {
    Rng rng(GetParam() + 40);
    std::vector<Vector> points;
    for (int i = 0; i < 150; ++i) {
        points.push_back({rng.gaussian(0.0, 1.0), rng.gaussian(5.0, 2.0),
                          rng.gaussian(-3.0, 0.5)});
    }
    BayesianGmm model;
    BgmmParams params;
    params.seed = GetParam();
    ASSERT_TRUE(model.fit(points, params));
    double total = 0.0;
    for (const auto& comp : model.components()) {
        EXPECT_GT(comp.weight, 0.0);
        total += comp.weight;
        for (double m : comp.mean) EXPECT_TRUE(std::isfinite(m));
        for (std::size_t d = 0; d < comp.mean.size(); ++d) {
            EXPECT_GT(comp.covariance(d, d), 0.0);  // positive variances
        }
    }
    EXPECT_LE(total, 1.0 + 1e-9);
    EXPECT_GT(total, 0.5);
}

INSTANTIATE_TEST_SUITE_P(Seeds, GmmProperties, ::testing::Values(2u, 6u, 10u));

/// Class-label relabeling: permuting class ids permutes predictions
/// identically (no hidden ordering assumptions in the classifier).
TEST(ClassifierProperties, LabelPermutationEquivariance) {
    Rng rng(3);
    std::vector<std::vector<double>> x;
    std::vector<std::size_t> labels;
    for (int i = 0; i < 400; ++i) {
        const double a = rng.uniform(0.0, 3.0);
        x.push_back({a, rng.uniform(0.0, 1.0)});
        labels.push_back(static_cast<std::size_t>(a));
    }
    // Permutation 0->2, 1->0, 2->1.
    const std::size_t perm[3] = {2, 0, 1};
    std::vector<std::size_t> permuted;
    for (std::size_t label : labels) permuted.push_back(perm[label]);

    ClassifierForestParams params;
    params.seed = 11;
    RandomForestClassifier original;
    RandomForestClassifier relabeled;
    ASSERT_TRUE(original.fit(x, labels, params));
    ASSERT_TRUE(relabeled.fit(x, permuted, params));
    int agreements = 0;
    for (int probe = 0; probe < 60; ++probe) {
        const std::vector<double> point{rng.uniform(0.0, 3.0), rng.uniform(0.0, 1.0)};
        if (perm[original.predict(point)] == relabeled.predict(point)) ++agreements;
    }
    // Tie-breaking inside trees may differ on boundary points; near-total
    // agreement is the invariant.
    EXPECT_GE(agreements, 55);
}

/// Feature extraction is invariant under time translation.
TEST(FeatureProperties, TimeTranslationInvariance) {
    Rng rng(21);
    sensors::ReadingVector window;
    common::TimestampNs t = 0;
    for (int i = 0; i < 20; ++i) {
        t += common::kNsPerSec;
        window.push_back({t, rng.uniform(0.0, 10.0)});
    }
    sensors::ReadingVector shifted = window;
    for (auto& reading : shifted) reading.timestamp += 86400 * common::kNsPerSec;
    EXPECT_EQ(extractFeatures(window), extractFeatures(shifted));
    EXPECT_EQ(extractFeatures(window, true), extractFeatures(shifted, true));
}

/// Feature extraction scales linearly with the values for linear features.
TEST(FeatureProperties, ValueScalingAffectsLinearFeaturesLinearly) {
    sensors::ReadingVector window;
    for (int i = 0; i < 10; ++i) {
        window.push_back({i * common::kNsPerSec, static_cast<double>(i * i)});
    }
    sensors::ReadingVector doubled = window;
    for (auto& reading : doubled) reading.value *= 2.0;
    const auto base = extractFeatures(window);
    const auto scaled = extractFeatures(doubled);
    for (std::size_t f = 0; f < base.size(); ++f) {
        EXPECT_NEAR(scaled[f], 2.0 * base[f], 1e-9) << featureName(static_cast<Feature>(f));
    }
}

}  // namespace
}  // namespace wm::analytics
