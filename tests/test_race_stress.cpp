// Concurrency stress regressions. These tests exist to give the sanitizer
// builds (asan-ubsan / tsan presets) real interleavings to chew on: each one
// hammers a hot shared structure from multiple threads and then checks a
// conservative invariant. Run counts are sized for CI boxes with few cores.
//
// All threads are spawned through wm::common::Thread and pacing is purely
// flag/queue-driven — no wall-clock sleeps. That keeps the suite flake-free
// under TSan scheduling jitter, and means the same bodies are schedulable
// under the wm::sched model checker's virtual clock (tests/model/ runs
// distilled versions of these scenarios under exhaustive exploration).

#include <gtest/gtest.h>

#include <atomic>
#include <vector>

#include "common/thread.h"
#include "common/thread_pool.h"
#include "common/time_utils.h"
#include "sensors/sensor_cache.h"
#include "test_fixtures.h"

namespace wm {
namespace {

using wm::testing::CountingSubscriber;

TEST(RaceStress, BrokerSubscribeUnsubscribeVsPublish) {
    mqtt::Broker broker;
    std::atomic<bool> stop{false};

    // A stable subscriber that must see every publish.
    CountingSubscriber stable(broker, "/stress/#");

    common::Thread churn(
        [&] {
            // Subscription churn concurrent with delivery: exercises the
            // snapshot-then-release discipline in Broker::deliver.
            while (!stop.load(std::memory_order_relaxed)) {
                const auto id =
                    broker.subscribe("/stress/a", [](const mqtt::Message&) {});
                ASSERT_NE(id, 0u);
                broker.unsubscribe(id);
            }
        },
        "churn");

    constexpr int kMessages = 2000;
    for (int i = 0; i < kMessages; ++i) {
        const int reached = broker.publish({"/stress/a", {{i, 1.0}}});
        EXPECT_GE(reached, 1);  // the stable subscriber always matches
    }
    stop.store(true);
    churn.join();

    EXPECT_EQ(stable.messages(), static_cast<std::uint64_t>(kMessages));
    EXPECT_EQ(broker.subscriptionCount(), 1u);
}

TEST(RaceStress, SensorCacheConcurrentReadInsertEvict) {
    // A short retention window forces eviction on nearly every insert while
    // readers traverse the ring buffer.
    constexpr common::TimestampNs kWindow = 50 * common::kNsPerMs;
    constexpr common::TimestampNs kInterval = common::kNsPerMs;
    sensors::SensorCache cache(kWindow, kInterval);

    std::atomic<bool> stop{false};
    std::vector<common::Thread> readers;
    for (int r = 0; r < 2; ++r) {
        readers.emplace_back(
            [&] {
                while (!stop.load(std::memory_order_relaxed)) {
                    const auto latest = cache.latest();
                    auto view = cache.viewRelative(kWindow / 2);
                    for (std::size_t i = 1; i < view.size(); ++i) {
                        // Views must always come out time-ordered,
                        // mid-eviction or not.
                        ASSERT_LE(view[i - 1].timestamp, view[i].timestamp);
                    }
                    if (latest) {
                        auto range = cache.viewAbsolute(
                            latest->timestamp - kWindow, latest->timestamp);
                        ASSERT_LE(range.size(), cache.size() + 1);
                    }
                    (void)cache.averageRelative(kWindow);
                }
            },
            "reader");
    }

    constexpr int kInserts = 5000;
    for (int i = 0; i < kInserts; ++i) {
        ASSERT_TRUE(cache.store({i * kInterval, static_cast<double>(i)}));
    }
    stop.store(true);
    for (auto& reader : readers) reader.join();

    const auto newest = cache.latest();
    ASSERT_TRUE(newest.has_value());
    EXPECT_EQ(newest->timestamp, (kInserts - 1) * kInterval);
    // Retention: everything still cached is inside the window.
    const auto all = cache.viewRelative(kWindow);
    ASSERT_FALSE(all.empty());
    EXPECT_GE(all.front().timestamp, newest->timestamp - kWindow);
}

TEST(RaceStress, ThreadPoolWaitIdleVsConcurrentSubmitters) {
    common::ThreadPool pool(2);
    std::atomic<int> executed{0};

    constexpr int kSubmitters = 3;
    constexpr int kTasksEach = 200;
    std::vector<common::Thread> submitters;
    for (int s = 0; s < kSubmitters; ++s) {
        submitters.emplace_back(
            [&] {
                for (int i = 0; i < kTasksEach; ++i) {
                    pool.post(
                        [&] { executed.fetch_add(1, std::memory_order_relaxed); });
                    if (i % 32 == 0) {
                        // waitIdle racing with other submitters: must return
                        // once the queue it observed drains, and must not
                        // deadlock.
                        pool.waitIdle();
                    }
                }
            },
            "submitter");
    }
    for (auto& submitter : submitters) submitter.join();
    pool.waitIdle();

    EXPECT_EQ(executed.load(), kSubmitters * kTasksEach);
    EXPECT_EQ(pool.pendingTasks(), 0u);
}

TEST(RaceStress, ThreadPoolWaitIdleSeesFuturesComplete) {
    common::ThreadPool pool(2);
    std::vector<std::future<int>> futures;
    futures.reserve(100);
    for (int i = 0; i < 100; ++i) {
        futures.push_back(pool.submit([i] { return i * 2; }));
    }
    pool.waitIdle();
    // After waitIdle every accepted task has fully run, so every future is
    // ready without blocking.
    for (int i = 0; i < 100; ++i) {
        ASSERT_EQ(futures[i].wait_for(std::chrono::seconds(0)),
                  std::future_status::ready);
        EXPECT_EQ(futures[i].get(), i * 2);
    }
}

TEST(RaceStress, AsyncBrokerBackPressureUnderChurn) {
    // Tiny queue bound so publishers regularly block on back-pressure while
    // the dispatcher drains; flush() must still terminate.
    mqtt::AsyncBroker broker(4);
    CountingSubscriber delivered(broker, "#");

    constexpr int kPublishers = 2;
    constexpr int kEach = 500;
    std::vector<common::Thread> publishers;
    for (int p = 0; p < kPublishers; ++p) {
        publishers.emplace_back(
            [&] {
                for (int i = 0; i < kEach; ++i) {
                    ASSERT_GE(broker.publish({"/async/stress", {{i, 0.0}}}), 0);
                }
            },
            "publisher");
    }
    for (auto& publisher : publishers) publisher.join();
    broker.flush();
    EXPECT_EQ(delivered.messages(), static_cast<std::uint64_t>(kPublishers * kEach));
    EXPECT_EQ(broker.queueDepth(), 0u);
}

}  // namespace
}  // namespace wm
