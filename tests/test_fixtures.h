#pragma once

// Shared test fixtures for data-path tests. The broker/storage/agent trio
// and the counting subscriber used to be duplicated across
// test_collectagent.cpp, test_race_stress.cpp and the resilience suite;
// they live here once instead.

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <utility>

#include "collectagent/collect_agent.h"
#include "mqtt/broker.h"
#include "pusher/plugins/tester_group.h"
#include "pusher/pusher.h"
#include "storage/storage_backend.h"

namespace wm::testing {

/// The canonical receiving side of the DCDB data path: an in-process
/// broker, a storage backend, and a started Collect Agent wired to both.
struct AgentHarness {
    explicit AgentHarness(collectagent::CollectAgentConfig config = {})
        : agent(std::move(config), broker, storage) {
        agent.start();
    }

    mqtt::Broker broker;
    storage::StorageBackend storage;
    collectagent::CollectAgent agent;
};

/// Subscribes to `filter` and counts delivered messages and readings.
class CountingSubscriber {
  public:
    CountingSubscriber(mqtt::Broker& broker, const std::string& filter)
        : broker_(broker),
          id_(broker.subscribe(filter, [this](const mqtt::Message& message) {
              messages_.fetch_add(1, std::memory_order_relaxed);
              readings_.fetch_add(message.readings.size(), std::memory_order_relaxed);
          })) {}

    std::uint64_t messages() const { return messages_.load(); }
    std::uint64_t readings() const { return readings_.load(); }
    mqtt::SubscriptionId id() const { return id_; }
    void unsubscribe() { broker_.unsubscribe(id_); }

  private:
    mqtt::Broker& broker_;
    std::atomic<std::uint64_t> messages_{0};
    std::atomic<std::uint64_t> readings_{0};
    mqtt::SubscriptionId id_;
};

/// A Pusher backed by a TesterGroup (monotonically increasing values, one
/// topic per sensor under /test/...), for deterministic tick-driven runs.
inline std::unique_ptr<pusher::Pusher> makeTesterPusher(
    mqtt::Broker* broker, std::size_t num_sensors,
    pusher::PusherConfig config = {}) {
    auto p = std::make_unique<pusher::Pusher>(std::move(config), broker);
    pusher::TesterGroupConfig tester;
    tester.num_sensors = num_sensors;
    p->addGroup(std::make_unique<pusher::TesterGroup>(tester));
    return p;
}

}  // namespace wm::testing
