#include "common/logging.h"

#include <gtest/gtest.h>

#include <fstream>

namespace wm::common {
namespace {

/// The logger is a process-global singleton; tests restore its state.
class LoggingTest : public ::testing::Test {
  protected:
    void SetUp() override {
        Logger::instance().setStderrEnabled(false);
        Logger::instance().setLevel(LogLevel::kInfo);
    }
    void TearDown() override {
        Logger::instance().setLogFile("");
        Logger::instance().setLevel(LogLevel::kInfo);
        Logger::instance().setStderrEnabled(true);
    }
};

TEST_F(LoggingTest, LevelNamesRoundTrip) {
    for (LogLevel level : {LogLevel::kTrace, LogLevel::kDebug, LogLevel::kInfo,
                           LogLevel::kWarning, LogLevel::kError, LogLevel::kFatal}) {
        EXPECT_EQ(logLevelFromName(logLevelName(level)), level);
    }
    EXPECT_EQ(logLevelFromName("warn"), LogLevel::kWarning);
    EXPECT_EQ(logLevelFromName("DEBUG"), LogLevel::kDebug);
    EXPECT_EQ(logLevelFromName("garbage"), LogLevel::kInfo);  // fallback
}

TEST_F(LoggingTest, ThresholdFiltersRecords) {
    Logger& logger = Logger::instance();
    logger.setLevel(LogLevel::kWarning);
    const std::uint64_t before = logger.emittedCount();
    logger.log(LogLevel::kInfo, "test", "dropped");
    logger.log(LogLevel::kDebug, "test", "dropped");
    EXPECT_EQ(logger.emittedCount(), before);
    logger.log(LogLevel::kWarning, "test", "kept");
    logger.log(LogLevel::kError, "test", "kept");
    EXPECT_EQ(logger.emittedCount(), before + 2);
}

TEST_F(LoggingTest, OffSilencesEverything) {
    Logger& logger = Logger::instance();
    logger.setLevel(LogLevel::kOff);
    const std::uint64_t before = logger.emittedCount();
    logger.log(LogLevel::kFatal, "test", "dropped");
    EXPECT_EQ(logger.emittedCount(), before);
}

TEST_F(LoggingTest, FileSinkReceivesRecords) {
    const std::string path = ::testing::TempDir() + "/wm_log_test.log";
    std::remove(path.c_str());
    Logger& logger = Logger::instance();
    ASSERT_TRUE(logger.setLogFile(path));
    logger.log(LogLevel::kError, "module-x", "something went wrong");
    logger.setLogFile("");
    std::ifstream in(path);
    ASSERT_TRUE(in.is_open());
    std::string line;
    std::getline(in, line);
    EXPECT_NE(line.find("ERROR"), std::string::npos);
    EXPECT_NE(line.find("[module-x]"), std::string::npos);
    EXPECT_NE(line.find("something went wrong"), std::string::npos);
}

TEST_F(LoggingTest, BadLogFilePathFails) {
    EXPECT_FALSE(Logger::instance().setLogFile("/no/such/dir/file.log"));
}

TEST_F(LoggingTest, StreamStatementFormats) {
    Logger& logger = Logger::instance();
    const std::uint64_t before = logger.emittedCount();
    WM_LOG(kError, "stream") << "value=" << 42 << " pi=" << 3.14;
    EXPECT_EQ(logger.emittedCount(), before + 1);
}

}  // namespace
}  // namespace wm::common
