#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "simulator/app_model.h"
#include "simulator/hpl_kernel.h"
#include "simulator/node_model.h"
#include "simulator/topology.h"

namespace wm::simulator {
namespace {

TEST(Topology, NodeCountHonoursCap) {
    const Topology cm3 = Topology::coolmuc3();
    EXPECT_EQ(cm3.nodeCount(), 148u);  // 150-slot layout capped at 148
    Topology uncapped = cm3;
    uncapped.max_nodes = 0;
    EXPECT_EQ(uncapped.nodeCount(), 150u);
}

TEST(Topology, PathsAreHierarchical) {
    const Topology t = Topology::tiny();
    EXPECT_EQ(t.nodeCount(), 8u);
    EXPECT_EQ(t.nodePath(0), "/rack0/chassis0/server0");
    EXPECT_EQ(t.nodePath(7), "/rack1/chassis1/server1");
    EXPECT_THROW(t.nodePath(8), std::out_of_range);
}

TEST(Topology, AllPathsDistinct) {
    const Topology t = Topology::coolmuc3();
    const auto paths = t.nodePaths();
    std::set<std::string> unique(paths.begin(), paths.end());
    EXPECT_EQ(unique.size(), paths.size());
}

TEST(Topology, CpuPaths) {
    EXPECT_EQ(Topology::cpuPath("/rack0/chassis0/server0", 63),
              "/rack0/chassis0/server0/cpu63");
}

TEST(AppModel, NamesRoundTrip) {
    for (AppKind kind : {AppKind::kIdle, AppKind::kHpl, AppKind::kKripke, AppKind::kAmg,
                         AppKind::kNekbone, AppKind::kLammps}) {
        EXPECT_EQ(appFromName(appName(kind)), kind);
    }
    EXPECT_EQ(appFromName("unknown-app"), AppKind::kIdle);
    EXPECT_EQ(appFromName("KRIPKE"), AppKind::kKripke);
}

TEST(AppModel, DeterministicActivity) {
    const AppModel a(AppKind::kAmg, 42);
    const AppModel b(AppKind::kAmg, 42);
    for (double t = 0.0; t < 50.0; t += 7.3) {
        const CoreActivity ca = a.coreActivity(t, 3, 64);
        const CoreActivity cb = b.coreActivity(t, 3, 64);
        EXPECT_DOUBLE_EQ(ca.cpi, cb.cpi);
        EXPECT_DOUBLE_EQ(ca.utilization, cb.utilization);
    }
}

TEST(AppModel, LammpsIsLowCpiLowSpread) {
    const AppModel model(AppKind::kLammps, 1);
    std::vector<double> cpis;
    for (std::size_t core = 0; core < 64; ++core) {
        for (double t = 10.0; t < 100.0; t += 10.0) {
            cpis.push_back(model.coreActivity(t, core, 64).cpi);
        }
    }
    double sum = 0.0;
    double max = 0.0;
    for (double c : cpis) {
        sum += c;
        max = std::max(max, c);
    }
    EXPECT_NEAR(sum / static_cast<double>(cpis.size()), 1.6, 0.3);
    EXPECT_LT(max, 3.0);  // no communication spikes
}

TEST(AppModel, AmgHasSpikingTail) {
    const AppModel model(AppKind::kAmg, 2);
    double max_cpi = 0.0;
    std::size_t spiking = 0;
    std::size_t total = 0;
    for (std::size_t core = 0; core < 64; ++core) {
        for (double t = 0.0; t < 200.0; t += 5.0) {
            const double cpi = model.coreActivity(t, core, 64).cpi;
            max_cpi = std::max(max_cpi, cpi);
            if (cpi > 8.0) ++spiking;
            ++total;
        }
    }
    EXPECT_GT(max_cpi, 20.0);  // latency spikes reach CPI ~30
    const double fraction = static_cast<double>(spiking) / static_cast<double>(total);
    EXPECT_GT(fraction, 0.10);
    EXPECT_LT(fraction, 0.30);  // only the upper-decile tail spikes
}

TEST(AppModel, KripkeIsPeriodicAcrossAllCores) {
    const AppModel model(AppKind::kKripke, 3);
    // The sawtooth peaks mid-iteration for every core simultaneously.
    const double low = model.coreActivity(1.0, 5, 64).cpi;
    const double high = model.coreActivity(30.0, 5, 64).cpi;  // 0.67 into the period
    EXPECT_GT(high, low + 4.0);
    // Next iteration behaves the same.
    const double high2 = model.coreActivity(30.0 + 45.0, 5, 64).cpi;
    EXPECT_NEAR(high, high2, 2.5);
}

TEST(AppModel, NekboneSpreadGrowsInSecondHalf) {
    const AppModel model(AppKind::kNekbone, 4);
    auto spread_at = [&](double t) {
        double lo = 1e9;
        double hi = 0.0;
        for (std::size_t core = 0; core < 64; ++core) {
            const double cpi = model.coreActivity(t, core, 64).cpi;
            lo = std::min(lo, cpi);
            hi = std::max(hi, cpi);
        }
        return hi - lo;
    };
    EXPECT_LT(spread_at(100.0), 2.0);   // first half: compute-bound
    EXPECT_GT(spread_at(700.0), 10.0);  // second half: memory-limited tail
}

TEST(AppModel, IdleHasNearZeroUtilization) {
    const AppModel model(AppKind::kIdle, 5);
    for (std::size_t core = 1; core < 8; ++core) {
        EXPECT_LT(model.coreActivity(50.0, core, 8).utilization, 0.1);
    }
}

TEST(NodeModel, CountersAreMonotonic) {
    NodeModel node(8, 11);
    node.startApp(AppKind::kHpl);
    std::vector<CoreCounters> previous = node.sample().cores;
    for (int step = 0; step < 20; ++step) {
        node.advance(1.0);
        const auto& cores = node.sample().cores;
        for (std::size_t c = 0; c < cores.size(); ++c) {
            EXPECT_GE(cores[c].cycles, previous[c].cycles);
            EXPECT_GE(cores[c].instructions, previous[c].instructions);
            EXPECT_GE(cores[c].cache_misses, previous[c].cache_misses);
        }
        previous = cores;
    }
}

TEST(NodeModel, PowerRisesUnderLoad) {
    NodeModel node(8, 12);
    for (int i = 0; i < 30; ++i) node.advance(1.0);
    const double idle_power = node.sample().power_w;
    node.startApp(AppKind::kHpl);
    for (int i = 0; i < 30; ++i) node.advance(1.0);
    const double busy_power = node.sample().power_w;
    EXPECT_GT(busy_power, idle_power + 80.0);
}

TEST(NodeModel, TemperatureFollowsPowerWithLag) {
    NodeModel node(8, 13);
    node.startApp(AppKind::kHpl);
    node.advance(1.0);
    const double temp_early = node.sample().temperature_c;
    for (int i = 0; i < 300; ++i) node.advance(1.0);
    const double temp_late = node.sample().temperature_c;
    EXPECT_GT(temp_late, temp_early + 2.0);  // RC model converges upward
}

TEST(NodeModel, IdleCounterGrowsFasterWhenIdle) {
    NodeModel busy(8, 14);
    NodeModel idle(8, 14);
    busy.startApp(AppKind::kHpl);
    idle.startApp(AppKind::kIdle);
    for (int i = 0; i < 20; ++i) {
        busy.advance(1.0);
        idle.advance(1.0);
    }
    EXPECT_GT(idle.sample().idle_time_total, busy.sample().idle_time_total * 5.0);
}

TEST(NodeModel, AnomalousNodeDrawsMorePower) {
    NodeCharacteristics anomalous;
    anomalous.anomaly_power_factor = 1.2;
    anomalous.power_variability = 0.0;
    NodeCharacteristics healthy;
    healthy.power_variability = 0.0;
    NodeModel bad(8, 15, anomalous);
    NodeModel good(8, 15, healthy);
    bad.startApp(AppKind::kLammps);
    good.startApp(AppKind::kLammps);
    double bad_sum = 0.0;
    double good_sum = 0.0;
    for (int i = 0; i < 60; ++i) {
        bad.advance(1.0);
        good.advance(1.0);
        bad_sum += bad.sample().power_w;
        good_sum += good.sample().power_w;
    }
    EXPECT_GT(bad_sum / good_sum, 1.12);
}

TEST(NodeModel, NekboneMemoryShrinksThroughRun) {
    NodeModel node(8, 16);
    node.startApp(AppKind::kNekbone);
    for (int i = 0; i < 100; ++i) node.advance(1.0);
    const double early_free = node.sample().memory_free_gb;
    for (int i = 0; i < 600; ++i) node.advance(1.0);
    const double late_free = node.sample().memory_free_gb;
    EXPECT_LT(late_free, early_free - 10.0);
}

TEST(HplKernel, ProducesWorkAndChecksum) {
    const HplResult result = runHplKernel(64, 2);
    EXPECT_GT(result.elapsed_sec, 0.0);
    EXPECT_GT(result.gflops, 0.0);
    EXPECT_NE(result.checksum, 0.0);
}

TEST(HplKernel, DeterministicChecksum) {
    const HplResult a = runHplKernel(48, 3, 7);
    const HplResult b = runHplKernel(48, 3, 7);
    EXPECT_DOUBLE_EQ(a.checksum, b.checksum);
}

TEST(HplKernel, DegenerateParams) {
    EXPECT_EQ(runHplKernel(0, 5).elapsed_sec, 0.0);
    EXPECT_EQ(runHplKernel(16, 0).elapsed_sec, 0.0);
}

TEST(HplKernel, CalibrationIsPositive) {
    EXPECT_GE(calibrateHplRepetitions(32, 0.01), 1u);
}

}  // namespace
}  // namespace wm::simulator
