#include "analytics/features.h"

#include <gtest/gtest.h>

#include <set>

#include "common/time_utils.h"

namespace wm::analytics {
namespace {

using common::kNsPerSec;
using sensors::Reading;
using sensors::ReadingVector;

ReadingVector linearSeries(std::size_t n, double start, double step) {
    ReadingVector out;
    for (std::size_t i = 0; i < n; ++i) {
        out.push_back({static_cast<common::TimestampNs>(i) * kNsPerSec,
                       start + step * static_cast<double>(i)});
    }
    return out;
}

double featureOf(const std::vector<double>& block, Feature f) {
    return block[static_cast<std::size_t>(f)];
}

TEST(ExtractFeatures, EmptyWindowIsZeros) {
    const auto block = extractFeatures({});
    ASSERT_EQ(block.size(), kFeaturesPerSensor);
    for (double v : block) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(ExtractFeatures, LinearSeriesValues) {
    // Values 10, 12, 14, 16, 18 at 1 s spacing.
    const auto block = extractFeatures(linearSeries(5, 10.0, 2.0));
    EXPECT_DOUBLE_EQ(featureOf(block, Feature::kMean), 14.0);
    EXPECT_DOUBLE_EQ(featureOf(block, Feature::kMin), 10.0);
    EXPECT_DOUBLE_EQ(featureOf(block, Feature::kMax), 18.0);
    EXPECT_DOUBLE_EQ(featureOf(block, Feature::kLast), 18.0);
    EXPECT_DOUBLE_EQ(featureOf(block, Feature::kDelta), 8.0);
    EXPECT_NEAR(featureOf(block, Feature::kSlope), 2.0, 1e-9);
    EXPECT_DOUBLE_EQ(featureOf(block, Feature::kMedian), 14.0);
}

TEST(ExtractFeatures, ConstantSeriesHasZeroSpread) {
    const auto block = extractFeatures(linearSeries(10, 5.0, 0.0));
    EXPECT_DOUBLE_EQ(featureOf(block, Feature::kStdDev), 0.0);
    EXPECT_DOUBLE_EQ(featureOf(block, Feature::kSlope), 0.0);
    EXPECT_DOUBLE_EQ(featureOf(block, Feature::kDelta), 0.0);
}

TEST(ExtractFeatures, MonotonicDifferencesCounters) {
    // Counter increments of exactly 100 per second -> differenced features
    // describe the constant increment.
    const auto block = extractFeatures(linearSeries(6, 1000.0, 100.0), /*monotonic=*/true);
    EXPECT_DOUBLE_EQ(featureOf(block, Feature::kMean), 100.0);
    EXPECT_DOUBLE_EQ(featureOf(block, Feature::kStdDev), 0.0);
    EXPECT_DOUBLE_EQ(featureOf(block, Feature::kLast), 100.0);
}

TEST(ExtractFeatures, SingleReadingWindow) {
    const auto block = extractFeatures({{0, 7.0}});
    EXPECT_DOUBLE_EQ(featureOf(block, Feature::kMean), 7.0);
    EXPECT_DOUBLE_EQ(featureOf(block, Feature::kSlope), 0.0);
}

TEST(ExtractFeatures, IrregularTimestampsSlope) {
    // Value doubles over a 4 s gap: slope = 0.5/s on the second segment mix.
    ReadingVector window{{0, 0.0}, {4 * kNsPerSec, 2.0}};
    const auto block = extractFeatures(window);
    EXPECT_NEAR(featureOf(block, Feature::kSlope), 0.5, 1e-9);
}

TEST(FeatureNames, AllDistinct) {
    std::set<std::string> names;
    for (std::size_t i = 0; i < kFeaturesPerSensor; ++i) {
        names.insert(featureName(static_cast<Feature>(i)));
    }
    EXPECT_EQ(names.size(), kFeaturesPerSensor);
}

TEST(ConcatFeatures, PreservesOrder) {
    const auto joined = concatFeatures({{1.0, 2.0}, {3.0}, {}, {4.0, 5.0}});
    EXPECT_EQ(joined, (std::vector<double>{1.0, 2.0, 3.0, 4.0, 5.0}));
}

TEST(TrainingSet, FillsToCapacity) {
    TrainingSet set(3);
    EXPECT_TRUE(set.add({1.0}, 1.0));
    EXPECT_TRUE(set.add({2.0}, 2.0));
    EXPECT_FALSE(set.full());
    EXPECT_TRUE(set.add({3.0}, 3.0));
    EXPECT_TRUE(set.full());
    EXPECT_FALSE(set.add({4.0}, 4.0));  // rejected when full
    EXPECT_EQ(set.size(), 3u);
    EXPECT_EQ(set.responses(), (std::vector<double>{1.0, 2.0, 3.0}));
}

TEST(TrainingSet, ClearEmpties) {
    TrainingSet set(2);
    set.add({1.0}, 1.0);
    set.clear();
    EXPECT_EQ(set.size(), 0u);
    EXPECT_FALSE(set.full());
}

}  // namespace
}  // namespace wm::analytics
