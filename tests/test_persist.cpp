// Durability primitives (src/persist/): serializer round trips, WAL framing
// and torn-tail truncation, snapshot atomicity. The property pinned
// throughout is replay idempotence — replaying a log twice, or a log cut at
// any byte, always converges to the same record sequence.

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "common/fault.h"
#include "common/rng.h"
#include "persist/serializer.h"
#include "persist/snapshot.h"
#include "persist/wal.h"

namespace wm::persist {
namespace {

std::string tempPath(const std::string& name) {
    const std::string path = ::testing::TempDir() + "/" + name;
    std::filesystem::remove(path);
    return path;
}

std::vector<std::string> replayAll(const std::string& path,
                                   WalReplayStats* stats = nullptr) {
    std::vector<std::string> records;
    const WalReplayStats s = replayWal(
        path, [&](std::string_view payload) { records.emplace_back(payload); });
    if (stats != nullptr) *stats = s;
    return records;
}

void appendRawBytes(const std::string& path, std::string_view bytes) {
    std::FILE* file = std::fopen(path.c_str(), "ab");
    ASSERT_NE(file, nullptr);
    std::fwrite(bytes.data(), 1, bytes.size(), file);
    std::fclose(file);
}

TEST(Serializer, RoundTripsEveryType) {
    Encoder encoder;
    encoder.putU8(0xAB);
    encoder.putU32(0xDEADBEEF);
    encoder.putU64(0x0123456789ABCDEFULL);
    encoder.putI64(-42);
    encoder.putF64(3.141592653589793);
    encoder.putBool(true);
    encoder.putBool(false);
    encoder.putString("wintermute");
    encoder.putString("");  // empty strings are legal
    encoder.putSize(4096);
    const std::string blob = encoder.take();

    Decoder decoder(blob);
    std::uint8_t u8 = 0;
    std::uint32_t u32 = 0;
    std::uint64_t u64 = 0;
    std::int64_t i64 = 0;
    double f64 = 0.0;
    bool yes = false;
    bool no = true;
    std::string text;
    std::string empty = "sentinel";
    std::size_t size = 0;
    EXPECT_TRUE(decoder.getU8(&u8));
    EXPECT_TRUE(decoder.getU32(&u32));
    EXPECT_TRUE(decoder.getU64(&u64));
    EXPECT_TRUE(decoder.getI64(&i64));
    EXPECT_TRUE(decoder.getF64(&f64));
    EXPECT_TRUE(decoder.getBool(&yes));
    EXPECT_TRUE(decoder.getBool(&no));
    EXPECT_TRUE(decoder.getString(&text));
    EXPECT_TRUE(decoder.getString(&empty));
    EXPECT_TRUE(decoder.getSize(&size));
    EXPECT_TRUE(decoder.ok());
    EXPECT_TRUE(decoder.atEnd());
    EXPECT_EQ(u8, 0xAB);
    EXPECT_EQ(u32, 0xDEADBEEFu);
    EXPECT_EQ(u64, 0x0123456789ABCDEFULL);
    EXPECT_EQ(i64, -42);
    EXPECT_DOUBLE_EQ(f64, 3.141592653589793);
    EXPECT_TRUE(yes);
    EXPECT_FALSE(no);
    EXPECT_EQ(text, "wintermute");
    EXPECT_TRUE(empty.empty());
    EXPECT_EQ(size, 4096u);
}

TEST(Serializer, UnderflowLatchesFailure) {
    Encoder encoder;
    encoder.putU32(7);
    Decoder decoder(encoder.take());
    std::uint64_t u64 = 0;
    EXPECT_FALSE(decoder.getU64(&u64));  // 4 bytes cannot satisfy 8
    EXPECT_FALSE(decoder.ok());
    std::uint32_t u32 = 0;
    EXPECT_FALSE(decoder.getU32(&u32));  // failure latches: later reads fail too
}

TEST(Serializer, TruncatedStringFails) {
    Encoder encoder;
    encoder.putString("hello");
    std::string blob = encoder.take();
    blob.resize(blob.size() - 2);  // cut into the string body
    Decoder decoder(blob);
    std::string out;
    EXPECT_FALSE(decoder.getString(&out));
    EXPECT_FALSE(decoder.ok());
}

TEST(Wal, AppendReplayRoundTrip) {
    const std::string path = tempPath("wal_roundtrip.wal");
    WalWriter writer;
    ASSERT_TRUE(writer.open(path));
    EXPECT_TRUE(writer.append("first"));
    EXPECT_TRUE(writer.append(""));  // zero-length records are legal
    EXPECT_TRUE(writer.append(std::string(1000, 'x')));
    EXPECT_EQ(writer.recordsAppended(), 3u);
    writer.close();

    WalReplayStats stats;
    const auto records = replayAll(path, &stats);
    EXPECT_TRUE(stats.ok);
    EXPECT_EQ(stats.records_applied, 3u);
    EXPECT_FALSE(stats.torn_tail_truncated);
    ASSERT_EQ(records.size(), 3u);
    EXPECT_EQ(records[0], "first");
    EXPECT_EQ(records[1], "");
    EXPECT_EQ(records[2], std::string(1000, 'x'));
}

TEST(Wal, MissingFileIsAnEmptyLog) {
    WalReplayStats stats;
    const auto records = replayAll(tempPath("wal_never_created.wal"), &stats);
    EXPECT_TRUE(stats.ok);
    EXPECT_TRUE(records.empty());
    EXPECT_FALSE(stats.torn_tail_truncated);
}

TEST(Wal, ResetTruncatesAndAppendsContinue) {
    const std::string path = tempPath("wal_reset.wal");
    WalWriter writer;
    ASSERT_TRUE(writer.open(path));
    EXPECT_TRUE(writer.append("old"));
    EXPECT_TRUE(writer.reset());
    EXPECT_TRUE(writer.append("new"));
    writer.close();
    const auto records = replayAll(path);
    ASSERT_EQ(records.size(), 1u);
    EXPECT_EQ(records[0], "new");
}

TEST(Wal, TornTailTruncatedAndReplayIdempotent) {
    const std::string path = tempPath("wal_torn.wal");
    WalWriter writer;
    ASSERT_TRUE(writer.open(path));
    EXPECT_TRUE(writer.append("a"));
    EXPECT_TRUE(writer.append("b"));
    writer.close();
    // A crash mid-append: a frame header promising 100 bytes, 5 delivered.
    appendRawBytes(path, std::string("\x64\x00\x00\x00\x99\x99\x99\x99parti", 13));

    WalReplayStats first;
    EXPECT_EQ(replayAll(path, &first).size(), 2u);
    EXPECT_TRUE(first.ok);
    EXPECT_TRUE(first.torn_tail_truncated);
    EXPECT_EQ(first.truncated_bytes, 13u);

    // Idempotence: the truncated log replays identically, with nothing
    // further to cut.
    WalReplayStats second;
    EXPECT_EQ(replayAll(path, &second).size(), 2u);
    EXPECT_FALSE(second.torn_tail_truncated);

    // The log is consistent again: appends continue from the truncation.
    WalWriter resumed;
    ASSERT_TRUE(resumed.open(path));
    EXPECT_TRUE(resumed.append("c"));
    resumed.close();
    const auto records = replayAll(path);
    ASSERT_EQ(records.size(), 3u);
    EXPECT_EQ(records[2], "c");
}

TEST(Wal, CorruptRecordCutsTheLogThere) {
    const std::string path = tempPath("wal_corrupt.wal");
    WalWriter writer;
    ASSERT_TRUE(writer.open(path));
    EXPECT_TRUE(writer.append("aaaa"));
    EXPECT_TRUE(writer.append("bbbb"));
    writer.close();
    // Flip one payload byte of the second record (offset: 8+4 header+payload
    // of record one, then 8 header bytes of record two).
    std::FILE* file = std::fopen(path.c_str(), "r+b");
    ASSERT_NE(file, nullptr);
    std::fseek(file, 12 + 8 + 1, SEEK_SET);
    std::fputc('X', file);
    std::fclose(file);

    WalReplayStats stats;
    const auto records = replayAll(path, &stats);
    EXPECT_TRUE(stats.ok);
    ASSERT_EQ(records.size(), 1u);  // everything before the corruption survives
    EXPECT_EQ(records[0], "aaaa");
    EXPECT_TRUE(stats.torn_tail_truncated);
}

TEST(Wal, InjectedAppendFaultLeavesRecoverableLog) {
    common::fault::FaultInjector injector(1);
    common::fault::ScopedInjector scoped(injector);
    const std::string path = tempPath("wal_fault.wal");
    WalWriter writer;
    ASSERT_TRUE(writer.open(path));
    EXPECT_TRUE(writer.append("kept"));
    injector.armFromText("persist.wal_append", "fail once");
    EXPECT_FALSE(writer.append("torn"));  // crash mid-write: half a frame lands
    EXPECT_EQ(writer.appendFailures(), 1u);
    writer.close();

    WalReplayStats stats;
    const auto records = replayAll(path, &stats);
    EXPECT_TRUE(stats.ok);
    ASSERT_EQ(records.size(), 1u);
    EXPECT_EQ(records[0], "kept");
    EXPECT_TRUE(stats.torn_tail_truncated);
}

// The idempotence property, exhaustively: a log of random records cut at
// EVERY byte offset replays to a prefix of the original records, and a
// second replay of the truncated file is identical with nothing to cut.
TEST(Wal, ReplayIdempotentAtEveryCutPoint) {
    common::Rng rng(0xC0FFEE);
    std::vector<std::string> originals;
    for (int i = 0; i < 8; ++i) {
        std::string payload;
        const std::size_t len = static_cast<std::size_t>(rng.uniformInt(25));
        for (std::size_t b = 0; b < len; ++b) {
            payload.push_back(static_cast<char>(rng.uniformInt(256)));
        }
        originals.push_back(std::move(payload));
    }
    const std::string full_path = tempPath("wal_prop_full.wal");
    {
        WalWriter writer;
        ASSERT_TRUE(writer.open(full_path));
        for (const auto& payload : originals) ASSERT_TRUE(writer.append(payload));
    }
    std::string bytes;
    {
        std::FILE* file = std::fopen(full_path.c_str(), "rb");
        ASSERT_NE(file, nullptr);
        char buffer[4096];
        std::size_t n = 0;
        while ((n = std::fread(buffer, 1, sizeof buffer, file)) > 0) {
            bytes.append(buffer, n);
        }
        std::fclose(file);
    }

    for (std::size_t cut = 0; cut <= bytes.size(); ++cut) {
        const std::string path = tempPath("wal_prop_cut.wal");
        appendRawBytes(path, std::string_view(bytes).substr(0, cut));
        WalReplayStats first;
        const auto records = replayAll(path, &first);
        ASSERT_TRUE(first.ok) << "cut at " << cut;
        // The applied records are a strict prefix of the originals.
        ASSERT_LE(records.size(), originals.size()) << "cut at " << cut;
        for (std::size_t i = 0; i < records.size(); ++i) {
            ASSERT_EQ(records[i], originals[i]) << "cut at " << cut;
        }
        // Convergence: the second replay sees the same records and a clean
        // tail.
        WalReplayStats second;
        const auto again = replayAll(path, &second);
        ASSERT_EQ(again.size(), records.size()) << "cut at " << cut;
        ASSERT_FALSE(second.torn_tail_truncated) << "cut at " << cut;
    }
}

TEST(Snapshot, RoundTrip) {
    const std::string path = tempPath("snap_roundtrip.snap");
    EXPECT_TRUE(writeSnapshot(path, 3, "payload bytes"));
    const auto data = readSnapshot(path);
    ASSERT_TRUE(data.has_value());
    EXPECT_EQ(data->version, 3u);
    EXPECT_EQ(data->payload, "payload bytes");
}

TEST(Snapshot, MissingFileReadsAsNullopt) {
    EXPECT_FALSE(readSnapshot(tempPath("snap_missing.snap")).has_value());
}

TEST(Snapshot, CorruptPayloadRejected) {
    const std::string path = tempPath("snap_corrupt.snap");
    ASSERT_TRUE(writeSnapshot(path, 1, "checksummed content"));
    std::FILE* file = std::fopen(path.c_str(), "r+b");
    ASSERT_NE(file, nullptr);
    std::fseek(file, -3, SEEK_END);
    std::fputc('!', file);
    std::fclose(file);
    EXPECT_FALSE(readSnapshot(path).has_value());
}

TEST(Snapshot, FailedWritePreservesPreviousSnapshot) {
    common::fault::FaultInjector injector(1);
    common::fault::ScopedInjector scoped(injector);
    const std::string path = tempPath("snap_atomic.snap");
    ASSERT_TRUE(writeSnapshot(path, 1, "generation one"));
    injector.armFromText("persist.snapshot_write", "fail");
    EXPECT_FALSE(writeSnapshot(path, 2, "generation two"));
    injector.disarm("persist.snapshot_write");
    const auto data = readSnapshot(path);
    ASSERT_TRUE(data.has_value());  // the crash mid-snapshot lost nothing
    EXPECT_EQ(data->version, 1u);
    EXPECT_EQ(data->payload, "generation one");
}

}  // namespace
}  // namespace wm::persist
