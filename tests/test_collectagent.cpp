#include "collectagent/collect_agent.h"

#include <gtest/gtest.h>

#include "pusher/plugins/tester_group.h"
#include "pusher/pusher.h"

namespace wm::collectagent {
namespace {

using common::kNsPerSec;

TEST(CollectAgent, StoresAndForwardsReceivedReadings) {
    mqtt::Broker broker;
    storage::StorageBackend storage;
    CollectAgent agent({}, broker, storage);
    agent.start();
    broker.publish({"/n0/power", {{kNsPerSec, 100.0}, {2 * kNsPerSec, 110.0}}});
    EXPECT_EQ(agent.messagesReceived(), 1u);
    EXPECT_EQ(agent.readingsStored(), 2u);
    // Cache side.
    const auto* cache = agent.cacheStore().find("/n0/power");
    ASSERT_NE(cache, nullptr);
    EXPECT_DOUBLE_EQ(cache->latest()->value, 110.0);
    // Storage side.
    EXPECT_EQ(storage.query("/n0/power", 0, 10 * kNsPerSec).size(), 2u);
}

TEST(CollectAgent, FilterRestrictsSubscription) {
    mqtt::Broker broker;
    storage::StorageBackend storage;
    CollectAgentConfig config;
    config.filter = "/rack0/#";
    CollectAgent agent(config, broker, storage);
    agent.start();
    broker.publish({"/rack0/power", {{1, 1.0}}});
    broker.publish({"/rack1/power", {{1, 1.0}}});
    EXPECT_EQ(agent.messagesReceived(), 1u);
    EXPECT_EQ(agent.cacheStore().find("/rack1/power"), nullptr);
}

TEST(CollectAgent, StorageForwardingCanBeDisabled) {
    mqtt::Broker broker;
    storage::StorageBackend storage;
    CollectAgentConfig config;
    config.forward_to_storage = false;
    CollectAgent agent(config, broker, storage);
    agent.start();
    broker.publish({"/s", {{1, 1.0}}});
    EXPECT_NE(agent.cacheStore().find("/s"), nullptr);
    EXPECT_TRUE(storage.topics().empty());
}

TEST(CollectAgent, StopUnsubscribes) {
    mqtt::Broker broker;
    storage::StorageBackend storage;
    CollectAgent agent({}, broker, storage);
    agent.start();
    EXPECT_TRUE(agent.running());
    agent.stop();
    EXPECT_FALSE(agent.running());
    broker.publish({"/s", {{1, 1.0}}});
    EXPECT_EQ(agent.messagesReceived(), 0u);
}

TEST(CollectAgent, StartIsIdempotent) {
    mqtt::Broker broker;
    storage::StorageBackend storage;
    CollectAgent agent({}, broker, storage);
    agent.start();
    agent.start();
    broker.publish({"/s", {{1, 1.0}}});
    EXPECT_EQ(agent.messagesReceived(), 1u);  // no duplicate subscription
}

TEST(CollectAgent, EndToEndFromPusher) {
    // The canonical DCDB data flow: Pusher -> broker -> Collect Agent ->
    // storage, all in-process.
    mqtt::Broker broker;
    storage::StorageBackend storage;
    CollectAgent agent({}, broker, storage);
    agent.start();

    pusher::Pusher pusher({}, &broker);
    pusher::TesterGroupConfig tester;
    tester.num_sensors = 8;
    pusher.addGroup(std::make_unique<pusher::TesterGroup>(tester));
    for (int tick = 1; tick <= 5; ++tick) {
        pusher.sampleOnce(tick * kNsPerSec);
    }
    EXPECT_EQ(agent.messagesReceived(), 40u);
    EXPECT_EQ(storage.stats().reading_count, 40u);
    const auto series = storage.query("/test/test0", 0, 100 * kNsPerSec);
    ASSERT_EQ(series.size(), 5u);
    EXPECT_DOUBLE_EQ(series.back().value, 5.0);
}

TEST(CollectAgent, AsyncBrokerDataFlow) {
    mqtt::AsyncBroker broker;
    storage::StorageBackend storage;
    CollectAgent agent({}, broker, storage);
    agent.start();
    for (int i = 1; i <= 20; ++i) {
        broker.publish({"/s", {{i * kNsPerSec, static_cast<double>(i)}}});
    }
    broker.flush();
    EXPECT_EQ(agent.messagesReceived(), 20u);
    EXPECT_EQ(storage.query("/s", 0, 100 * kNsPerSec).size(), 20u);
}

}  // namespace
}  // namespace wm::collectagent
