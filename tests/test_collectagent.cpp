#include "collectagent/collect_agent.h"

#include <gtest/gtest.h>

#include "test_fixtures.h"

namespace wm::collectagent {
namespace {

using common::kNsPerSec;
using wm::testing::AgentHarness;
using wm::testing::makeTesterPusher;

TEST(CollectAgent, StoresAndForwardsReceivedReadings) {
    AgentHarness harness;
    harness.broker.publish(
        {"/n0/power", {{kNsPerSec, 100.0}, {2 * kNsPerSec, 110.0}}});
    EXPECT_EQ(harness.agent.messagesReceived(), 1u);
    EXPECT_EQ(harness.agent.readingsStored(), 2u);
    // Cache side.
    const auto* cache = harness.agent.cacheStore().find("/n0/power");
    ASSERT_NE(cache, nullptr);
    EXPECT_DOUBLE_EQ(cache->latest()->value, 110.0);
    // Storage side.
    EXPECT_EQ(harness.storage.query("/n0/power", 0, 10 * kNsPerSec).size(), 2u);
}

TEST(CollectAgent, FilterRestrictsSubscription) {
    CollectAgentConfig config;
    config.filter = "/rack0/#";
    AgentHarness harness(std::move(config));
    harness.broker.publish({"/rack0/power", {{1, 1.0}}});
    harness.broker.publish({"/rack1/power", {{1, 1.0}}});
    EXPECT_EQ(harness.agent.messagesReceived(), 1u);
    EXPECT_EQ(harness.agent.cacheStore().find("/rack1/power"), nullptr);
}

TEST(CollectAgent, StorageForwardingCanBeDisabled) {
    CollectAgentConfig config;
    config.forward_to_storage = false;
    AgentHarness harness(std::move(config));
    harness.broker.publish({"/s", {{1, 1.0}}});
    EXPECT_NE(harness.agent.cacheStore().find("/s"), nullptr);
    EXPECT_TRUE(harness.storage.topics().empty());
}

TEST(CollectAgent, StopUnsubscribes) {
    AgentHarness harness;
    EXPECT_TRUE(harness.agent.running());
    harness.agent.stop();
    EXPECT_FALSE(harness.agent.running());
    harness.broker.publish({"/s", {{1, 1.0}}});
    EXPECT_EQ(harness.agent.messagesReceived(), 0u);
}

TEST(CollectAgent, StartIsIdempotent) {
    AgentHarness harness;
    harness.agent.start();  // second start: must not double-subscribe
    harness.broker.publish({"/s", {{1, 1.0}}});
    EXPECT_EQ(harness.agent.messagesReceived(), 1u);
}

TEST(CollectAgent, EndToEndFromPusher) {
    // The canonical DCDB data flow: Pusher -> broker -> Collect Agent ->
    // storage, all in-process.
    AgentHarness harness;
    auto pusher = makeTesterPusher(&harness.broker, 8);
    for (int tick = 1; tick <= 5; ++tick) {
        pusher->sampleOnce(tick * kNsPerSec);
    }
    EXPECT_EQ(harness.agent.messagesReceived(), 40u);
    EXPECT_EQ(harness.storage.stats().reading_count, 40u);
    const auto series = harness.storage.query("/test/test0", 0, 100 * kNsPerSec);
    ASSERT_EQ(series.size(), 5u);
    EXPECT_DOUBLE_EQ(series.back().value, 5.0);
}

TEST(CollectAgent, AsyncBrokerDataFlow) {
    mqtt::AsyncBroker broker;
    storage::StorageBackend storage;
    CollectAgent agent({}, broker, storage);
    agent.start();
    for (int i = 1; i <= 20; ++i) {
        broker.publish({"/s", {{i * kNsPerSec, static_cast<double>(i)}}});
    }
    broker.flush();
    EXPECT_EQ(agent.messagesReceived(), 20u);
    EXPECT_EQ(storage.query("/s", 0, 100 * kNsPerSec).size(), 20u);
}

}  // namespace
}  // namespace wm::collectagent
