// Differential tests of the sharded ingest/storage plane
// (docs/PERFORMANCE.md, "Sharding the ingest and storage planes"): for
// every shard count the sharded deployment must be *bit-identical* to the
// unsharded build on the read path — same query results, same latest, same
// sorted topic lists, same CSV dump bytes, same RangeStats — because a
// topic lives in exactly one shard and whole-store operations re-merge in
// the unsharded order. Also covers the stable shard key, the subtree
// round-robin deal shared with the capacity analyzer, per-shard WAL
// recovery, and the end-to-end broker -> sharded-agents -> sharded-storage
// pipeline against the single-agent reference.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "collectagent/collect_agent.h"
#include "core/query_engine.h"
#include "mqtt/broker.h"
#include "sensors/sensor_cache.h"
#include "sensors/topic_table.h"
#include "storage/shard_map.h"
#include "storage/sharded_storage_backend.h"
#include "storage/storage_backend.h"

namespace wm::storage {
namespace {

using common::kNsPerSec;
using common::TimestampNs;
using sensors::Reading;

/// Deterministic 64-bit LCG; the workload must be identical on both sides
/// of every differential pair.
struct Lcg {
    std::uint64_t state = 0x853c49e6748fea9bULL;
    std::uint64_t next() {
        state = state * 6364136223846793005ULL + 1442695040888963407ULL;
        return state >> 33;
    }
};

/// A topic universe spanning several subtrees so every shard count in
/// [1, 8] sees a non-trivial distribution.
std::vector<std::string> workloadTopics() {
    std::vector<std::string> topics;
    for (int rack = 0; rack < 4; ++rack) {
        for (int node = 0; node < 3; ++node) {
            const std::string base = "/rack" + std::to_string(rack) +
                                     "/chassis0/server" + std::to_string(node);
            topics.push_back(base + "/power");
            topics.push_back(base + "/temp");
            topics.push_back(base + "/cpu0/instr");
        }
    }
    topics.push_back("/facility/pdu0/power");
    topics.push_back("/facility/crac0/temp");
    return topics;
}

/// Applies the same pseudo-random insert stream (single inserts, batches,
/// out-of-order timestamps) to any Storage implementation.
void applyWorkload(Storage& storage, const std::vector<std::string>& topics) {
    Lcg rng;
    for (int round = 0; round < 20; ++round) {
        for (std::size_t i = 0; i < topics.size(); ++i) {
            const TimestampNs ts =
                static_cast<TimestampNs>(1 + rng.next() % 1000) * kNsPerSec;
            const double value = static_cast<double>(rng.next() % 100000) / 7.0;
            if (round % 3 == 0) {
                sensors::ReadingVector batch;
                batch.push_back({ts, value});
                batch.push_back({ts + kNsPerSec / 2, value + 1.0});
                storage.insertBatch(topics[i], batch);
            } else {
                storage.insert(topics[i], {ts, value});
            }
        }
    }
}

std::string slurp(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    std::ostringstream out;
    out << in.rdbuf();
    return out.str();
}

std::string tempPath(const std::string& leaf) {
    return (std::filesystem::path(::testing::TempDir()) / leaf).string();
}

void expectReadingsEqual(const sensors::ReadingVector& a,
                         const sensors::ReadingVector& b,
                         const std::string& context) {
    ASSERT_EQ(a.size(), b.size()) << context;
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].timestamp, b[i].timestamp) << context << " index " << i;
        EXPECT_EQ(a[i].value, b[i].value) << context << " index " << i;
    }
}

// For every shard count, the sharded backend must answer every read
// exactly like the unsharded reference fed the same stream: range queries,
// latest, sorted topic lists, wildcard matches, and the CSV dump bytes.
TEST(ShardedStorage, BitIdenticalToUnshardedForEveryShardCount) {
    const auto topics = workloadTopics();
    StorageBackend reference;
    applyWorkload(reference, topics);

    for (std::size_t shard_count = 1; shard_count <= 8; ++shard_count) {
        SCOPED_TRACE("shards=" + std::to_string(shard_count));
        ShardedStorageBackend sharded(shard_count);
        applyWorkload(sharded, topics);

        EXPECT_EQ(sharded.topics(), reference.topics());
        EXPECT_EQ(sharded.topicsMatching("/rack1/#"),
                  reference.topicsMatching("/rack1/#"));
        EXPECT_EQ(sharded.topicsMatching("/+/pdu0/power"),
                  reference.topicsMatching("/+/pdu0/power"));

        for (const auto& topic : topics) {
            expectReadingsEqual(sharded.query(topic, 0, 2000 * kNsPerSec),
                                reference.query(topic, 0, 2000 * kNsPerSec),
                                topic + " full range");
            expectReadingsEqual(
                sharded.query(topic, 250 * kNsPerSec, 750 * kNsPerSec),
                reference.query(topic, 250 * kNsPerSec, 750 * kNsPerSec),
                topic + " partial range");
            const auto sharded_latest = sharded.latest(topic);
            const auto reference_latest = reference.latest(topic);
            ASSERT_EQ(sharded_latest.has_value(), reference_latest.has_value());
            if (sharded_latest) {
                EXPECT_EQ(sharded_latest->timestamp, reference_latest->timestamp);
                EXPECT_EQ(sharded_latest->value, reference_latest->value);
            }
        }

        const auto sharded_stats = sharded.stats();
        const auto reference_stats = reference.stats();
        EXPECT_EQ(sharded_stats.sensor_count, reference_stats.sensor_count);
        EXPECT_EQ(sharded_stats.reading_count, reference_stats.reading_count);
        EXPECT_EQ(sharded_stats.inserts, reference_stats.inserts);

        const std::string ref_csv = tempPath("shard_ref.csv");
        const std::string sharded_csv =
            tempPath("shard_" + std::to_string(shard_count) + ".csv");
        ASSERT_TRUE(reference.dumpCsv(ref_csv));
        ASSERT_TRUE(sharded.dumpCsv(sharded_csv));
        EXPECT_EQ(slurp(sharded_csv), slurp(ref_csv)) << "CSV dump differs";
    }
}

// Whole-store stats and memory accounting are the sums of the per-shard
// backends (the /status endpoint and the wm-cost cross-validation consume
// these).
TEST(ShardedStorage, StatsAndMemoryAggregateAcrossShards) {
    const auto topics = workloadTopics();
    ShardedStorageBackend sharded(4);
    applyWorkload(sharded, topics);

    StorageStats sum;
    std::size_t memory_sum = 0;
    for (std::size_t i = 0; i < sharded.shardCount(); ++i) {
        const auto shard_stats = sharded.shard(i).stats();
        sum.sensor_count += shard_stats.sensor_count;
        sum.reading_count += shard_stats.reading_count;
        sum.inserts += shard_stats.inserts;
        memory_sum += sharded.shard(i).memoryBytes();
    }
    const auto whole = sharded.stats();
    EXPECT_EQ(whole.sensor_count, sum.sensor_count);
    EXPECT_EQ(whole.reading_count, sum.reading_count);
    EXPECT_EQ(whole.inserts, sum.inserts);
    // Every backend counts its own struct in memoryBytes(); the sharded
    // wrapper adds its footprint on top of the per-shard sums.
    EXPECT_EQ(sharded.memoryBytes(), memory_sum + sizeof(ShardedStorageBackend));
}

// The shard key hashes the topic *string*, so it is stable across
// processes, tables, and backend instances — the property per-shard WAL
// replay depends on.
TEST(ShardMapTest, ShardKeyIsStableAndTableIndependent) {
    const auto topics = workloadTopics();
    sensors::TopicTable table_a;
    sensors::TopicTable table_b;
    ShardMap map_a(4, &table_a);
    ShardMap map_b(4, &table_b);
    for (const auto& topic : topics) {
        const std::size_t expected = shardOfTopic(topic, 4);
        EXPECT_EQ(map_a.shardOf(topic), expected) << topic;
        EXPECT_EQ(map_b.shardOf(topic), expected) << topic;
        // Memoized second lookup answers the same.
        EXPECT_EQ(map_a.shardOf(topic), expected) << topic;
    }
    // All shards of a 4-way map over this universe are populated.
    std::vector<bool> seen(4, false);
    for (const auto& topic : topics) seen[shardOfTopic(topic, 4)] = true;
    for (std::size_t i = 0; i < seen.size(); ++i) {
        EXPECT_TRUE(seen[i]) << "shard " << i << " owns no workload topic";
    }
}

// The subtree deal is sorted + round-robin, and must agree between the
// daemon (slash-prefixed node paths) and the capacity analyzer (slashless
// prefixes) — the leading '/' must not change the deal.
TEST(ShardMapTest, AssignSubtreeShardsIsDeterministicRoundRobin) {
    const auto dealt = assignSubtreeShards(
        {"/rack2", "/rack0", "/facility", "/rack1", "/rack0"}, 2);
    ASSERT_EQ(dealt.size(), 4u);  // deduplicated
    EXPECT_EQ(dealt.at("/facility"), 0u);
    EXPECT_EQ(dealt.at("/rack0"), 1u);
    EXPECT_EQ(dealt.at("/rack1"), 0u);
    EXPECT_EQ(dealt.at("/rack2"), 1u);

    const auto slashless =
        assignSubtreeShards({"rack2", "rack0", "facility", "rack1"}, 2);
    for (const auto& [prefix, shard] : dealt) {
        EXPECT_EQ(slashless.at(prefix.substr(1)), shard) << prefix;
    }

    // One shard, degenerate but legal: everything lands on shard 0.
    for (const auto& [prefix, shard] : assignSubtreeShards({"a", "b"}, 1)) {
        EXPECT_EQ(shard, 0u) << prefix;
    }
}

// Per-shard durability: a sharded backend killed after ingest recovers the
// exact dataset from its shard-NNN WALs, duplicate-free, and a second
// recovery converges to the same state (replay idempotence).
TEST(ShardedStorage, PerShardWalRecoveryRoundTrip) {
    const auto topics = workloadTopics();
    const std::string dir = tempPath("shard_recovery");
    std::filesystem::remove_all(dir);

    StorageBackend reference;
    applyWorkload(reference, topics);

    {
        ShardedStorageBackend sharded(3);
        DurabilityOptions options;
        options.directory = dir;
        ASSERT_TRUE(sharded.enableDurability(options));
        applyWorkload(sharded, topics);
        // No checkpoint: recovery must come purely from the per-shard WALs.
    }
    for (std::size_t i = 0; i < 3; ++i) {
        char leaf[16];
        std::snprintf(leaf, sizeof(leaf), "shard-%03zu", i);
        EXPECT_TRUE(std::filesystem::exists(std::filesystem::path(dir) / leaf))
            << leaf;
    }

    for (int recovery = 0; recovery < 2; ++recovery) {
        SCOPED_TRACE("recovery " + std::to_string(recovery));
        ShardedStorageBackend recovered(3);
        DurabilityOptions options;
        options.directory = dir;
        ASSERT_TRUE(recovered.enableDurability(options));
        EXPECT_GT(recovered.durabilityStats().wal_records_replayed, 0u);
        EXPECT_EQ(recovered.topics(), reference.topics());
        const auto stats = recovered.stats();
        EXPECT_EQ(stats.reading_count, reference.stats().reading_count)
            << "duplicate or lost readings after replay";
        for (const auto& topic : topics) {
            expectReadingsEqual(recovered.query(topic, 0, 2000 * kNsPerSec),
                                reference.query(topic, 0, 2000 * kNsPerSec),
                                topic);
        }
    }
    std::filesystem::remove_all(dir);
}

// A topic must live in exactly one shard's WAL: re-dealing the same stream
// into backends of *different* shard counts pointed at different
// directories still converges to the same logical dataset.
TEST(ShardedStorage, RecoveryAgreesAcrossShardCounts) {
    const auto topics = workloadTopics();
    const std::string dir2 = tempPath("shard_rec2");
    const std::string dir5 = tempPath("shard_rec5");
    std::filesystem::remove_all(dir2);
    std::filesystem::remove_all(dir5);
    for (const auto& [count, dir] :
         std::vector<std::pair<std::size_t, std::string>>{{2, dir2}, {5, dir5}}) {
        ShardedStorageBackend sharded(count);
        DurabilityOptions options;
        options.directory = dir;
        ASSERT_TRUE(sharded.enableDurability(options));
        applyWorkload(sharded, topics);
        ASSERT_TRUE(sharded.checkpointNow());
    }
    ShardedStorageBackend rec2(2);
    ShardedStorageBackend rec5(5);
    DurabilityOptions opt2;
    opt2.directory = dir2;
    DurabilityOptions opt5;
    opt5.directory = dir5;
    ASSERT_TRUE(rec2.enableDurability(opt2));
    ASSERT_TRUE(rec5.enableDurability(opt5));
    EXPECT_EQ(rec2.topics(), rec5.topics());
    for (const auto& topic : topics) {
        expectReadingsEqual(rec2.query(topic, 0, 2000 * kNsPerSec),
                            rec5.query(topic, 0, 2000 * kNsPerSec), topic);
    }
    std::filesystem::remove_all(dir2);
    std::filesystem::remove_all(dir5);
}

// End-to-end differential of the full sharded pipeline: the same sequenced
// publish stream through [broker -> 2 Collect Agents with disjoint subtree
// filters -> ShardedStorageBackend(4)] and through the single-agent
// unsharded reference must store bit-identical data, including replayed
// duplicates being dropped exactly-once on both sides.
TEST(ShardedPipeline, AgentsWithDisjointFiltersMatchSingleAgent) {
    const auto topics = workloadTopics();

    // Reference: one agent, whole-tree filter, unsharded storage.
    mqtt::Broker ref_broker;
    StorageBackend ref_storage;
    collectagent::CollectAgent ref_agent(
        collectagent::CollectAgentConfig{.name = "ref"}, ref_broker, ref_storage);
    ref_agent.start();

    // Sharded: rack agents split the subtrees the way wintermuted deals
    // them (sorted prefixes, round-robin over 2 agents).
    mqtt::Broker sharded_broker;
    ShardedStorageBackend sharded_storage(4);
    collectagent::CollectAgentConfig agent0;
    agent0.name = "collectagent-0";
    agent0.filters = {"/facility/#", "/rack1/#", "/rack3/#"};
    collectagent::CollectAgentConfig agent1;
    agent1.name = "collectagent-1";
    agent1.filters = {"/rack0/#", "/rack2/#"};
    collectagent::CollectAgent sharded_agent0(agent0, sharded_broker,
                                              sharded_storage);
    collectagent::CollectAgent sharded_agent1(agent1, sharded_broker,
                                              sharded_storage);
    sharded_agent0.start();
    sharded_agent1.start();

    // Identical sequenced stream into both brokers, with every third
    // message replayed (at-least-once) to exercise the dedup path.
    Lcg rng;
    std::uint64_t sequence = 0;
    for (int round = 0; round < 5; ++round) {
        for (const auto& topic : topics) {
            mqtt::Message message;
            message.topic = topic;
            message.sequence = ++sequence;
            const TimestampNs ts =
                static_cast<TimestampNs>(1 + rng.next() % 500) * kNsPerSec;
            message.readings.push_back(
                {ts, static_cast<double>(rng.next() % 1000)});
            ref_broker.publish(message);
            sharded_broker.publish(message);
            if (round % 3 == 0) {  // duplicate delivery
                ref_broker.publish(message);
                sharded_broker.publish(message);
            }
        }
    }

    EXPECT_EQ(sharded_agent0.dedupDrops() + sharded_agent1.dedupDrops(),
              ref_agent.dedupDrops());
    EXPECT_GT(ref_agent.dedupDrops(), 0u);
    EXPECT_EQ(sharded_agent0.readingsStored() + sharded_agent1.readingsStored(),
              ref_agent.readingsStored());

    EXPECT_EQ(sharded_storage.topics(), ref_storage.topics());
    const auto sharded_stats = sharded_storage.stats();
    const auto ref_stats = ref_storage.stats();
    EXPECT_EQ(sharded_stats.reading_count, ref_stats.reading_count);
    for (const auto& topic : topics) {
        expectReadingsEqual(sharded_storage.query(topic, 0, 1000 * kNsPerSec),
                            ref_storage.query(topic, 0, 1000 * kNsPerSec), topic);
    }

    // Query Engine differential: one engine over the two shard agents'
    // cache stores, one over the reference agent's single store. Reads of
    // every topic must agree bit for bit, wherever the topic's cache lives.
    core::QueryEngine sharded_engine;
    sharded_engine.setCacheStore(&sharded_agent0.cacheStore());
    sharded_engine.addCacheStore(&sharded_agent1.cacheStore());
    sharded_engine.setStorage(&sharded_storage);
    core::QueryEngine ref_engine;
    ref_engine.setCacheStore(&ref_agent.cacheStore());
    ref_engine.setStorage(&ref_storage);
    EXPECT_EQ(sharded_engine.rebuildTree(), ref_engine.rebuildTree());
    EXPECT_EQ(sharded_engine.cacheStoreCount(), 2u);

    for (const auto& topic : topics) {
        expectReadingsEqual(
            sharded_engine.queryAbsolute(topic, 0, 1000 * kNsPerSec),
            ref_engine.queryAbsolute(topic, 0, 1000 * kNsPerSec), topic);
        const auto sharded_latest = sharded_engine.latest(topic);
        const auto ref_latest = ref_engine.latest(topic);
        ASSERT_EQ(sharded_latest.has_value(), ref_latest.has_value()) << topic;
        if (sharded_latest) {
            EXPECT_EQ(sharded_latest->timestamp, ref_latest->timestamp) << topic;
            EXPECT_EQ(sharded_latest->value, ref_latest->value) << topic;
        }
        const auto sharded_range =
            sharded_engine.statsRelative(topic, 1000 * kNsPerSec);
        const auto ref_range = ref_engine.statsRelative(topic, 1000 * kNsPerSec);
        ASSERT_EQ(sharded_range.has_value(), ref_range.has_value()) << topic;
        if (sharded_range) {
            EXPECT_EQ(sharded_range->count, ref_range->count) << topic;
            EXPECT_EQ(sharded_range->sum, ref_range->sum) << topic;
            EXPECT_EQ(sharded_range->min, ref_range->min) << topic;
            EXPECT_EQ(sharded_range->max, ref_range->max) << topic;
            EXPECT_EQ(sharded_range->first.timestamp, ref_range->first.timestamp)
                << topic;
            EXPECT_EQ(sharded_range->last.timestamp, ref_range->last.timestamp)
                << topic;
        }
    }

    sharded_agent0.stop();
    sharded_agent1.stop();
    ref_agent.stop();
}

}  // namespace
}  // namespace wm::storage
