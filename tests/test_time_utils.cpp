#include "common/time_utils.h"

#include <gtest/gtest.h>

namespace wm::common {
namespace {

TEST(ParseDuration, PlainNumbersAreMilliseconds) {
    EXPECT_EQ(parseDuration("250"), 250 * kNsPerMs);
    EXPECT_EQ(parseDuration("0"), 0);
}

struct DurationCase {
    std::string text;
    TimestampNs expected;
};

class DurationParsing : public ::testing::TestWithParam<DurationCase> {};

TEST_P(DurationParsing, Parses) {
    EXPECT_EQ(parseDuration(GetParam().text), GetParam().expected);
}

INSTANTIATE_TEST_SUITE_P(
    Units, DurationParsing,
    ::testing::Values(DurationCase{"100ns", 100}, DurationCase{"5us", 5 * kNsPerUs},
                      DurationCase{"250ms", 250 * kNsPerMs}, DurationCase{"1s", kNsPerSec},
                      DurationCase{"2m", 2 * kNsPerMin}, DurationCase{"12h", 12 * kNsPerHour},
                      DurationCase{"14d", 14 * kNsPerDay},
                      DurationCase{"1.5s", kNsPerSec + 500 * kNsPerMs},
                      DurationCase{"0.5ms", 500 * kNsPerUs}));

TEST(ParseDuration, RejectsMalformedInput) {
    EXPECT_FALSE(parseDuration("").has_value());
    EXPECT_FALSE(parseDuration("abc").has_value());
    EXPECT_FALSE(parseDuration("1x").has_value());
    EXPECT_FALSE(parseDuration("1.2.3s").has_value());
    EXPECT_FALSE(parseDuration("ms").has_value());
}

TEST(FormatDuration, PicksLargestFittingUnit) {
    EXPECT_EQ(formatDuration(250 * kNsPerMs), "250ms");
    EXPECT_EQ(formatDuration(kNsPerSec), "1s");
    EXPECT_EQ(formatDuration(90 * kNsPerSec), "1.50m");
    EXPECT_EQ(formatDuration(2 * kNsPerDay), "2d");
    EXPECT_EQ(formatDuration(500), "500ns");
}

TEST(VirtualClock, AdvancesManually) {
    VirtualClock clock(1000);
    EXPECT_EQ(clock.now(), 1000);
    clock.advance(500);
    EXPECT_EQ(clock.now(), 1500);
    clock.set(42);
    EXPECT_EQ(clock.now(), 42);
}

TEST(GlobalClock, OverrideAndRestore) {
    VirtualClock clock(12345);
    setGlobalClock(&clock);
    EXPECT_EQ(nowNs(), 12345);
    clock.advance(5);
    EXPECT_EQ(nowNs(), 12350);
    setGlobalClock(nullptr);
    // Back on the system clock: strictly positive, far from the virtual value.
    EXPECT_GT(nowNs(), TimestampNs{1'000'000'000'000'000});
}

TEST(SystemClock, IsMonotonicEnough) {
    SystemClock clock;
    const TimestampNs a = clock.now();
    const TimestampNs b = clock.now();
    EXPECT_LE(a, b);
}

}  // namespace
}  // namespace wm::common
