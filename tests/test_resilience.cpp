// Resilience-layer tests (docs/RESILIENCE.md): broker outage with pusher
// buffering and recovery, storage failures with collect-agent quarantine,
// exact backoff schedules against a virtual clock, and dead-subscriber
// eviction. Every scenario is deterministic: fixed seeds, injected clocks,
// no sleeps — two consecutive runs produce identical fault-hit counters.

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "common/fault.h"
#include "common/retry.h"
#include "common/time_utils.h"
#include "test_fixtures.h"

namespace wm {
namespace {

using common::kNsPerMs;
using common::kNsPerSec;
using common::TimestampNs;
using common::VirtualClock;
using wm::testing::AgentHarness;
using wm::testing::CountingSubscriber;
using wm::testing::makeTesterPusher;

// ---------------------------------------------------------------------------
// Backoff schedules
// ---------------------------------------------------------------------------

TEST(Resilience, BackoffProducesExactSequenceWithoutJitter) {
    common::RetryPolicy policy;
    policy.initial_backoff_ns = 100 * kNsPerMs;
    policy.multiplier = 2.0;
    policy.max_backoff_ns = 1 * kNsPerSec;
    policy.jitter = 0.0;

    common::Backoff backoff(policy);
    std::vector<TimestampNs> delays;
    for (int i = 0; i < 6; ++i) delays.push_back(backoff.nextDelayNs());
    EXPECT_EQ(delays, (std::vector<TimestampNs>{
                          100 * kNsPerMs, 200 * kNsPerMs, 400 * kNsPerMs,
                          800 * kNsPerMs, 1 * kNsPerSec, 1 * kNsPerSec}));

    backoff.reset();
    EXPECT_EQ(backoff.nextDelayNs(), 100 * kNsPerMs);
}

TEST(Resilience, JitteredBackoffIsDeterministicAndBounded) {
    common::RetryPolicy policy;
    policy.initial_backoff_ns = 100 * kNsPerMs;
    policy.max_backoff_ns = 5 * kNsPerSec;
    policy.jitter = 0.1;

    std::vector<TimestampNs> runs[2];
    for (int run = 0; run < 2; ++run) {
        common::Rng rng(7);
        common::Backoff backoff(policy, &rng);
        for (int i = 0; i < 5; ++i) runs[run].push_back(backoff.nextDelayNs());
    }
    EXPECT_EQ(runs[0], runs[1]);  // same seed, same schedule
    TimestampNs nominal = 100 * kNsPerMs;
    for (int i = 0; i < 5; ++i) {
        EXPECT_GE(runs[0][i], static_cast<TimestampNs>(0.9 * nominal));
        EXPECT_LE(runs[0][i], static_cast<TimestampNs>(1.1 * nominal));
        nominal = std::min<TimestampNs>(nominal * 2, policy.max_backoff_ns);
    }
}

TEST(Resilience, RetryWithBackoffAdvancesVirtualClockOnly) {
    common::RetryPolicy policy;
    policy.max_attempts = 5;
    policy.initial_backoff_ns = 100 * kNsPerMs;
    policy.jitter = 0.0;

    VirtualClock clock;
    common::Rng rng(1);
    int calls = 0;
    std::vector<TimestampNs> sleeps;
    const auto result = common::retryWithBackoff(
        policy, rng,
        [&] { return ++calls >= 3; },  // fails twice, then succeeds
        [&](TimestampNs delay) {
            sleeps.push_back(delay);
            clock.advance(delay);
        });
    EXPECT_TRUE(result.ok);
    EXPECT_EQ(result.attempts, 3);
    EXPECT_EQ(sleeps, (std::vector<TimestampNs>{100 * kNsPerMs, 200 * kNsPerMs}));
    EXPECT_EQ(clock.now(), 300 * kNsPerMs);
    EXPECT_EQ(result.total_backoff_ns, 300 * kNsPerMs);
}

TEST(Resilience, RetryWithBackoffGivesUpAfterMaxAttempts) {
    common::RetryPolicy policy;
    policy.max_attempts = 4;
    policy.jitter = 0.0;
    common::Rng rng(1);
    int calls = 0;
    const auto result = common::retryWithBackoff(
        policy, rng, [&] { ++calls; return false; }, [](TimestampNs) {});
    EXPECT_FALSE(result.ok);
    EXPECT_EQ(result.attempts, 4);
    EXPECT_EQ(calls, 4);
}

// ---------------------------------------------------------------------------
// Pusher vs. broker outage
// ---------------------------------------------------------------------------

// Runs a 10-tick (1 Hz) pusher session against a broker whose publish path
// fails during [2 s, 5 s). Writes the injector fire count to *fires for
// determinism checks (void so gtest ASSERTs work).
void runBrokerOutageScenario(std::size_t num_sensors, std::uint64_t* fires) {
    VirtualClock clock;
    common::fault::FaultInjector injector(0xD15EA5E, &clock);
    ASSERT_TRUE(injector.armFromText("broker.publish", "fail window=2s..5s"));
    common::fault::ScopedInjector scoped(injector);

    AgentHarness harness;
    auto pusher = makeTesterPusher(&harness.broker, num_sensors);

    constexpr int kTicks = 10;
    for (int tick = 0; tick < kTicks; ++tick) {
        const TimestampNs t = tick * kNsPerSec;
        clock.set(t);
        pusher->sampleOnce(t);
    }

    // Outage ticks 2..4 buffered 3 * num_sensors readings; the tick at 5 s
    // drained them. Nothing was lost and nothing was duplicated.
    EXPECT_EQ(pusher->bufferedReadings(), 0u);
    EXPECT_EQ(pusher->readingsDropped(), 0u);
    EXPECT_GE(pusher->publishRetries(), 1u);
    EXPECT_EQ(pusher->messagesPublished(), kTicks * num_sensors);
    EXPECT_EQ(harness.agent.messagesReceived(), kTicks * num_sensors);
    EXPECT_EQ(harness.agent.readingsStored(), kTicks * num_sensors);

    // Per-sensor: every tick's reading arrived exactly once, in time order.
    for (std::size_t i = 0; i < num_sensors; ++i) {
        const std::string topic = "/test/test" + std::to_string(i);
        const auto readings =
            harness.storage.query(topic, 0, kTicks * kNsPerSec);
        ASSERT_EQ(readings.size(), static_cast<std::size_t>(kTicks)) << topic;
        for (std::size_t k = 1; k < readings.size(); ++k) {
            EXPECT_LT(readings[k - 1].timestamp, readings[k].timestamp);
            EXPECT_LT(readings[k - 1].value, readings[k].value);
        }
    }
    *fires = injector.fires("broker.publish");
}

TEST(Resilience, PusherBuffersThroughBrokerOutageWithoutDuplicates) {
    std::uint64_t first = 0;
    std::uint64_t second = 0;
    runBrokerOutageScenario(4, &first);
    runBrokerOutageScenario(4, &second);
    EXPECT_GT(first, 0u);
    EXPECT_EQ(first, second);  // run-twice determinism (fixed seed + clock)
}

TEST(Resilience, PusherBufferDropsOldestBeyondCap) {
    common::fault::FaultInjector injector(1);
    ASSERT_TRUE(injector.armFromText("broker.publish", "fail"));
    common::fault::ScopedInjector scoped(injector);

    mqtt::Broker broker;
    pusher::PusherConfig config;
    config.publish_buffer_max = 5;
    auto pusher = makeTesterPusher(&broker, 2, std::move(config));

    for (int tick = 0; tick < 10; ++tick) {
        pusher->sampleOnce(tick * kNsPerSec);
    }
    // 20 readings refused, 5 retained (newest), 15 dropped oldest-first.
    EXPECT_EQ(pusher->bufferedReadings(), 5u);
    EXPECT_EQ(pusher->readingsDropped(), 15u);
    EXPECT_EQ(pusher->messagesPublished(), 0u);
}

TEST(Resilience, PusherWithBufferingDisabledDropsImmediately) {
    common::fault::FaultInjector injector(1);
    ASSERT_TRUE(injector.armFromText("broker.publish", "fail"));
    common::fault::ScopedInjector scoped(injector);

    mqtt::Broker broker;
    pusher::PusherConfig config;
    config.publish_buffer_max = 0;
    auto pusher = makeTesterPusher(&broker, 3, std::move(config));
    pusher->sampleOnce(0);
    EXPECT_EQ(pusher->bufferedReadings(), 0u);
    EXPECT_EQ(pusher->readingsDropped(), 3u);
}

// ---------------------------------------------------------------------------
// Collect agent vs. storage failures
// ---------------------------------------------------------------------------

TEST(Resilience, StorageFailingEveryThirdInsertQuarantinesOnlyRefused) {
    common::fault::FaultInjector injector(1);
    ASSERT_TRUE(injector.armFromText("storage.insert", "fail every=3"));
    common::fault::ScopedInjector scoped(injector);

    AgentHarness harness;
    const std::string topic = "/node0/cpu/temp";
    for (int i = 0; i < 9; ++i) {
        mqtt::Message message{topic, {{i * kNsPerSec, static_cast<double>(i)}}};
        EXPECT_GE(harness.broker.publish(message), 0);
    }
    // Inserts 3, 6, 9 were refused: 6 stored, 3 quarantined, none lost.
    EXPECT_EQ(harness.agent.readingsStored(), 6u);
    EXPECT_EQ(harness.agent.quarantinedReadings(), 3u);
    EXPECT_EQ(harness.agent.storageErrors(topic), 3u);
    EXPECT_EQ(harness.agent.storageErrorsTotal(), 3u);
    EXPECT_EQ(harness.storage.stats().rejected_inserts, 3u);
    EXPECT_EQ(harness.storage.query(topic, 0, 9 * kNsPerSec).size(), 6u);

    // Storage recovers: the quarantine drains completely, nothing was lost.
    injector.disarm("storage.insert");
    EXPECT_EQ(harness.agent.retryQuarantined(), 3u);
    EXPECT_EQ(harness.agent.quarantinedReadings(), 0u);
    EXPECT_EQ(harness.agent.readingsStored(), 9u);
    const auto readings = harness.storage.query(topic, 0, 9 * kNsPerSec);
    ASSERT_EQ(readings.size(), 9u);
    for (std::size_t k = 1; k < readings.size(); ++k) {
        EXPECT_LT(readings[k - 1].timestamp, readings[k].timestamp);
    }
}

TEST(Resilience, RetryQuarantinedKeepsRefusedReadingsQueued) {
    common::fault::FaultInjector injector(1);
    ASSERT_TRUE(injector.armFromText("storage.insert", "fail"));
    common::fault::ScopedInjector scoped(injector);

    AgentHarness harness;
    mqtt::Message message{"/node0/s", {{1, 1.0}, {2, 2.0}}};
    harness.broker.publish(message);
    EXPECT_EQ(harness.agent.quarantinedReadings(), 2u);
    // Storage still down: nothing drains, nothing is lost.
    EXPECT_EQ(harness.agent.retryQuarantined(), 0u);
    EXPECT_EQ(harness.agent.quarantinedReadings(), 2u);
}

TEST(Resilience, QuarantineOverflowDropsOldest) {
    common::fault::FaultInjector injector(1);
    ASSERT_TRUE(injector.armFromText("storage.insert", "fail"));
    common::fault::ScopedInjector scoped(injector);

    collectagent::CollectAgentConfig config;
    config.quarantine_max = 4;
    AgentHarness harness(std::move(config));
    for (int i = 0; i < 6; ++i) {
        mqtt::Message message{"/node0/s", {{i, static_cast<double>(i)}}};
        harness.broker.publish(message);
    }
    EXPECT_EQ(harness.agent.quarantinedReadings(), 4u);
    EXPECT_EQ(harness.agent.quarantineOverflow(), 2u);

    // The survivors are the newest four readings (2..5).
    injector.disarm("storage.insert");
    EXPECT_EQ(harness.agent.retryQuarantined(), 4u);
    const auto readings = harness.storage.query("/node0/s", 0, 10);
    ASSERT_EQ(readings.size(), 4u);
    EXPECT_EQ(readings.front().timestamp, 2);
    EXPECT_EQ(readings.back().timestamp, 5);
}

TEST(Resilience, CachesStayFreshDuringStorageOutage) {
    common::fault::FaultInjector injector(1);
    ASSERT_TRUE(injector.armFromText("storage.insert", "fail"));
    common::fault::ScopedInjector scoped(injector);

    AgentHarness harness;
    mqtt::Message message{"/node0/s", {{5 * kNsPerSec, 42.0}}};
    harness.broker.publish(message);
    // Storage refused the reading, but the agent-side cache still serves it
    // (graceful degradation: the Query Engine keeps seeing recent data).
    const auto* cache = harness.agent.cacheStore().find("/node0/s");
    ASSERT_NE(cache, nullptr);
    const auto latest = cache->latest();
    ASSERT_TRUE(latest.has_value());
    EXPECT_EQ(latest->value, 42.0);
    EXPECT_FALSE(harness.storage.latest("/node0/s").has_value());
}

// ---------------------------------------------------------------------------
// Broker dead-subscriber eviction
// ---------------------------------------------------------------------------

TEST(Resilience, DeadSubscriberEvictedAfterFailureBudget) {
    mqtt::Broker broker;
    broker.setSubscriberFailureBudget(3);

    CountingSubscriber healthy(broker, "#");
    const auto dead = broker.subscribe(
        "#", [](const mqtt::Message&) { throw std::runtime_error("dead client"); });
    ASSERT_NE(dead, 0u);
    EXPECT_EQ(broker.subscriptionCount(), 2u);

    for (int i = 0; i < 5; ++i) {
        mqtt::Message message{"/node0/s", {{i, static_cast<double>(i)}}};
        broker.publish(message);
    }
    // The throwing handler failed on deliveries 1..3 and was then evicted;
    // the healthy subscriber saw every message throughout.
    EXPECT_EQ(broker.subscriptionCount(), 1u);
    EXPECT_EQ(broker.evictedSubscribers(), 1u);
    EXPECT_EQ(broker.deliveryFailures(), 3u);
    EXPECT_EQ(healthy.messages(), 5u);
    EXPECT_FALSE(broker.unsubscribe(dead));  // already gone
}

TEST(Resilience, FlakySubscriberSurvivesWhenFailuresAreNotConsecutive) {
    mqtt::Broker broker;
    broker.setSubscriberFailureBudget(3);

    int calls = 0;
    const auto flaky = broker.subscribe("#", [&calls](const mqtt::Message&) {
        if (++calls % 2 == 1) throw std::runtime_error("flaky");
    });
    ASSERT_NE(flaky, 0u);
    for (int i = 0; i < 10; ++i) {
        mqtt::Message message{"/node0/s", {{i, 0.0}}};
        broker.publish(message);
    }
    // Every other delivery succeeds, so the consecutive count resets and
    // the subscriber is never evicted.
    EXPECT_EQ(broker.subscriptionCount(), 1u);
    EXPECT_EQ(broker.evictedSubscribers(), 0u);
    EXPECT_EQ(broker.deliveryFailures(), 5u);
}

TEST(Resilience, ZeroBudgetDisablesEviction) {
    mqtt::Broker broker;  // default budget: 0 (eviction off)
    broker.subscribe("#",
                     [](const mqtt::Message&) { throw std::runtime_error("dead"); });
    for (int i = 0; i < 10; ++i) {
        mqtt::Message message{"/node0/s", {{i, 0.0}}};
        broker.publish(message);
    }
    EXPECT_EQ(broker.subscriptionCount(), 1u);
    EXPECT_EQ(broker.deliveryFailures(), 10u);
    EXPECT_EQ(broker.evictedSubscribers(), 0u);
}

// ---------------------------------------------------------------------------
// Broker-side drops are observable and reconcile
// ---------------------------------------------------------------------------

TEST(Resilience, BrokerDropIsAcceptedButCounted) {
    common::fault::FaultInjector injector(1);
    ASSERT_TRUE(injector.armFromText("broker.deliver", "drop every=2"));
    common::fault::ScopedInjector scoped(injector);

    mqtt::Broker broker;
    CountingSubscriber subscriber(broker, "#");
    for (int i = 0; i < 10; ++i) {
        mqtt::Message message{"/node0/s", {{i, 0.0}}};
        EXPECT_GE(broker.publish(message), 0);  // accepted, maybe dropped
    }
    // published = delivered + dropped reconciles exactly.
    EXPECT_EQ(broker.publishedCount(), 10u);
    EXPECT_EQ(broker.droppedCount(), 5u);
    EXPECT_EQ(subscriber.messages(), 5u);
    EXPECT_EQ(subscriber.messages() + broker.droppedCount(),
              broker.publishedCount());
}

}  // namespace
}  // namespace wm
