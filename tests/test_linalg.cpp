#include "analytics/linalg.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"

namespace wm::analytics {
namespace {

TEST(Matrix, ConstructionAndIndexing) {
    Matrix m{{1.0, 2.0}, {3.0, 4.0}};
    EXPECT_EQ(m.rows(), 2u);
    EXPECT_EQ(m.cols(), 2u);
    EXPECT_DOUBLE_EQ(m(0, 1), 2.0);
    m(1, 0) = 9.0;
    EXPECT_DOUBLE_EQ(m(1, 0), 9.0);
}

TEST(Matrix, IdentityAndDiagonal) {
    const Matrix id = Matrix::identity(3);
    EXPECT_DOUBLE_EQ(id(1, 1), 1.0);
    EXPECT_DOUBLE_EQ(id(0, 2), 0.0);
    const Matrix d = Matrix::diagonal({2.0, 3.0});
    EXPECT_DOUBLE_EQ(d(0, 0), 2.0);
    EXPECT_DOUBLE_EQ(d(1, 1), 3.0);
    EXPECT_DOUBLE_EQ(d(0, 1), 0.0);
}

TEST(Matrix, Multiply) {
    const Matrix a{{1.0, 2.0}, {3.0, 4.0}};
    const Matrix b{{5.0, 6.0}, {7.0, 8.0}};
    const Matrix c = a * b;
    EXPECT_DOUBLE_EQ(c(0, 0), 19.0);
    EXPECT_DOUBLE_EQ(c(0, 1), 22.0);
    EXPECT_DOUBLE_EQ(c(1, 0), 43.0);
    EXPECT_DOUBLE_EQ(c(1, 1), 50.0);
}

TEST(Matrix, TransposeAndTrace) {
    const Matrix a{{1.0, 2.0, 3.0}, {4.0, 5.0, 6.0}};
    const Matrix t = a.transpose();
    EXPECT_EQ(t.rows(), 3u);
    EXPECT_DOUBLE_EQ(t(2, 1), 6.0);
    EXPECT_DOUBLE_EQ((a * t).trace(), 1 + 4 + 9 + 16 + 25 + 36);
}

TEST(Matrix, VectorMultiply) {
    const Matrix a{{1.0, 2.0}, {3.0, 4.0}};
    const Vector v = a.multiply({1.0, 1.0});
    ASSERT_EQ(v.size(), 2u);
    EXPECT_DOUBLE_EQ(v[0], 3.0);
    EXPECT_DOUBLE_EQ(v[1], 7.0);
}

TEST(Matrix, OuterProduct) {
    const Matrix o = Matrix::outer({1.0, 2.0}, 2.0);
    EXPECT_DOUBLE_EQ(o(0, 0), 2.0);
    EXPECT_DOUBLE_EQ(o(0, 1), 4.0);
    EXPECT_DOUBLE_EQ(o(1, 1), 8.0);
}

TEST(Cholesky, FactorisesSpdMatrix) {
    const Matrix a{{4.0, 2.0}, {2.0, 3.0}};
    const auto chol = Cholesky::decompose(a);
    ASSERT_TRUE(chol.has_value());
    const Matrix& l = chol->lower();
    // Reconstruct: L * L^T == A.
    const Matrix reconstructed = l * l.transpose();
    EXPECT_LT(reconstructed.maxAbsDiff(a), 1e-12);
}

TEST(Cholesky, RejectsNonSpd) {
    EXPECT_FALSE(Cholesky::decompose(Matrix{{1.0, 2.0}, {2.0, 1.0}}).has_value());
    EXPECT_FALSE(Cholesky::decompose(Matrix{{0.0}}).has_value());
    EXPECT_FALSE(Cholesky::decompose(Matrix(2, 3)).has_value());  // non-square
}

TEST(Cholesky, SolveRecoversSolution) {
    const Matrix a{{4.0, 2.0}, {2.0, 3.0}};
    const auto chol = Cholesky::decompose(a);
    ASSERT_TRUE(chol.has_value());
    const Vector x{1.5, -2.0};
    const Vector b = a.multiply(x);
    const Vector solved = chol->solve(b);
    EXPECT_NEAR(solved[0], x[0], 1e-12);
    EXPECT_NEAR(solved[1], x[1], 1e-12);
}

TEST(Cholesky, LogDetMatchesKnownValue) {
    // det([[4,2],[2,3]]) = 8.
    const auto chol = Cholesky::decompose(Matrix{{4.0, 2.0}, {2.0, 3.0}});
    ASSERT_TRUE(chol.has_value());
    EXPECT_NEAR(chol->logDet(), std::log(8.0), 1e-12);
}

TEST(Cholesky, InverseTimesOriginalIsIdentity) {
    const Matrix a{{5.0, 1.0, 0.5}, {1.0, 4.0, 0.2}, {0.5, 0.2, 3.0}};
    const auto chol = Cholesky::decompose(a);
    ASSERT_TRUE(chol.has_value());
    const Matrix product = a * chol->inverse();
    EXPECT_LT(product.maxAbsDiff(Matrix::identity(3)), 1e-10);
}

TEST(Cholesky, Mahalanobis2MatchesExplicitForm) {
    const Matrix a{{2.0, 0.3}, {0.3, 1.0}};
    const auto chol = Cholesky::decompose(a);
    ASSERT_TRUE(chol.has_value());
    const Vector x{1.0, 2.0};
    const Vector mu{0.5, 0.5};
    const Vector d = subtract(x, mu);
    const Vector solved = chol->solve(d);
    EXPECT_NEAR(chol->mahalanobis2(x, mu), dot(d, solved), 1e-12);
}

TEST(Cholesky, RandomSpdRoundTrips) {
    common::Rng rng(99);
    for (int trial = 0; trial < 20; ++trial) {
        const std::size_t n = 1 + trial % 5;
        // Build SPD as B*B^T + n*I.
        Matrix b(n, n);
        for (std::size_t i = 0; i < n; ++i) {
            for (std::size_t j = 0; j < n; ++j) b(i, j) = rng.uniform(-1.0, 1.0);
        }
        const Matrix a =
            b * b.transpose() + Matrix::identity(n) * static_cast<double>(n);
        const auto chol = Cholesky::decompose(a);
        ASSERT_TRUE(chol.has_value());
        const Matrix rec = chol->lower() * chol->lower().transpose();
        EXPECT_LT(rec.maxAbsDiff(a), 1e-9);
    }
}

TEST(VectorOps, Basics) {
    const Vector a{1.0, 2.0, 3.0};
    const Vector b{4.0, 5.0, 6.0};
    EXPECT_DOUBLE_EQ(dot(a, b), 32.0);
    EXPECT_EQ(add(a, b), (Vector{5.0, 7.0, 9.0}));
    EXPECT_EQ(subtract(b, a), (Vector{3.0, 3.0, 3.0}));
    EXPECT_EQ(scale(a, 2.0), (Vector{2.0, 4.0, 6.0}));
    EXPECT_NEAR(norm2({3.0, 4.0}), 5.0, 1e-12);
}

}  // namespace
}  // namespace wm::analytics
