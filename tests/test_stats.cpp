#include "analytics/stats.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace wm::analytics {
namespace {

TEST(BatchStats, BasicSummaries) {
    const std::vector<double> v{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
    EXPECT_DOUBLE_EQ(sum(v), 40.0);
    EXPECT_DOUBLE_EQ(*mean(v), 5.0);
    EXPECT_NEAR(*stddev(v), 2.138, 0.001);  // sample stddev
    EXPECT_DOUBLE_EQ(*minimum(v), 2.0);
    EXPECT_DOUBLE_EQ(*maximum(v), 9.0);
}

TEST(BatchStats, EmptyInputsAreNullopt) {
    const std::vector<double> empty;
    EXPECT_FALSE(mean(empty).has_value());
    EXPECT_FALSE(variance(empty).has_value());
    EXPECT_FALSE(minimum(empty).has_value());
    EXPECT_FALSE(maximum(empty).has_value());
    EXPECT_FALSE(median(empty).has_value());
    EXPECT_FALSE(quantile(empty, 0.5).has_value());
    EXPECT_TRUE(deciles({}).empty());
}

TEST(BatchStats, SingleValue) {
    const std::vector<double> one{42.0};
    EXPECT_DOUBLE_EQ(*mean(one), 42.0);
    EXPECT_DOUBLE_EQ(*variance(one), 0.0);
    EXPECT_DOUBLE_EQ(*median(one), 42.0);
}

TEST(Quantile, InterpolatesLinearly) {
    const std::vector<double> v{0.0, 10.0};  // median interpolates halfway
    EXPECT_DOUBLE_EQ(*quantile(v, 0.5), 5.0);
    EXPECT_DOUBLE_EQ(*quantile(v, 0.25), 2.5);
    EXPECT_DOUBLE_EQ(*quantile(v, 0.0), 0.0);
    EXPECT_DOUBLE_EQ(*quantile(v, 1.0), 10.0);
}

TEST(Quantile, ClampsOutOfRangeQ) {
    const std::vector<double> v{1.0, 2.0, 3.0};
    EXPECT_DOUBLE_EQ(*quantile(v, -0.5), 1.0);
    EXPECT_DOUBLE_EQ(*quantile(v, 1.5), 3.0);
}

TEST(Deciles, ElevenValuesMinToMax) {
    std::vector<double> v;
    for (int i = 0; i <= 100; ++i) v.push_back(static_cast<double>(i));
    const auto d = deciles(v);
    ASSERT_EQ(d.size(), 11u);
    EXPECT_DOUBLE_EQ(d.front(), 0.0);    // decile 0 = minimum
    EXPECT_DOUBLE_EQ(d[5], 50.0);        // decile 5 = median
    EXPECT_DOUBLE_EQ(d.back(), 100.0);   // decile 10 = maximum
    for (std::size_t i = 1; i < d.size(); ++i) EXPECT_GE(d[i], d[i - 1]);
}

TEST(Deciles, UnsortedInputHandled) {
    const auto d = deciles({9.0, 1.0, 5.0, 3.0, 7.0});
    ASSERT_EQ(d.size(), 11u);
    EXPECT_DOUBLE_EQ(d.front(), 1.0);
    EXPECT_DOUBLE_EQ(d.back(), 9.0);
}

TEST(Pearson, PerfectCorrelation) {
    const std::vector<double> x{1.0, 2.0, 3.0, 4.0};
    const std::vector<double> y{2.0, 4.0, 6.0, 8.0};
    EXPECT_NEAR(*pearson(x, y), 1.0, 1e-12);
    const std::vector<double> neg{8.0, 6.0, 4.0, 2.0};
    EXPECT_NEAR(*pearson(x, neg), -1.0, 1e-12);
}

TEST(Pearson, DegenerateInputs) {
    EXPECT_FALSE(pearson({1.0}, {2.0}).has_value());          // too short
    EXPECT_FALSE(pearson({1.0, 2.0}, {1.0}).has_value());     // mismatched
    EXPECT_FALSE(pearson({1.0, 1.0}, {1.0, 2.0}).has_value());  // constant side
}

TEST(StreamingStats, MatchesBatchComputation) {
    common::Rng rng(5);
    std::vector<double> values;
    StreamingStats stream;
    for (int i = 0; i < 1000; ++i) {
        const double v = rng.gaussian(10.0, 3.0);
        values.push_back(v);
        stream.add(v);
    }
    EXPECT_NEAR(stream.mean(), *mean(values), 1e-9);
    EXPECT_NEAR(stream.variance(), *variance(values), 1e-6);
    EXPECT_DOUBLE_EQ(stream.min(), *minimum(values));
    EXPECT_DOUBLE_EQ(stream.max(), *maximum(values));
    EXPECT_EQ(stream.count(), 1000u);
}

TEST(StreamingStats, ResetClearsState) {
    StreamingStats stream;
    stream.add(5.0);
    stream.add(7.0);
    stream.reset();
    EXPECT_EQ(stream.count(), 0u);
    EXPECT_DOUBLE_EQ(stream.mean(), 0.0);
    EXPECT_DOUBLE_EQ(stream.variance(), 0.0);
}

TEST(StreamingStats, StableUnderLargeOffsets) {
    // Welford should survive a large constant offset without catastrophic
    // cancellation.
    StreamingStats stream;
    for (int i = 0; i < 100; ++i) stream.add(1e9 + (i % 2));
    EXPECT_NEAR(stream.variance(), 0.2525, 0.001);
}

TEST(Ewma, ConvergesToConstantInput) {
    Ewma ewma(0.5);
    EXPECT_FALSE(ewma.initialized());
    ewma.update(10.0);
    EXPECT_DOUBLE_EQ(ewma.value(), 10.0);  // first sample initialises
    for (int i = 0; i < 50; ++i) ewma.update(20.0);
    EXPECT_NEAR(ewma.value(), 20.0, 1e-9);
}

TEST(Ewma, SmoothsSpikes) {
    Ewma ewma(0.1);
    for (int i = 0; i < 10; ++i) ewma.update(100.0);
    ewma.update(200.0);  // single spike
    EXPECT_LT(ewma.value(), 115.0);
}

}  // namespace
}  // namespace wm::analytics
