// Tests for the operator framework: OperatorTemplate unit iteration, output
// publication, error isolation, on-demand computation, and job operators.

#include "core/operator.h"

#include <gtest/gtest.h>

#include "common/config.h"
#include "core/hosting.h"

namespace wm::core {
namespace {

using common::kNsPerSec;
using common::TimestampNs;

/// Minimal concrete operator: copies the latest value of each input to the
/// positionally matching output, multiplied by a gain.
class GainOperator final : public OperatorTemplate {
  public:
    GainOperator(OperatorConfig config, OperatorContext context, double gain)
        : OperatorTemplate(std::move(config), std::move(context)), gain_(gain) {}

    bool throw_on_compute = false;

  protected:
    std::vector<SensorValue> compute(const Unit& unit, TimestampNs t) override {
        if (throw_on_compute) throw std::runtime_error("synthetic failure");
        std::vector<SensorValue> out;
        const std::size_t n = std::min(unit.inputs.size(), unit.outputs.size());
        for (std::size_t i = 0; i < n; ++i) {
            const auto latest = context_.query_engine->latest(unit.inputs[i]);
            if (latest) out.push_back({unit.outputs[i], {t, latest->value * gain_}});
        }
        return out;
    }

  private:
    double gain_;
};

class OperatorTest : public ::testing::Test {
  protected:
    void SetUp() override {
        engine_.setCacheStore(&caches_);
        caches_.getOrCreate("/n0/power").store({kNsPerSec, 100.0});
        caches_.getOrCreate("/n1/power").store({kNsPerSec, 200.0});
        engine_.rebuildTree();
        context_ = makeHostContext(engine_, &caches_, nullptr, nullptr, &jobs_);
    }

    OperatorPtr makeGain(double gain) {
        OperatorConfig config;
        config.name = "gain1";
        config.plugin = "gain";
        config.window_ns = 10 * kNsPerSec;
        auto op = std::make_shared<GainOperator>(config, context_, gain);
        op->setUnits({{"/n0", {"/n0/power"}, {"/n0/scaled"}},
                      {"/n1", {"/n1/power"}, {"/n1/scaled"}}});
        return op;
    }

    sensors::CacheStore caches_;
    QueryEngine engine_;
    jobs::JobManager jobs_;
    OperatorContext context_;
};

TEST_F(OperatorTest, ComputeAllPublishesOutputs) {
    auto op = makeGain(2.0);
    op->computeAll(5 * kNsPerSec);
    const auto* scaled0 = caches_.find("/n0/scaled");
    const auto* scaled1 = caches_.find("/n1/scaled");
    ASSERT_NE(scaled0, nullptr);
    ASSERT_NE(scaled1, nullptr);
    EXPECT_DOUBLE_EQ(scaled0->latest()->value, 200.0);
    EXPECT_DOUBLE_EQ(scaled1->latest()->value, 400.0);
    EXPECT_EQ(op->computeCount(), 2u);
    EXPECT_EQ(op->errorCount(), 0u);
}

TEST_F(OperatorTest, DisabledOperatorDoesNothing) {
    auto op = makeGain(2.0);
    op->setEnabled(false);
    op->computeAll(5 * kNsPerSec);
    EXPECT_EQ(caches_.find("/n0/scaled"), nullptr);
    EXPECT_EQ(op->computeCount(), 0u);
}

TEST_F(OperatorTest, ExceptionsAreIsolatedAndCounted) {
    auto op = makeGain(2.0);
    auto* gain = static_cast<GainOperator*>(op.get());
    gain->throw_on_compute = true;
    op->computeAll(5 * kNsPerSec);
    EXPECT_EQ(op->errorCount(), 2u);
    EXPECT_EQ(op->computeCount(), 0u);
}

TEST_F(OperatorTest, OnDemandReturnsOutputsForKnownUnit) {
    auto op = makeGain(3.0);
    const auto outputs = op->computeOnDemand("/n1", 7 * kNsPerSec);
    ASSERT_TRUE(outputs.has_value());
    ASSERT_EQ(outputs->size(), 1u);
    EXPECT_EQ((*outputs)[0].topic, "/n1/scaled");
    EXPECT_DOUBLE_EQ((*outputs)[0].reading.value, 600.0);
}

TEST_F(OperatorTest, OnDemandUnknownUnitIsNullopt) {
    auto op = makeGain(1.0);
    EXPECT_FALSE(op->computeOnDemand("/ghost", kNsPerSec).has_value());
}

TEST_F(OperatorTest, OnDemandNormalisesUnitName) {
    auto op = makeGain(1.0);
    EXPECT_TRUE(op->computeOnDemand("n0/", kNsPerSec).has_value());
}

TEST_F(OperatorTest, PublishCanBeSuppressed) {
    OperatorConfig config;
    config.name = "silent";
    config.publish_outputs = false;
    auto op = std::make_shared<GainOperator>(config, context_, 1.0);
    op->setUnits({{"/n0", {"/n0/power"}, {"/n0/quiet"}}});
    op->computeAll(kNsPerSec);
    EXPECT_EQ(caches_.find("/n0/quiet"), nullptr);
    // But on-demand still returns values.
    const auto outputs = op->computeOnDemand("/n0", kNsPerSec);
    ASSERT_TRUE(outputs.has_value());
    EXPECT_EQ(outputs->size(), 1u);
}

TEST(ParseOperatorConfig, ReadsCommonKeys) {
    const auto parsed = common::parseConfig(R"(
operator avg1 {
    mode ondemand
    unitMode parallel
    interval 250ms
    window 2s
    queryMode absolute
    publish false
    input {
        sensor "<bottomup>power"
        sensor "<bottomup>temp"
    }
    output {
        sensor "<bottomup>out"
    }
}
)");
    ASSERT_TRUE(parsed.ok) << parsed.error;
    const OperatorConfig config =
        parseOperatorConfig(*parsed.root.child("operator"), "aggregator");
    EXPECT_EQ(config.name, "avg1");
    EXPECT_EQ(config.plugin, "aggregator");
    EXPECT_EQ(config.mode, OperatorMode::kOnDemand);
    EXPECT_EQ(config.unit_mode, UnitMode::kParallel);
    EXPECT_EQ(config.interval_ns, 250 * common::kNsPerMs);
    EXPECT_EQ(config.window_ns, 2 * kNsPerSec);
    EXPECT_FALSE(config.relative_queries);
    EXPECT_FALSE(config.publish_outputs);
    EXPECT_EQ(config.input_patterns.size(), 2u);
    EXPECT_EQ(config.output_patterns.size(), 1u);
}

TEST(ParseOperatorConfig, DefaultsAreOnlineSequentialRelative) {
    const auto parsed = common::parseConfig("operator x {\n interval 1s\n}\n");
    ASSERT_TRUE(parsed.ok);
    const OperatorConfig config =
        parseOperatorConfig(*parsed.root.child("operator"), "p");
    EXPECT_EQ(config.mode, OperatorMode::kOnline);
    EXPECT_EQ(config.unit_mode, UnitMode::kSequential);
    EXPECT_TRUE(config.relative_queries);
    EXPECT_TRUE(config.publish_outputs);
    EXPECT_EQ(config.window_ns, config.interval_ns);  // window defaults to interval
}

// --- job operators -----------------------------------------------------------

class EchoJobOperator final : public JobOperatorTemplate {
  public:
    using JobOperatorTemplate::JobOperatorTemplate;

  protected:
    std::vector<SensorValue> compute(const Unit& unit, TimestampNs t) override {
        // Emit the number of inputs to each output.
        std::vector<SensorValue> out;
        for (const auto& topic : unit.outputs) {
            out.push_back({topic, {t, static_cast<double>(unit.inputs.size())}});
        }
        return out;
    }
};

class JobOperatorTest : public OperatorTest {
  protected:
    void SetUp() override {
        OperatorTest::SetUp();
        jobs::JobRecord job;
        job.job_id = "4711";
        job.nodes = {"/n0", "/n1"};
        job.start_time = 0;
        jobs_.submit(job);
    }

    OperatorPtr makeJobOp() {
        OperatorConfig config;
        config.name = "jobop";
        config.window_ns = 10 * kNsPerSec;
        config.input_patterns = {"<bottomup>power"};
        const auto unit_template =
            makeUnitTemplate(config.input_patterns, {"<bottomup>inputs-count"});
        return std::make_shared<EchoJobOperator>(config, context_, *unit_template);
    }
};

TEST_F(JobOperatorTest, BuildsOneUnitPerRunningJob) {
    auto op = makeJobOp();
    op->computeAll(kNsPerSec);
    const auto units = op->units();
    ASSERT_EQ(units.size(), 1u);
    EXPECT_EQ(units[0].name, "/job/4711");
    EXPECT_EQ(units[0].inputs.size(), 2u);  // power from both nodes
    ASSERT_EQ(units[0].outputs.size(), 1u);
    EXPECT_EQ(units[0].outputs[0], "/job/4711/inputs-count");
    const auto* output = caches_.find("/job/4711/inputs-count");
    ASSERT_NE(output, nullptr);
    EXPECT_DOUBLE_EQ(output->latest()->value, 2.0);
}

TEST_F(JobOperatorTest, UnitsDisappearWhenJobEnds) {
    auto op = makeJobOp();
    op->computeAll(kNsPerSec);
    EXPECT_EQ(op->units().size(), 1u);
    jobs_.complete("4711", 2 * kNsPerSec);
    op->computeAll(3 * kNsPerSec);
    EXPECT_TRUE(op->units().empty());
}

TEST_F(JobOperatorTest, MultipleJobsYieldMultipleUnits) {
    jobs::JobRecord second;
    second.job_id = "4712";
    second.nodes = {"/n1"};
    second.start_time = 0;
    jobs_.submit(second);
    auto op = makeJobOp();
    op->computeAll(kNsPerSec);
    EXPECT_EQ(op->units().size(), 2u);
}

TEST_F(JobOperatorTest, JobsOnUnknownNodesYieldNoUnit) {
    jobs::JobRecord ghost;
    ghost.job_id = "4713";
    ghost.nodes = {"/rack9/ghost"};
    ghost.start_time = 0;
    jobs_.submit(ghost);
    auto op = makeJobOp();
    op->computeAll(kNsPerSec);
    // Only the job on known nodes materialises.
    EXPECT_EQ(op->units().size(), 1u);
}

}  // namespace
}  // namespace wm::core
