// Microbenchmarks for the MQTT substrate: topic matching and broker
// publication fan-out, the per-reading costs of the DCDB data path.

#include <benchmark/benchmark.h>

#include "mqtt/broker.h"
#include "mqtt/topic.h"

namespace {

using wm::mqtt::Broker;
using wm::mqtt::Message;
using wm::mqtt::topicMatches;

void BM_TopicMatchExact(benchmark::State& state) {
    const std::string filter = "/rack4/chassis2/server3/power";
    const std::string topic = "/rack4/chassis2/server3/power";
    for (auto _ : state) {
        benchmark::DoNotOptimize(topicMatches(filter, topic));
    }
}
BENCHMARK(BM_TopicMatchExact);

void BM_TopicMatchWildcards(benchmark::State& state) {
    const std::string filter = "/+/+/+/power";
    const std::string topic = "/rack4/chassis2/server3/power";
    for (auto _ : state) {
        benchmark::DoNotOptimize(topicMatches(filter, topic));
    }
}
BENCHMARK(BM_TopicMatchWildcards);

void BM_TopicMatchHash(benchmark::State& state) {
    const std::string filter = "/rack4/#";
    const std::string topic = "/rack4/chassis2/server3/cpu17/instructions";
    for (auto _ : state) {
        benchmark::DoNotOptimize(topicMatches(filter, topic));
    }
}
BENCHMARK(BM_TopicMatchHash);

/// Publish cost against a broker with a growing number of subscriptions
/// (the Collect Agent usually holds one catch-all; per-plugin filters add
/// more).
void BM_BrokerPublish(benchmark::State& state) {
    Broker broker;
    std::size_t sink = 0;
    for (long i = 0; i < state.range(0); ++i) {
        broker.subscribe("/rack" + std::to_string(i) + "/#",
                         [&sink](const Message&) { ++sink; });
    }
    const Message message{"/rack0/chassis0/server0/power", {{1, 1.0}}};
    for (auto _ : state) {
        benchmark::DoNotOptimize(broker.publish(message));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BrokerPublish)->Arg(1)->Arg(16)->Arg(148);

}  // namespace

BENCHMARK_MAIN();
