// Microbenchmarks for the MQTT substrate: topic matching, the trie-indexed
// subscription lookup against the linear-scan baseline it replaced, and
// broker publication fan-out — the per-reading costs of the DCDB data path
// (docs/PERFORMANCE.md). tools/bench_run.py extracts the trie/linear ratio
// at 1000 subscriptions into BENCH_PR4.json.

#include <benchmark/benchmark.h>

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "alloc_counter.h"
#include "mqtt/broker.h"
#include "mqtt/subscription_index.h"
#include "mqtt/topic.h"

namespace {

using wm::mqtt::Broker;
using wm::mqtt::Message;
using wm::mqtt::MessageHandler;
using wm::mqtt::Subscription;
using wm::mqtt::SubscriptionIndex;
using wm::mqtt::SubscriptionPtr;
using wm::mqtt::topicMatches;

void BM_TopicMatchExact(benchmark::State& state) {
    const std::string filter = "/rack4/chassis2/server3/power";
    const std::string topic = "/rack4/chassis2/server3/power";
    for (auto _ : state) {
        benchmark::DoNotOptimize(topicMatches(filter, topic));
    }
}
BENCHMARK(BM_TopicMatchExact);

void BM_TopicMatchWildcards(benchmark::State& state) {
    const std::string filter = "/+/+/+/power";
    const std::string topic = "/rack4/chassis2/server3/power";
    for (auto _ : state) {
        benchmark::DoNotOptimize(topicMatches(filter, topic));
    }
}
BENCHMARK(BM_TopicMatchWildcards);

void BM_TopicMatchHash(benchmark::State& state) {
    const std::string filter = "/rack4/#";
    const std::string topic = "/rack4/chassis2/server3/cpu17/instructions";
    for (auto _ : state) {
        benchmark::DoNotOptimize(topicMatches(filter, topic));
    }
}
BENCHMARK(BM_TopicMatchHash);

/// Deterministic filter corpus shaped like a monitoring deployment: mostly
/// exact per-sensor filters, some single-level '+' selectors, a few '#'
/// subtrees. Filter i is unique; only a bounded handful match the probe
/// topic "/rack0/chassis0/server0/power" regardless of corpus size.
std::vector<std::string> filterCorpus(std::size_t n) {
    std::vector<std::string> filters;
    filters.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        const std::string rack = std::to_string(i % 64);
        const std::string chassis = std::to_string((i / 64) % 8);
        const std::string server = std::to_string(i / 512);
        if (i % 10 == 9) {
            filters.push_back("/rack" + rack + "/chassis" + chassis + "/server" +
                              server + "/#");
        } else if (i % 10 == 5) {
            filters.push_back("/rack" + rack + "/+/server" + server + "/power");
        } else {
            filters.push_back("/rack" + rack + "/chassis" + chassis + "/server" +
                              server + "/power");
        }
    }
    return filters;
}

const std::string kProbeTopic = "/rack0/chassis0/server0/power";

/// Baseline: the linear scan the broker used before the trie — every
/// publish tests the topic against every registered filter and copies the
/// matching handlers' std::function state.
void BM_MatchLinearScan(benchmark::State& state) {
    const std::vector<std::string> filters =
        filterCorpus(static_cast<std::size_t>(state.range(0)));
    std::size_t sink = 0;
    std::vector<std::pair<std::string, MessageHandler>> subscriptions;
    subscriptions.reserve(filters.size());
    for (const auto& filter : filters) {
        subscriptions.emplace_back(filter, [&sink](const Message&) { ++sink; });
    }
    std::uint64_t matched = 0;
    const std::uint64_t allocs_before = wm::bench::allocCount();
    for (auto _ : state) {
        std::vector<MessageHandler> targets;  // snapshot, as the old deliver()
        for (const auto& [filter, handler] : subscriptions) {
            if (topicMatches(filter, kProbeTopic)) targets.push_back(handler);
        }
        matched += targets.size();
        benchmark::DoNotOptimize(targets);
    }
    state.counters["allocs/op"] = wm::bench::allocsPerOp(
        allocs_before, wm::bench::allocCount(), state.iterations());
    state.counters["matched"] =
        static_cast<double>(matched) / static_cast<double>(state.iterations());
    state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_MatchLinearScan)
    ->Arg(16)
    ->Arg(148)
    ->Arg(1000)
    ->Arg(4096)
    ->Complexity(benchmark::oN);

/// The trie path: O(topic depth) walk independent of subscription count;
/// the snapshot copies shared_ptr handles, never std::function state.
void BM_MatchSubscriptionIndex(benchmark::State& state) {
    const std::vector<std::string> filters =
        filterCorpus(static_cast<std::size_t>(state.range(0)));
    SubscriptionIndex index;
    std::size_t sink = 0;
    for (std::size_t i = 0; i < filters.size(); ++i) {
        auto subscription = std::make_shared<Subscription>();
        subscription->id = i + 1;
        subscription->filter = filters[i];
        subscription->handler = std::make_shared<const MessageHandler>(
            [&sink](const Message&) { ++sink; });
        index.insert(std::move(subscription));
    }
    std::uint64_t matched = 0;
    std::vector<SubscriptionPtr> targets;
    const std::uint64_t allocs_before = wm::bench::allocCount();
    for (auto _ : state) {
        targets.clear();
        index.match(kProbeTopic, targets);
        matched += targets.size();
        benchmark::DoNotOptimize(targets);
    }
    state.counters["allocs/op"] = wm::bench::allocsPerOp(
        allocs_before, wm::bench::allocCount(), state.iterations());
    state.counters["matched"] =
        static_cast<double>(matched) / static_cast<double>(state.iterations());
    state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_MatchSubscriptionIndex)
    ->Arg(16)
    ->Arg(148)
    ->Arg(1000)
    ->Arg(4096)
    ->Complexity(benchmark::o1);

/// End-to-end publish cost against a broker with a growing number of
/// subscriptions (the Collect Agent usually holds one catch-all;
/// per-plugin filters add more). Rides the trie internally.
void BM_BrokerPublish(benchmark::State& state) {
    Broker broker;
    std::size_t sink = 0;
    for (long i = 0; i < state.range(0); ++i) {
        broker.subscribe("/rack" + std::to_string(i) + "/#",
                         [&sink](const Message&) { ++sink; });
    }
    const Message message{"/rack0/chassis0/server0/power", {{1, 1.0}}};
    const std::uint64_t allocs_before = wm::bench::allocCount();
    for (auto _ : state) {
        benchmark::DoNotOptimize(broker.publish(message));
    }
    state.counters["allocs/op"] = wm::bench::allocsPerOp(
        allocs_before, wm::bench::allocCount(), state.iterations());
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BrokerPublish)->Arg(1)->Arg(16)->Arg(148)->Arg(1000);

}  // namespace

BENCHMARK_MAIN();
