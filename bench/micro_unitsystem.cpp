// Microbenchmarks for the Unit System: sensor tree construction over
// cluster-sized topic sets and pattern-unit resolution — the configurator
// costs the paper's abstractions amortise over thousands of model instances.

#include <benchmark/benchmark.h>

#include "core/unit_system.h"
#include "simulator/topology.h"

namespace {

using wm::core::SensorTree;
using wm::core::UnitResolver;
using wm::simulator::Topology;

/// Topic set of an n-node cluster with per-cpu counters + node sensors.
std::vector<std::string> clusterTopics(std::size_t nodes, std::size_t cpus) {
    Topology topology = Topology::coolmuc3();
    topology.max_nodes = nodes;
    topology.cpus_per_node = cpus;
    std::vector<std::string> topics;
    for (const auto& node : topology.nodePaths()) {
        topics.push_back(node + "/power");
        topics.push_back(node + "/temp");
        topics.push_back(node + "/col_idle");
        for (std::size_t cpu = 0; cpu < cpus; ++cpu) {
            const std::string cpu_path = Topology::cpuPath(node, cpu);
            topics.push_back(cpu_path + "/cpu-cycles");
            topics.push_back(cpu_path + "/instructions");
        }
    }
    return topics;
}

void BM_SensorTreeBuild(benchmark::State& state) {
    const auto topics =
        clusterTopics(static_cast<std::size_t>(state.range(0)), 16);
    for (auto _ : state) {
        SensorTree tree;
        benchmark::DoNotOptimize(tree.build(topics));
    }
    state.SetItemsProcessed(state.iterations() * static_cast<long>(topics.size()));
}
BENCHMARK(BM_SensorTreeBuild)->Arg(16)->Arg(64)->Arg(148);

void BM_PatternParse(benchmark::State& state) {
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            wm::core::parsePattern("<bottomup-1, filter cpu[0-3]>cache-misses"));
    }
}
BENCHMARK(BM_PatternParse);

/// Full instantiation of the paper's Section III-C pattern unit over a
/// 148-node cluster: one unit per compute node.
void BM_UnitResolution(benchmark::State& state) {
    SensorTree tree;
    tree.build(clusterTopics(148, 16));
    const auto unit_template = wm::core::makeUnitTemplate(
        {"<bottomup-1>power", "<bottomup, filter cpu>cpu-cycles"},
        {"<bottomup-1>healthy"});
    const UnitResolver resolver(tree);
    for (auto _ : state) {
        benchmark::DoNotOptimize(resolver.resolveUnits(*unit_template));
    }
}
BENCHMARK(BM_UnitResolution);

/// Resolution anchored at a single node (the job-operator path).
void BM_UnitResolutionSingleNode(benchmark::State& state) {
    SensorTree tree;
    tree.build(clusterTopics(148, 16));
    const auto unit_template = wm::core::makeUnitTemplate(
        {"<bottomup, filter cpu>instructions"}, {"<bottomup-1>out"});
    const UnitResolver resolver(tree);
    const std::string node = Topology::coolmuc3().nodePath(70);
    for (auto _ : state) {
        benchmark::DoNotOptimize(resolver.resolveUnitAt(node, *unit_template));
    }
}
BENCHMARK(BM_UnitResolutionSingleNode);

/// One-time cost of binding cache handles to a resolved unit's inputs —
/// paid at unit-resolution time so per-read queries can skip topic hashing
/// (docs/PERFORMANCE.md).
void BM_UnitBindHandles(benchmark::State& state) {
    SensorTree tree;
    tree.build(clusterTopics(148, 16));
    const auto unit_template = wm::core::makeUnitTemplate(
        {"<bottomup, filter cpu>cpu-cycles"}, {"<bottomup-1>out"});
    const UnitResolver resolver(tree);
    auto unit = resolver.resolveUnitAt(Topology::coolmuc3().nodePath(70), *unit_template);
    for (auto _ : state) {
        unit->bindHandles();
        benchmark::DoNotOptimize(unit->input_handles);
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<long>(unit->inputs.size()));
}
BENCHMARK(BM_UnitBindHandles);

/// Steady-state resolution of a bound handle against a populated store:
/// the per-read topic->cache step of every operator input query.
void BM_UnitHandleResolve(benchmark::State& state) {
    SensorTree tree;
    const auto topics = clusterTopics(148, 16);
    tree.build(topics);
    wm::sensors::CacheStore store;
    for (const auto& topic : topics) store.getOrCreate(topic);
    const auto unit_template = wm::core::makeUnitTemplate(
        {"<bottomup, filter cpu>cpu-cycles"}, {"<bottomup-1>out"});
    const UnitResolver resolver(tree);
    const auto unit =
        resolver.resolveUnitAt(Topology::coolmuc3().nodePath(70), *unit_template);
    for (auto _ : state) {
        for (const auto& handle : unit->input_handles) {
            benchmark::DoNotOptimize(handle->resolve(store));
        }
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<long>(unit->input_handles.size()));
}
BENCHMARK(BM_UnitHandleResolve);

}  // namespace

BENCHMARK_MAIN();
