#pragma once

// Process-wide heap-allocation counter for benchmark binaries. Including
// this header replaces the global operator new/delete with counting
// versions, so a benchmark can report allocations per operation alongside
// time — the copy-free cache views and the trie delivery snapshot are
// about allocation avoidance as much as about cycles (docs/PERFORMANCE.md).
//
// Include from exactly one translation unit per binary (each micro bench is
// a single TU). Counting is a relaxed atomic increment; the counter is only
// read between timing loops.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <new>

namespace wm::bench {

inline std::atomic<std::uint64_t> g_alloc_count{0};

/// Total operator-new calls since process start.
inline std::uint64_t allocCount() {
    return g_alloc_count.load(std::memory_order_relaxed);
}

/// Helper for benchmark loops: allocations per iteration between two
/// snapshots, as a double for benchmark counters.
inline double allocsPerOp(std::uint64_t before, std::uint64_t after,
                          std::uint64_t iterations) {
    if (iterations == 0) return 0.0;
    return static_cast<double>(after - before) / static_cast<double>(iterations);
}

}  // namespace wm::bench

// GCC pairs an inlined `operator delete` body with the allocation site and
// warns that free() mismatches `new` — but our `operator new` below is
// malloc-backed too, so the pairing is correct at runtime.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif

void* operator new(std::size_t size) {
    wm::bench::g_alloc_count.fetch_add(1, std::memory_order_relaxed);
    if (void* p = std::malloc(size == 0 ? 1 : size)) return p;
    throw std::bad_alloc();
}

void* operator new[](std::size_t size) {
    wm::bench::g_alloc_count.fetch_add(1, std::memory_order_relaxed);
    if (void* p = std::malloc(size == 0 ? 1 : size)) return p;
    throw std::bad_alloc();
}

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
    wm::bench::g_alloc_count.fetch_add(1, std::memory_order_relaxed);
    return std::malloc(size == 0 ? 1 : size);
}

void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
    wm::bench::g_alloc_count.fetch_add(1, std::memory_order_relaxed);
    return std::malloc(size == 0 ? 1 : size);
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept { std::free(p); }

#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif
