// Ablation benchmarks for Wintermute's two central design choices.
//
// 1. Cache-first queries (paper Section V-B): the Query Engine prefers the
//    in-memory sensor cache and falls back to the storage backend. This
//    ablation measures the same relative query served from the cache vs
//    forced through the storage backend, quantifying the latency gap that
//    motivates the design (and, in the paper, the <0.5% overhead of Fig. 5).
//
// 2. The Unit System (paper Section III): a single pattern-unit block
//    instantiates one model per compute node. The ablation compares the
//    configuration size and load time of one pattern block against the
//    equivalent explicitly-enumerated configuration (one operator block per
//    node with absolute sensor paths), which is what operators of
//    LDMS-style frameworks without configuration abstractions require.

#include <chrono>
#include <cstdio>
#include <string>

#include "common/config.h"
#include "common/logging.h"
#include "core/hosting.h"
#include "core/operator_manager.h"
#include "plugins/registry.h"
#include "simulator/topology.h"
#include "storage/storage_backend.h"

using namespace wm;
using common::kNsPerSec;
using common::TimestampNs;

namespace {

double secondsSince(std::chrono::steady_clock::time_point start) {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
        .count();
}

void ablationQueryPath() {
    std::printf("--- ablation 1: cache-first vs storage-backed queries ---\n");
    sensors::CacheStore caches(300 * kNsPerSec);
    storage::StorageBackend storage;
    auto& cache = caches.getOrCreate("/n/power");
    for (int i = 1; i <= 300; ++i) {
        const sensors::Reading reading{i * kNsPerSec, static_cast<double>(i)};
        cache.store(reading);
        storage.insert("/n/power", reading);
    }

    core::QueryEngine cached_engine;
    cached_engine.setCacheStore(&caches);
    cached_engine.setStorage(&storage);
    core::QueryEngine storage_engine;  // no cache wired: always falls back
    storage_engine.setStorage(&storage);

    // In-memory path costs.
    constexpr int kIterations = 200000;
    for (const TimestampNs window : {kNsPerSec, 60 * kNsPerSec, 240 * kNsPerSec}) {
        auto start = std::chrono::steady_clock::now();
        std::size_t sink = 0;
        for (int i = 0; i < kIterations; ++i) {
            sink += cached_engine.queryRelative("/n/power", window).size();
        }
        const double cached_ns = secondsSince(start) / kIterations * 1e9;
        start = std::chrono::steady_clock::now();
        for (int i = 0; i < kIterations; ++i) {
            sink += storage_engine.queryRelative("/n/power", window).size();
        }
        const double storage_ns = secondsSince(start) / kIterations * 1e9;
        std::printf("  window %4llds: cache %8.0f ns/query, in-memory backend %8.0f "
                    "ns/query [%zu]\n",
                    static_cast<long long>(window / kNsPerSec), cached_ns, storage_ns,
                    sink % 7);
    }

    // With a networked backend (Cassandra-like 200 us RPC round trip), the
    // asymmetry that motivates cache-first reads appears.
    storage.setSimulatedQueryLatency(200'000);
    constexpr int kRpcIterations = 2000;
    auto start = std::chrono::steady_clock::now();
    std::size_t sink = 0;
    for (int i = 0; i < kRpcIterations; ++i) {
        sink += storage_engine.queryRelative("/n/power", 60 * kNsPerSec).size();
    }
    const double rpc_us = secondsSince(start) / kRpcIterations * 1e6;
    start = std::chrono::steady_clock::now();
    for (int i = 0; i < kRpcIterations; ++i) {
        sink += cached_engine.queryRelative("/n/power", 60 * kNsPerSec).size();
    }
    const double cached_us = secondsSince(start) / kRpcIterations * 1e6;
    storage.setSimulatedQueryLatency(0);
    std::printf("  with a 200us-RPC backend, window 60s: cache %.2f us/query vs "
                "backend %.0f us/query (x%.0f) [%zu]\n\n",
                cached_us, rpc_us, rpc_us / cached_us, sink % 7);
}

void ablationUnitSystem() {
    std::printf("--- ablation 2: pattern units vs explicit enumeration ---\n");
    const simulator::Topology topology = simulator::Topology::coolmuc3();

    // Sensor space: power + temp per node.
    sensors::CacheStore caches;
    for (const auto& node : topology.nodePaths()) {
        caches.getOrCreate(node + "/power").store({kNsPerSec, 100.0});
        caches.getOrCreate(node + "/temp").store({kNsPerSec, 40.0});
    }
    core::QueryEngine engine;
    engine.setCacheStore(&caches);
    engine.rebuildTree();

    // Variant A: one pattern block.
    const std::string pattern_config = R"(
operator avg {
    interval 1s
    window 10s
    operation average
    input {
        sensor "<bottomup>power"
        sensor "<bottomup>temp"
    }
    output {
        sensor "<bottomup>load-avg"
    }
}
)";

    // Variant B: one explicit block per node with absolute topics.
    std::string explicit_config;
    for (std::size_t n = 0; n < topology.nodeCount(); ++n) {
        const std::string node = topology.nodePath(n);
        explicit_config += "operator avg" + std::to_string(n) +
                           " {\n    interval 1s\n    window 10s\n    operation average\n"
                           "    input {\n        sensor \"" + node + "/power\"\n"
                           "        sensor \"" + node + "/temp\"\n    }\n"
                           "    output {\n        sensor \"" + node + "/load-avg\"\n"
                           "    }\n}\n";
    }

    for (const bool use_pattern : {true, false}) {
        const std::string& text = use_pattern ? pattern_config : explicit_config;
        core::OperatorManager manager(
            core::makeHostContext(engine, &caches, nullptr, nullptr));
        plugins::registerBuiltinPlugins(manager);
        const auto start = std::chrono::steady_clock::now();
        const auto parsed = common::parseConfig(text);
        int operators = 0;
        std::size_t units = 0;
        if (parsed.ok) {
            operators = manager.loadPlugin("aggregator", parsed.root);
            for (const auto& op : manager.operators()) units += op->units().size();
        }
        const double ms = secondsSince(start) * 1e3;
        std::printf("  %-9s config: %6zu bytes -> %3d operators / %3zu units in %6.2f ms\n",
                    use_pattern ? "pattern" : "explicit", text.size(), operators, units,
                    ms);
    }
    std::printf("  (one pattern block covers all %zu nodes; the explicit variant\n"
                "   grows linearly with the system and must be regenerated whenever\n"
                "   the topology changes)\n",
                topology.nodeCount());
}

}  // namespace

int main() {
    common::Logger::instance().setLevel(common::LogLevel::kError);
    std::printf("=== Design ablations ===\n\n");
    ablationQueryPath();
    ablationUnitSystem();
    return 0;
}
