// Figure 6 reproduction: online power consumption prediction (Case Study 1).
//
// Protocol (paper Section VI-B): a regressor operator in a Pusher samples a
// compute node's performance counters and power at a 250 ms interval. Per
// input sensor, statistical features over the recent readings form a feature
// vector; a random forest predicts the power sensor's value one interval
// ahead. Training is automatic: the training set accumulates while the
// CORAL-2 applications (Kripke, AMG, Nekbone, LAMMPS) run, then the forest
// is fitted and evaluation continues online on fresh data.
//
// Outputs: (a) a time-series excerpt of real vs predicted power (Fig. 6a);
// (b) the average relative error per real-power bin together with the
// empirical distribution of power values (Fig. 6b); the overall average
// relative error for 125 ms, 250 ms and 500 ms intervals (paper: 10.4%,
// 6.2%, 6.7%); and the added CPU overhead of regression per interval
// (paper: ~0.1%).
//
// Scale-down vs the paper (documented in DESIGN.md/EXPERIMENTS.md): 16
// simulated cores instead of 64 and a training set of 6000 instead of 30000
// samples, keeping the single-core benchmark runtime in seconds. Time is
// virtual, so sampling interval changes do not change wall time.

#include <time.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/config.h"
#include "common/logging.h"
#include "core/hosting.h"
#include "core/operator_manager.h"
#include "plugins/registry.h"
#include "plugins/regressor_operator.h"
#include "pusher/plugins/perfsim_group.h"
#include "pusher/plugins/sysfssim_group.h"
#include "pusher/pusher.h"

using namespace wm;
using common::kNsPerMs;
using common::kNsPerSec;
using common::TimestampNs;

namespace {

constexpr std::size_t kCores = 16;
constexpr std::size_t kTrainingSamples = 6000;
const std::string kNodePath = "/rack0/chassis0/server0";

double threadCpuSec() {
    struct timespec ts{};
    clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts);
    return static_cast<double>(ts.tv_sec) + static_cast<double>(ts.tv_nsec) * 1e-9;
}

struct RunResult {
    double avg_relative_error = 0.0;
    /// Persistence baseline: predict the next reading with the current one.
    double naive_relative_error = 0.0;
    double regression_cpu_sec = 0.0;   // CPU spent in operator computation
    double virtual_eval_sec = 0.0;     // evaluated virtual time
    std::vector<std::pair<double, double>> series;      // (real, predicted)
    std::map<int, std::pair<double, int>> error_bins;   // power bin -> (err sum, n)
};

RunResult runAtInterval(TimestampNs interval_ns, bool collect_series,
                        const std::string& model = "randomforest") {
    auto node = std::make_shared<pusher::SimulatedNode>(kCores, 42);
    pusher::Pusher pusher(pusher::PusherConfig{kNodePath});
    pusher::PerfsimGroupConfig perf;
    perf.node_path = kNodePath;
    perf.interval_ns = interval_ns;
    pusher.addGroup(std::make_unique<pusher::PerfsimGroup>(perf, node));
    pusher::SysfssimGroupConfig sys;
    sys.node_path = kNodePath;
    sys.interval_ns = interval_ns;
    pusher.addGroup(std::make_unique<pusher::SysfssimGroup>(sys, node));

    core::QueryEngine engine;
    engine.setCacheStore(&pusher.cacheStore());
    core::OperatorManager manager(
        core::makeHostContext(engine, &pusher.cacheStore(), nullptr, nullptr));
    plugins::registerBuiltinPlugins(manager);
    pusher.sampleOnce(interval_ns);
    engine.rebuildTree();

    const auto config = common::parseConfig(
        "operator reg {\n"
        "    interval " + std::to_string(interval_ns / kNsPerMs) + "ms\n"
        "    window " + std::to_string(4 * interval_ns / kNsPerMs) + "ms\n"
        "    target power\n"
        "    model " + model + "\n"
        "    trainingSamples " + std::to_string(kTrainingSamples) + "\n"
        "    trees 16\n"
        "    maxDepth 10\n"
        "    input {\n"
        "        sensor \"<bottomup-1>power\"\n"
        "        sensor \"<bottomup, filter cpu>cpu-cycles\"\n"
        "        sensor \"<bottomup, filter cpu>instructions\"\n"
        "        sensor \"<bottomup, filter cpu>cache-misses\"\n"
        "        sensor \"<bottomup, filter cpu>vector-ops\"\n"
        "    }\n"
        "    output {\n"
        "        sensor \"<bottomup-1>power-pred\"\n"
        "    }\n"
        "}\n");
    if (!config.ok || manager.loadPlugin("regressor", config.root) != 1) {
        std::fprintf(stderr, "fig6: regressor configuration failed\n");
        std::exit(1);
    }
    auto regressor = std::dynamic_pointer_cast<plugins::RegressorOperator>(
        manager.findOperator("reg"));

    // Training across the CORAL-2 application mix (as in the paper).
    const simulator::AppKind apps[] = {simulator::AppKind::kKripke,
                                       simulator::AppKind::kAmg,
                                       simulator::AppKind::kNekbone,
                                       simulator::AppKind::kLammps};
    std::size_t app_index = 0;
    node->startApp(apps[app_index]);
    TimestampNs t = 2 * interval_ns;
    TimestampNs app_elapsed = 0;
    const TimestampNs app_rotation = 120 * kNsPerSec;
    while (!regressor->modelTrained()) {
        pusher.sampleOnce(t);
        manager.tickAll(t);
        t += interval_ns;
        app_elapsed += interval_ns;
        if (app_elapsed >= app_rotation) {
            app_elapsed = 0;
            app_index = (app_index + 1) % 4;
            node->startApp(apps[app_index]);
        }
    }

    // Online evaluation on a fresh rotation of the same applications.
    RunResult result;
    const std::size_t eval_intervals = static_cast<std::size_t>(
        300 * kNsPerSec / interval_ns);  // 300 virtual seconds
    node->startApp(simulator::AppKind::kKripke);
    app_index = 0;
    app_elapsed = 0;
    double err_sum = 0.0;
    double naive_err_sum = 0.0;
    std::size_t samples = 0;
    double pending_prediction = std::nan("");
    double previous_real = std::nan("");
    for (std::size_t i = 0; i < eval_intervals; ++i, t += interval_ns) {
        pusher.sampleOnce(t);
        const double cpu_before = threadCpuSec();
        manager.tickAll(t);
        result.regression_cpu_sec += threadCpuSec() - cpu_before;
        const auto real = pusher.cacheStore().find(kNodePath + "/power")->latest();
        const auto pred = pusher.cacheStore().find(kNodePath + "/power-pred")->latest();
        // The prediction emitted at interval i targets the power reading of
        // interval i+1: compare the previous prediction with current power.
        if (real && !std::isnan(pending_prediction)) {
            const double rel = std::abs(pending_prediction - real->value) / real->value;
            err_sum += rel;
            if (!std::isnan(previous_real)) {
                naive_err_sum += std::abs(previous_real - real->value) / real->value;
            }
            ++samples;
            const int bin = static_cast<int>(real->value / 12.0) * 12;
            auto& [bin_err, bin_n] = result.error_bins[bin];
            bin_err += rel;
            ++bin_n;
            if (collect_series) {
                result.series.emplace_back(real->value, pending_prediction);
            }
        }
        pending_prediction = pred ? pred->value : std::nan("");
        previous_real = real ? real->value : std::nan("");
        app_elapsed += interval_ns;
        if (app_elapsed >= app_rotation) {
            app_elapsed = 0;
            app_index = (app_index + 1) % 4;
            node->startApp(apps[app_index]);
        }
    }
    result.avg_relative_error = samples > 0 ? err_sum / static_cast<double>(samples) : 0.0;
    result.naive_relative_error =
        samples > 1 ? naive_err_sum / static_cast<double>(samples - 1) : 0.0;
    result.virtual_eval_sec =
        static_cast<double>(eval_intervals) * static_cast<double>(interval_ns) / 1e9;
    return result;
}

}  // namespace

int main() {
    common::Logger::instance().setLevel(common::LogLevel::kError);
    std::printf("=== Figure 6: power consumption prediction (Case Study 1) ===\n\n");

    // --- Fig. 6a: time series excerpt at the paper's 250 ms interval -------
    const RunResult main_run = runAtInterval(250 * kNsPerMs, /*collect_series=*/true);
    std::printf("--- Fig. 6a: real vs predicted power (250 ms interval, excerpt) ---\n");
    std::printf("%8s %12s %12s\n", "t[s]", "power[W]", "pred[W]");
    for (std::size_t i = 0; i < main_run.series.size(); i += 40) {  // every 10 s
        std::printf("%8.1f %12.1f %12.1f\n", static_cast<double>(i) * 0.25,
                    main_run.series[i].first, main_run.series[i].second);
    }

    // --- Fig. 6b: relative error per power bin + distribution --------------
    std::printf("\n--- Fig. 6b: relative error vs real power (250 ms interval) ---\n");
    std::printf("%12s %12s %14s\n", "power bin[W]", "rel. error", "probability");
    std::size_t total = 0;
    for (const auto& [bin, acc] : main_run.error_bins) total += acc.second;
    for (const auto& [bin, acc] : main_run.error_bins) {
        std::printf("%9d-%-3d %11.3f %14.4f\n", bin, bin + 12,
                    acc.first / acc.second,
                    static_cast<double>(acc.second) / static_cast<double>(total));
    }
    std::printf("\naverage relative error @250ms: %.1f%%  (paper: 6.2%%)\n",
                100.0 * main_run.avg_relative_error);

    // --- Interval sweep -----------------------------------------------------
    std::printf("\n--- interval sweep ---\n");
    const RunResult fast = runAtInterval(125 * kNsPerMs, false);
    std::printf("average relative error @125ms: %.1f%%  (paper: 10.4%%)\n",
                100.0 * fast.avg_relative_error);
    std::printf("average relative error @250ms: %.1f%%  (paper:  6.2%%)\n",
                100.0 * main_run.avg_relative_error);
    const RunResult slow = runAtInterval(500 * kNsPerMs, false);
    std::printf("average relative error @500ms: %.1f%%  (paper:  6.7%%)\n",
                100.0 * slow.avg_relative_error);

    // --- Model comparison (baselines) ---------------------------------------
    std::printf("\n--- model comparison @250ms ---\n");
    const RunResult linear = runAtInterval(250 * kNsPerMs, false, "linear");
    std::printf("random forest (paper's model): %5.1f%%\n",
                100.0 * main_run.avg_relative_error);
    std::printf("ridge linear regression:       %5.1f%%\n",
                100.0 * linear.avg_relative_error);
    std::printf("persistence (last value):      %5.1f%%\n",
                100.0 * main_run.naive_relative_error);

    // --- Regression overhead ------------------------------------------------
    // CPU consumed by the regression per virtual second of operation,
    // relative to one core (the paper reports ~0.1% on top of monitoring).
    std::printf("\n--- regression overhead ---\n");
    std::printf("regression CPU per virtual second @250ms: %.3f%% of one core "
                "(paper: ~0.1%%)\n",
                100.0 * main_run.regression_cpu_sec / main_run.virtual_eval_sec);
    return 0;
}
