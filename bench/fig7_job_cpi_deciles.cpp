// Figure 7 reproduction: per-job CPI deciles over time (Case Study 2).
//
// Protocol (paper Section VI-C): four jobs each run one CORAL-2 application
// (LAMMPS, AMG, Kripke, Nekbone) on 32 nodes. A perfmetrics operator in each
// node's Pusher derives per-core CPI from the raw counters (one output per
// CPU core); a persyst job operator in the Collect Agent aggregates the
// per-core CPI of each job into deciles at every 1 s interval — each decile
// point aggregates 32 nodes x 64 cores = 2048 samples. The series for
// deciles 0, 2, 5, 8 and 10 are printed over each application's run.
//
// Expected qualitative signatures (the paper's reading of Fig. 7):
//   LAMMPS  — CPI ~1.6, minimal decile spread (compute-bound).
//   AMG     — low CPI up to decile 5, deciles 8/10 spiking to ~30
//             (network latency).
//   Kripke  — all deciles rise and fall together with each sweep iteration.
//   Nekbone — low CPI first half; spread grows dramatically once the
//             working set exceeds HBM capacity (>=20% of cores affected).
//
// The jobs run sequentially on a simulated 32-node partition (the paper ran
// them as separate job submissions); raw counters stay Pusher-local and only
// the derived CPI values cross MQTT, as the pipeline design intends.

#include <cstdio>
#include <memory>
#include <vector>

#include "collectagent/collect_agent.h"
#include "common/config.h"
#include "common/logging.h"
#include "core/hosting.h"
#include "core/operator_manager.h"
#include "plugins/registry.h"
#include "pusher/plugins/perfsim_group.h"
#include "pusher/pusher.h"

using namespace wm;
using common::kNsPerSec;
using common::TimestampNs;

namespace {

constexpr std::size_t kNodesPerJob = 32;
constexpr std::size_t kCoresPerNode = 64;

void runJob(simulator::AppKind app, const std::string& job_id) {
    mqtt::Broker broker;
    storage::StorageBackend storage;
    collectagent::CollectAgent agent({}, broker, storage);
    agent.start();
    jobs::JobManager jobs;

    std::vector<std::unique_ptr<pusher::Pusher>> pushers;
    std::vector<std::unique_ptr<core::QueryEngine>> engines;
    std::vector<std::unique_ptr<core::OperatorManager>> managers;
    std::vector<std::string> node_paths;

    for (std::size_t n = 0; n < kNodesPerJob; ++n) {
        const std::string node_path =
            "/rack" + std::to_string(n / 8) + "/chassis0/server" + std::to_string(n % 8);
        node_paths.push_back(node_path);
        auto node = std::make_shared<pusher::SimulatedNode>(kCoresPerNode, 7000 + n);
        node->startApp(app);
        auto p = std::make_unique<pusher::Pusher>(pusher::PusherConfig{node_path}, &broker);
        pusher::PerfsimGroupConfig perf;
        perf.node_path = node_path;
        perf.publish = false;  // raw counters stay local; only CPI crosses MQTT
        p->addGroup(std::make_unique<pusher::PerfsimGroup>(perf, node));
        p->sampleOnce(kNsPerSec);

        auto engine = std::make_unique<core::QueryEngine>();
        engine->setCacheStore(&p->cacheStore());
        engine->rebuildTree();
        auto manager = std::make_unique<core::OperatorManager>(
            core::makeHostContext(*engine, &p->cacheStore(), &broker, nullptr));
        plugins::registerBuiltinPlugins(*manager);
        const auto pm = common::parseConfig(R"(
operator pm {
    interval 1s
    window 3s
    input {
        sensor "<bottomup>cpu-cycles"
        sensor "<bottomup>instructions"
    }
    output {
        sensor "<bottomup>cpi"
    }
}
)");
        if (!pm.ok || manager->loadPlugin("perfmetrics", pm.root) != 1) {
            std::fprintf(stderr, "fig7: perfmetrics configuration failed\n");
            std::exit(1);
        }
        pushers.push_back(std::move(p));
        engines.push_back(std::move(engine));
        managers.push_back(std::move(manager));
    }

    jobs::JobRecord job;
    job.job_id = job_id;
    job.nodes = node_paths;
    job.start_time = 0;
    job.name = simulator::appName(app);
    jobs.submit(job);

    core::QueryEngine agent_engine;
    agent_engine.setCacheStore(&agent.cacheStore());
    agent_engine.setStorage(&storage);
    core::OperatorManager agent_manager(core::makeHostContext(
        agent_engine, &agent.cacheStore(), nullptr, &storage, &jobs));
    plugins::registerBuiltinPlugins(agent_manager);
    const auto ps = common::parseConfig(R"(
operator ps {
    interval 1s
    window 3s
    metric cpi
}
)");
    if (!ps.ok || agent_manager.loadPlugin("persyst", ps.root) != 1) {
        std::fprintf(stderr, "fig7: persyst configuration failed\n");
        std::exit(1);
    }

    const auto duration = static_cast<TimestampNs>(simulator::appDefaultDurationSec(app));
    std::printf("--- %s: CPI deciles vs time (32 nodes x 64 cores = 2048 samples) ---\n",
                simulator::appName(app));
    std::printf("%7s %8s %8s %8s %8s %8s\n", "t[s]", "dec0", "dec2", "dec5", "dec8",
                "dec10");
    for (TimestampNs t = 2; t <= duration; ++t) {
        const TimestampNs now = t * kNsPerSec;
        for (std::size_t n = 0; n < kNodesPerJob; ++n) {
            pushers[n]->sampleOnce(now);
            managers[n]->tickAll(now);
        }
        if (t == 4) agent_engine.rebuildTree();  // the cpi outputs are now known
        agent_manager.tickAll(now);
        if (t % 25 == 0) {
            double dec[5] = {};
            const int which[5] = {0, 2, 5, 8, 10};
            bool have_all = true;
            for (int i = 0; i < 5; ++i) {
                const auto reading = storage.latest("/job/" + job_id + "/cpi-dec" +
                                                    std::to_string(which[i]));
                if (!reading) have_all = false;
                dec[i] = reading ? reading->value : 0.0;
            }
            if (have_all) {
                std::printf("%7lld %8.2f %8.2f %8.2f %8.2f %8.2f\n",
                            static_cast<long long>(t), dec[0], dec[1], dec[2], dec[3],
                            dec[4]);
            }
        }
    }
    std::printf("\n");
}

}  // namespace

int main() {
    common::Logger::instance().setLevel(common::LogLevel::kError);
    std::printf("=== Figure 7: per-job CPI deciles for four CORAL-2 jobs ===\n\n");
    runJob(simulator::AppKind::kLammps, "3001");
    runJob(simulator::AppKind::kAmg, "3002");
    runJob(simulator::AppKind::kKripke, "3003");
    runJob(simulator::AppKind::kNekbone, "3004");
    std::printf("paper shape: LAMMPS tight around CPI 1.6; AMG upper-decile spikes to\n"
                "~30; Kripke sawtooth across all deciles; Nekbone spread widens in the\n"
                "second half of the run (memory-limited tail of cores).\n");
    return 0;
}
