// Figure 8 reproduction: Bayesian Gaussian mixture clustering of compute
// nodes (Case Study 3).
//
// Protocol (paper Section VI-D): a clustering operator in the Collect Agent
// has one unit per compute node of the 148-node CooLMUC-3-like cluster.
// Each unit's inputs are the node's power, temperature and CPU idle time
// sensors; at each (hourly) computation the operator aggregates 2-week
// windows — power/temperature as averages, the idle counter as a rate — and
// fits a variational Bayesian Gaussian mixture over the 148 points. The
// model determines the number of clusters autonomously; nodes below the
// density threshold (0.001) under every component are outliers.
//
// The simulated 2 weeks assign every node a utilisation propensity (20% of
// nodes mostly idle, 60% moderately loaded, 20% heavily loaded) and a random
// job mix drawn from the CORAL-2 applications; one node draws ~20% more
// power than its peers (the paper's suspicious node).
//
// Expected shape: the three metrics strongly correlate (nodes lie on a
// linear power/temperature/idle trend); ~3 clusters with most nodes in the
// middle one; the anomalous node flagged as an outlier.

#include <cstdio>
#include <map>
#include <memory>
#include <vector>

#include "common/config.h"
#include "common/logging.h"
#include "analytics/stats.h"
#include "common/rng.h"
#include "core/hosting.h"
#include "core/operator_manager.h"
#include "plugins/clustering_operator.h"
#include "plugins/registry.h"
#include "simulator/node_model.h"
#include "simulator/topology.h"

using namespace wm;
using common::kNsPerSec;
using common::TimestampNs;

namespace {

constexpr double kWindowSec = 14.0 * 24.0 * 3600.0;  // two weeks
constexpr double kStepSec = 300.0;                   // integration step
constexpr std::size_t kCoresPerNode = 16;            // scaled from 64 (DESIGN.md)
constexpr std::size_t kAnomalousNode = 42;

/// Simulates one node's two weeks of operation and stores the three sensors.
void simulateNode(std::size_t index, const std::string& path, double busy_fraction,
                  bool anomalous, sensors::CacheStore& caches) {
    simulator::NodeCharacteristics characteristics;
    if (anomalous) characteristics.anomaly_power_factor = 1.2;
    simulator::NodeModel node(kCoresPerNode, 9000 + index, characteristics);
    common::Rng rng(31 + index);

    sensors::SensorMetadata meta;
    meta.interval_ns = static_cast<TimestampNs>(kStepSec) * kNsPerSec;
    meta.topic = path + "/power";
    auto& power = caches.getOrCreate(meta);
    meta.topic = path + "/temp";
    auto& temp = caches.getOrCreate(meta);
    meta.topic = path + "/col_idle";
    auto& idle = caches.getOrCreate(meta);

    const simulator::AppKind apps[] = {simulator::AppKind::kHpl, simulator::AppKind::kKripke,
                                       simulator::AppKind::kAmg, simulator::AppKind::kNekbone,
                                       simulator::AppKind::kLammps};
    double phase_remaining = 0.0;
    for (double t = kStepSec; t <= kWindowSec; t += kStepSec) {
        if (phase_remaining <= 0.0) {
            // Draw the next phase: a job or an idle gap, with the node's
            // utilisation propensity steering the choice.
            if (rng.bernoulli(busy_fraction)) {
                node.startApp(apps[rng.uniformInt(5)]);
                phase_remaining = rng.uniform(1.0, 8.0) * 3600.0;  // job: 1-8 h
            } else {
                node.startApp(simulator::AppKind::kIdle);
                phase_remaining = rng.uniform(0.5, 6.0) * 3600.0;
            }
        }
        node.advance(kStepSec);
        phase_remaining -= kStepSec;
        const auto& sample = node.sample();
        const auto ts = static_cast<TimestampNs>(t) * kNsPerSec;
        power.store({ts, sample.power_w});
        temp.store({ts, sample.temperature_c});
        idle.store({ts, sample.idle_time_total});
    }
}

}  // namespace

int main() {
    common::Logger::instance().setLevel(common::LogLevel::kError);
    std::printf("=== Figure 8: Bayesian GMM clustering of 148 compute nodes ===\n\n");

    const simulator::Topology topology = simulator::Topology::coolmuc3();
    const std::size_t num_nodes = topology.nodeCount();
    sensors::CacheStore caches(static_cast<TimestampNs>(kWindowSec * 1.1) * kNsPerSec);

    common::Rng mix_rng(2026);
    std::vector<double> busy_fractions(num_nodes);
    for (std::size_t n = 0; n < num_nodes; ++n) {
        const double draw = mix_rng.uniform();
        if (draw < 0.2) {
            busy_fractions[n] = mix_rng.uniform(0.04, 0.14);  // mostly idle
        } else if (draw < 0.8) {
            busy_fractions[n] = mix_rng.uniform(0.45, 0.60);  // the bulk
        } else {
            busy_fractions[n] = mix_rng.uniform(0.88, 0.97);  // heavy load
        }
    }
    for (std::size_t n = 0; n < num_nodes; ++n) {
        simulateNode(n, topology.nodePath(n), busy_fractions[n], n == kAnomalousNode,
                     caches);
    }
    std::printf("simulated %zu nodes x 2 weeks (%zu sensors, %.0f s sampling)\n\n",
                num_nodes, caches.sensorCount(), kStepSec);

    core::QueryEngine engine;
    engine.setCacheStore(&caches);
    engine.rebuildTree();
    core::OperatorManager manager(
        core::makeHostContext(engine, &caches, nullptr, nullptr));
    plugins::registerBuiltinPlugins(manager);

    const auto config = common::parseConfig(R"(
operator nodecl {
    interval 1h
    window 15d
    maxComponents 10
    outlierThreshold 0.001
    input {
        sensor "<bottomup>power"
        sensor "<bottomup>temp"
        sensor "<bottomup>col_idle"
    }
    output {
        sensor "<bottomup>cluster"
    }
}
)");
    if (!config.ok || manager.loadPlugin("clustering", config.root) != 1) {
        std::fprintf(stderr, "fig8: clustering configuration failed\n");
        return 1;
    }
    manager.tickAll(static_cast<TimestampNs>(kWindowSec) * kNsPerSec);
    auto op = std::dynamic_pointer_cast<plugins::ClusteringOperator>(
        manager.findOperator("nodecl"));

    // --- Correlation structure (the paper's linear trend) -------------------
    std::vector<double> powers, temps, idles;
    std::vector<int> labels(num_nodes, -99);
    for (std::size_t n = 0; n < num_nodes; ++n) {
        const std::string path = topology.nodePath(n);
        const auto point = op->lastPointOf(path);
        if (point.size() != 3) continue;
        powers.push_back(point[0]);
        temps.push_back(point[1]);
        idles.push_back(point[2]);
        const auto label = caches.find(path + "/cluster")->latest();
        if (label) labels[n] = static_cast<int>(label->value);
    }
    std::printf("metric correlations over nodes: corr(power,temp)=%.3f  "
                "corr(power,idle)=%.3f\n\n",
                analytics::pearson(powers, temps).value_or(0.0),
                analytics::pearson(powers, idles).value_or(0.0));

    // --- Cluster summary -----------------------------------------------------
    std::printf("fitted %zu mixture components (cap was 10)\n\n",
                op->model().effectiveComponents());
    struct Accumulator {
        int count = 0;
        double power = 0.0, temp = 0.0, idle = 0.0;
    };
    std::map<int, Accumulator> clusters;
    for (std::size_t n = 0; n < num_nodes; ++n) {
        const auto point = op->lastPointOf(topology.nodePath(n));
        if (point.size() != 3) continue;
        auto& acc = clusters[labels[n]];
        ++acc.count;
        acc.power += point[0];
        acc.temp += point[1];
        acc.idle += point[2];
    }
    std::printf("%8s %6s %12s %10s %14s\n", "cluster", "nodes", "power[W]", "temp[C]",
                "idle[cs/s]");
    for (const auto& [label, acc] : clusters) {
        std::printf("%8d %6d %12.1f %10.2f %14.1f\n", label, acc.count,
                    acc.power / acc.count, acc.temp / acc.count, acc.idle / acc.count);
    }

    // --- Outliers ------------------------------------------------------------
    std::printf("\noutliers (label -1):\n");
    bool anomaly_flagged = false;
    for (std::size_t n = 0; n < num_nodes; ++n) {
        if (labels[n] != -1) continue;
        const auto point = op->lastPointOf(topology.nodePath(n));
        std::printf("  %-28s power=%.1fW temp=%.2fC idle=%.1fcs/s%s\n",
                    topology.nodePath(n).c_str(), point[0], point[1], point[2],
                    n == kAnomalousNode ? "   <-- injected +20% power anomaly" : "");
        if (n == kAnomalousNode) anomaly_flagged = true;
    }
    std::printf("\ninjected anomalous node flagged as outlier: %s\n",
                anomaly_flagged ? "YES" : "NO");
    std::printf("\npaper shape: 3 clusters along a correlated linear trend, most nodes\n"
                "in the central cluster, and the ~20%%-extra-power node an outlier.\n");
    return 0;
}
