// Ingest-scaling benchmark for the sharded storage plane (docs/PERFORMANCE.md,
// "Sharded ingest and storage").
//
// Protocol: a ShardedStorageBackend is pre-populated with the full sensor
// topic universe of a simulated cluster, then driven by 4 ingest threads
// (batched insertBatch over disjoint topic slices) while 2 status threads
// continuously poll stats() — the whole-store statistics pass behind the
// /status endpoint, which visits every series under the store's
// reader-writer lock. On the unsharded backend each poll holds the single
// global lock for the full pass, and glibc's reader-preferring rwlock lets
// back-to-back polls from two threads overlap indefinitely, starving the
// ingest threads almost completely once the sensor count is large. Sharding
// bounds every poll's lock hold to one shard at a time, so ingest proceeds
// on the other shards and each blocked insert waits one shard's pass, not
// the whole store's. The benchmark sweeps shards in {1,2,4,8} and reports
// messages/sec; tools/bench_run.py --shard gates CI on a >= 2.5x speedup at
// 4 shards.
//
// The full grid runs the production10k topology: 10,000 nodes x 64 CPUs with
// two per-CPU metrics plus two per-node metrics — 1.3M interned sensor
// topics, exercising the TopicTable and ShardMap at the paper's "future
// leadership-class system" scale.
//
// Flags:
//   --quick        a 2,000-node / 132k-topic universe and 1s windows for CI
//                  smoke (below ~100k topics the per-pass lock hold drops
//                  under a scheduler quantum and the numbers turn to noise)
//   --json <path>  emit the point grid as JSON (consumed by tools/bench_run.py
//                  into BENCH_shard.json)

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "common/thread.h"
#include "common/time_utils.h"
#include "sensors/reading.h"
#include "simulator/topology.h"
#include "storage/sharded_storage_backend.h"

using namespace wm;
using common::kNsPerSec;

namespace {

constexpr std::size_t kIngestThreads = 4;
constexpr std::size_t kScanThreads = 2;
constexpr std::size_t kReadingsPerMessage = 8;
/// Repetitions per shard count; the reported rate is the median, smoothing
/// out scheduler luck on the single-CPU CI box.
constexpr std::size_t kRepetitions = 3;
constexpr std::size_t kShardCounts[] = {1, 2, 4, 8};

struct Point {
    std::size_t shards = 0;
    std::uint64_t messages = 0;
    std::uint64_t readings = 0;
    std::uint64_t scans = 0;
    double elapsed_sec = 0.0;
    double msgs_per_sec = 0.0;
};

/// The cluster's sensor topic universe: per node "power" and "temp", plus
/// `per_cpu_metrics` sensors under every CPU.
std::vector<std::string> buildTopics(const simulator::Topology& topology,
                                     std::size_t per_cpu_metrics) {
    static const char* kCpuMetrics[] = {"instr", "cpi"};
    std::vector<std::string> topics;
    const std::size_t nodes = topology.nodeCount();
    topics.reserve(nodes * (2 + topology.cpus_per_node * per_cpu_metrics));
    for (std::size_t n = 0; n < nodes; ++n) {
        const std::string node_path = topology.nodePath(n);
        topics.push_back(node_path + "/power");
        topics.push_back(node_path + "/temp");
        for (std::size_t c = 0; c < topology.cpus_per_node; ++c) {
            const std::string cpu = simulator::Topology::cpuPath(node_path, c);
            for (std::size_t m = 0; m < per_cpu_metrics && m < 2; ++m) {
                topics.push_back(cpu + "/" + kCpuMetrics[m]);
            }
        }
    }
    return topics;
}

Point runWindow(storage::ShardedStorageBackend& storage,
                const std::vector<std::string>& topics, double seconds) {
    std::atomic<bool> stop{false};
    std::atomic<std::uint64_t> messages{0};
    std::atomic<std::uint64_t> scans{0};

    std::vector<common::Thread> threads;
    threads.reserve(kIngestThreads + kScanThreads);
    // Scan threads first, with a head start: in a deployment the /status
    // polls are already in flight when ingest ramps, and on a single-CPU
    // host the rwlock hand-off is sticky — whichever side holds the lock
    // chain when the window opens tends to keep it, so the initial
    // condition must be pinned or the measurement is a coin flip between
    // the two regimes.
    for (std::size_t s = 0; s < kScanThreads; ++s) {
        threads.emplace_back(
            [&] {
                std::uint64_t local = 0;
                while (!stop.load(std::memory_order_relaxed)) {
                    // The whole-store read path a deployment runs
                    // continuously: the /status statistics pass.
                    (void)storage.stats();
                    ++local;
                }
                scans.fetch_add(local, std::memory_order_relaxed);
            },
            "shard-scan");
    }
    common::Thread::sleepFor(std::chrono::milliseconds(100));

    const auto t0 = std::chrono::steady_clock::now();
    for (std::size_t w = 0; w < kIngestThreads; ++w) {
        threads.emplace_back(
            [&, w] {
                sensors::ReadingVector batch(kReadingsPerMessage);
                common::TimestampNs ts = 2;
                std::size_t next = w;
                std::uint64_t local = 0;
                while (!stop.load(std::memory_order_relaxed)) {
                    const std::string& topic = topics[next];
                    next += kIngestThreads;
                    if (next >= topics.size()) next = w;
                    for (std::size_t r = 0; r < kReadingsPerMessage; ++r) {
                        batch[r].timestamp = ts++;
                        batch[r].value = static_cast<double>(local);
                    }
                    storage.insertBatch(topic, batch);
                    ++local;
                }
                messages.fetch_add(local, std::memory_order_relaxed);
            },
            "shard-ingest");
    }
    common::Thread::sleepFor(std::chrono::duration<double>(seconds));
    stop.store(true, std::memory_order_relaxed);
    for (auto& thread : threads) thread.join();
    const double elapsed =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();

    Point point;
    point.shards = storage.shardCount();
    point.messages = messages.load();
    point.readings = point.messages * kReadingsPerMessage;
    point.scans = scans.load();
    point.elapsed_sec = elapsed;
    point.msgs_per_sec = elapsed > 0.0 ? static_cast<double>(point.messages) / elapsed
                                       : 0.0;
    return point;
}

Point runPoint(const std::vector<std::string>& topics, std::size_t shard_count,
               double seconds) {
    storage::ShardedStorageBackend storage(shard_count);
    // Pre-populate every series (and warm the shard map + topic table)
    // before the clock starts, so the scans cover the full universe from
    // the first pass.
    for (std::size_t i = 0; i < topics.size(); ++i) {
        storage.insert(topics[i], {static_cast<common::TimestampNs>(1),
                                   static_cast<double>(i)});
    }
    std::vector<Point> windows;
    for (std::size_t rep = 0; rep < kRepetitions; ++rep) {
        windows.push_back(runWindow(storage, topics, seconds));
    }
    std::sort(windows.begin(), windows.end(),
              [](const Point& a, const Point& b) {
                  return a.msgs_per_sec < b.msgs_per_sec;
              });
    return windows[windows.size() / 2];
}

double speedup(const std::vector<Point>& points, std::size_t shards) {
    const double base = points.front().msgs_per_sec;
    for (const auto& point : points) {
        if (point.shards == shards) {
            return base > 0.0 ? point.msgs_per_sec / base
                              : (point.msgs_per_sec > 0.0 ? 1e9 : 1.0);
        }
    }
    return 0.0;
}

void writeJson(const char* path, const char* mode, std::size_t nodes,
               std::size_t topic_count, double seconds,
               const std::vector<Point>& points) {
    std::FILE* out = std::fopen(path, "w");
    if (out == nullptr) {
        std::fprintf(stderr, "micro_shard: cannot write %s\n", path);
        return;
    }
    std::fprintf(out,
                 "{\"schema\":\"wintermute-bench-v1\",\"bench\":\"micro_shard\","
                 "\"mode\":\"%s\",\"nodes\":%zu,\"topics\":%zu,"
                 "\"ingest_threads\":%zu,\"scan_threads\":%zu,"
                 "\"seconds_per_point\":%g,\"points\":[",
                 mode, nodes, topic_count, kIngestThreads, kScanThreads, seconds);
    for (std::size_t i = 0; i < points.size(); ++i) {
        const Point& p = points[i];
        std::fprintf(out,
                     "%s{\"shards\":%zu,\"messages\":%llu,\"readings\":%llu,"
                     "\"scans\":%llu,\"elapsed_sec\":%.3f,\"msgs_per_sec\":%.1f}",
                     i > 0 ? "," : "", p.shards,
                     static_cast<unsigned long long>(p.messages),
                     static_cast<unsigned long long>(p.readings),
                     static_cast<unsigned long long>(p.scans), p.elapsed_sec,
                     p.msgs_per_sec);
    }
    std::fprintf(out,
                 "],\"speedup_2v1\":%.3f,\"speedup_4v1\":%.3f,"
                 "\"speedup_8v1\":%.3f}\n",
                 speedup(points, 2), speedup(points, 4), speedup(points, 8));
    std::fclose(out);
}

}  // namespace

int main(int argc, char** argv) {
    bool quick = false;
    const char* json_path = nullptr;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--quick") == 0) {
            quick = true;
        } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
            json_path = argv[++i];
        } else {
            std::fprintf(stderr, "usage: %s [--quick] [--json PATH]\n", argv[0]);
            return 2;
        }
    }

    simulator::Topology topology = simulator::Topology::production10k();
    if (quick) {
        topology.racks = 10;  // 2,000 nodes, 132k topics with one CPU metric
        topology.chassis_per_rack = 20;
        topology.nodes_per_chassis = 10;
    }
    const std::size_t per_cpu_metrics = quick ? 1 : 2;
    const double seconds = quick ? 1.0 : 3.0;
    const std::vector<std::string> topics = buildTopics(topology, per_cpu_metrics);
    std::printf("micro_shard: %zu nodes, %zu topics, %zu ingest + %zu scan "
                "threads, %.1fs per point\n",
                topology.nodeCount(), topics.size(), kIngestThreads, kScanThreads,
                seconds);

    std::vector<Point> points;
    for (const std::size_t shard_count : kShardCounts) {
        const Point point = runPoint(topics, shard_count, seconds);
        points.push_back(point);
        std::printf("  shards=%zu  %12.1f msgs/s  (%llu messages, %llu scans, "
                    "%.2fs)\n",
                    point.shards, point.msgs_per_sec,
                    static_cast<unsigned long long>(point.messages),
                    static_cast<unsigned long long>(point.scans),
                    point.elapsed_sec);
    }
    std::printf("speedup vs 1 shard: x2=%.2f x4=%.2f x8=%.2f\n",
                speedup(points, 2), speedup(points, 4), speedup(points, 8));

    if (json_path != nullptr) {
        writeJson(json_path, quick ? "quick" : "full", topology.nodeCount(),
                  topics.size(), seconds, points);
    }
    return 0;
}
