// Figure 5 reproduction: runtime overhead of the Wintermute Query Engine.
//
// Protocol (paper Section VI-A): an HPL-like compute benchmark runs with and
// without a Pusher active. The Pusher hosts a tester monitoring plugin
// producing 1000 monotonic sensors at a 1 s interval (cache window 180 s)
// and a tester operator plugin that performs a configurable number of
// queries over its unit's inputs at each 1 s computation interval. Overhead
// is the percentage increase in kernel execution time. The grid sweeps the
// number of queries {2,10,100,500,1000} and the query temporal range
// {0, 12.5 s, 25 s, 50 s, 100 s} (the paper's axis labels are in ms), in
// both absolute (binary search, O(log N)) and relative (O(1)) query modes.
// Each cell reports the median of several repetitions.
//
// Differences from the paper's testbed (see DESIGN.md): the kernel is a
// single-threaded blocked DGEMM instead of full HPL on a 64-core KNL, and
// overhead is computed from CPU time rather than wall-clock time: on the
// shared machine this benchmark runs on, wall-clock noise (frequency
// scaling, co-tenants) dwarfs sub-percent effects, whereas the CPU seconds
// consumed by the monitoring threads relative to the kernel's CPU seconds
// measure exactly the quantity that manifests as wall-clock slowdown on a
// dedicated node. The footprint section reports process RSS and the total
// readings the tester operators retrieved.
//
// Flags:
//   --quick        shrink the grid and repetitions for CI smoke runs
//   --json <path>  additionally emit the full cell grid as JSON
//                  (consumed by tools/bench_run.py into BENCH_*.json)

#include <sys/resource.h>
#include <time.h>

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "common/config.h"
#include "common/logging.h"
#include "core/hosting.h"
#include "core/operator_manager.h"
#include "plugins/registry.h"
#include "plugins/tester_operator.h"
#include "pusher/plugins/tester_group.h"
#include "pusher/pusher.h"
#include "simulator/hpl_kernel.h"

using namespace wm;
using common::kNsPerMs;
using common::kNsPerSec;
using common::TimestampNs;

namespace {

constexpr std::size_t kMatrixSize = 160;

double medianOf(std::vector<double> values) {
    std::sort(values.begin(), values.end());
    return values[values.size() / 2];
}

/// Pre-fills the tester sensors' caches with 180 s of history ending now, so
/// long-range queries have data from the first kernel second onward (the
/// paper's runs are long enough for the window to fill naturally).
void prefillCaches(pusher::Pusher& pusher, TimestampNs now) {
    for (const auto& topic : pusher.cacheStore().topics()) {
        sensors::SensorCache* cache = pusher.cacheStore().find(topic);
        for (int s = 180; s >= 1; --s) {
            cache->store({now - s * kNsPerSec, static_cast<double>(200 - s)});
        }
    }
}

double rssMegabytes() {
    struct rusage usage{};
    getrusage(RUSAGE_SELF, &usage);
    return static_cast<double>(usage.ru_maxrss) / 1024.0;
}

/// CPU seconds consumed by the whole process (all threads).
double processCpuSec() {
    struct timespec ts{};
    clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &ts);
    return static_cast<double>(ts.tv_sec) + static_cast<double>(ts.tv_nsec) * 1e-9;
}

/// CPU seconds consumed by the calling thread only.
double threadCpuSec() {
    struct timespec ts{};
    clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts);
    return static_cast<double>(ts.tv_sec) + static_cast<double>(ts.tv_nsec) * 1e-9;
}

struct Cell {
    bool relative = false;
    TimestampNs window_ns = 0;
    std::size_t queries = 0;
    double overhead_pct = 0.0;
};

}  // namespace

int main(int argc, char** argv) {
    bool quick = false;
    std::string json_path;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--quick") == 0) {
            quick = true;
        } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
            json_path = argv[++i];
        } else {
            std::fprintf(stderr, "usage: %s [--quick] [--json <path>]\n", argv[0]);
            return 2;
        }
    }

    common::Logger::instance().setLevel(common::LogLevel::kError);
    std::printf("=== Figure 5: Query Engine overhead vs HPL-like kernel ===\n\n");

    const std::size_t sensors = quick ? 100 : 1000;
    const int repetitions = quick ? 1 : 3;
    const double kernel_target_sec = quick ? 0.3 : 1.5;

    // Warm up, then calibrate the kernel to ~kernel_target_sec per run.
    simulator::runHplKernel(kMatrixSize, 4);
    const simulator::HplResult probe = simulator::runHplKernel(kMatrixSize, 8);
    const std::size_t kernel_reps = std::max<std::size_t>(
        1, static_cast<std::size_t>(8.0 * kernel_target_sec / probe.elapsed_sec));
    std::printf("kernel: %.2f GFLOP/s, %zu repetitions per run (~%.1f s)%s\n\n",
                probe.gflops, kernel_reps,
                probe.elapsed_sec / 8.0 * static_cast<double>(kernel_reps),
                quick ? " [quick mode]" : "");

    const std::vector<std::size_t> query_counts =
        quick ? std::vector<std::size_t>{2, 100, 1000}
              : std::vector<std::size_t>{2, 10, 100, 500, 1000};
    const std::vector<TimestampNs> windows =
        quick ? std::vector<TimestampNs>{0, 25000 * kNsPerMs, 100000 * kNsPerMs}
              : std::vector<TimestampNs>{0, 12500 * kNsPerMs, 25000 * kNsPerMs,
                                         50000 * kNsPerMs, 100000 * kNsPerMs};
    std::uint64_t total_readings_retrieved = 0;
    std::vector<Cell> cells;

    for (const bool relative : {false, true}) {
        std::printf("--- %s mode: overhead [%%] ---\n",
                    relative ? "relative (O(1))" : "absolute (O(log N))");
        std::printf("%12s", "range\\q");
        for (std::size_t q : query_counts) std::printf("%9zu", q);
        std::printf("\n");
        for (TimestampNs window : windows) {
            std::printf("%10lldms", static_cast<long long>(window / kNsPerMs));
            for (std::size_t q : query_counts) {
                std::vector<double> overheads;
                for (int rep = 0; rep < repetitions; ++rep) {
                    pusher::Pusher pusher(pusher::PusherConfig{"fig5"});
                    pusher::TesterGroupConfig tester;
                    tester.num_sensors = sensors;
                    tester.interval_ns = kNsPerSec;
                    pusher.addGroup(std::make_unique<pusher::TesterGroup>(tester));
                    prefillCaches(pusher, common::nowNs());

                    core::QueryEngine engine;
                    engine.setCacheStore(&pusher.cacheStore());
                    engine.rebuildTree();
                    core::OperatorManager manager(core::makeHostContext(
                        engine, &pusher.cacheStore(), nullptr, nullptr));
                    plugins::registerBuiltinPlugins(manager);
                    // All tester sensors are inputs of the single unit;
                    // the operator cycles its queries across them.
                    std::string input_block = "    input {\n";
                    for (std::size_t s = 0; s < sensors; ++s) {
                        input_block +=
                            "        sensor \"<topdown>test" + std::to_string(s) + "\"\n";
                    }
                    input_block += "    }\n";
                    const auto parsed = common::parseConfig(
                        "operator qload {\n"
                        "    interval 1s\n"
                        "    window " + std::to_string(window / kNsPerMs) + "ms\n"
                        "    queryMode " +
                        std::string(relative ? "relative" : "absolute") + "\n"
                        "    queries " + std::to_string(q) + "\n"
                        "    publish false\n" +
                        input_block +
                        "    output {\n        sensor \"<topdown>qcount\"\n    }\n"
                        "}\n");
                    if (!parsed.ok || manager.loadPlugin("tester", parsed.root) != 1) {
                        std::fprintf(stderr, "fig5: configuration failed\n");
                        return 1;
                    }
                    pusher.start();
                    manager.start();
                    const double process_before = processCpuSec();
                    const double thread_before = threadCpuSec();
                    simulator::runHplKernel(kMatrixSize, kernel_reps, rep + 100);
                    const double kernel_cpu = threadCpuSec() - thread_before;
                    manager.stop();
                    pusher.stop();
                    // CPU spent by the monitoring/analysis threads while the
                    // kernel ran (and drained afterwards).
                    const double monitoring_cpu =
                        processCpuSec() - process_before - kernel_cpu;
                    auto op = std::dynamic_pointer_cast<plugins::TesterOperator>(
                        manager.findOperator("qload"));
                    if (op) total_readings_retrieved += op->totalReadingsRetrieved();
                    overheads.push_back(std::max(0.0, monitoring_cpu) / kernel_cpu *
                                        100.0);
                }
                const double median = medianOf(overheads);
                cells.push_back({relative, window, q, median});
                std::printf("%9.2f", median);
                std::fflush(stdout);
            }
            std::printf("\n");
        }
        std::printf("\n");
    }

    std::printf("--- footprint ---\n");
    std::printf("process peak RSS: %.1f MB (paper: Pusher memory < 25 MB)\n",
                rssMegabytes());
    std::printf("total readings retrieved by tester operators: %llu\n",
                static_cast<unsigned long long>(total_readings_retrieved));
    std::printf("\npaper shape: overhead < 0.5%% in all cells; absolute mode slightly\n"
                "worse than relative at the peak; no growth with query volume.\n");

    if (!json_path.empty()) {
        std::FILE* out = std::fopen(json_path.c_str(), "w");
        if (out == nullptr) {
            std::fprintf(stderr, "fig5: cannot write %s\n", json_path.c_str());
            return 1;
        }
        std::fprintf(out, "{\n  \"benchmark\": \"fig5_query_overhead\",\n");
        std::fprintf(out, "  \"quick\": %s,\n", quick ? "true" : "false");
        std::fprintf(out, "  \"sensors\": %zu,\n", sensors);
        std::fprintf(out, "  \"repetitions\": %d,\n", repetitions);
        std::fprintf(out, "  \"peak_rss_mb\": %.1f,\n", rssMegabytes());
        std::fprintf(out, "  \"total_readings_retrieved\": %llu,\n",
                     static_cast<unsigned long long>(total_readings_retrieved));
        std::fprintf(out, "  \"cells\": [\n");
        for (std::size_t i = 0; i < cells.size(); ++i) {
            const Cell& cell = cells[i];
            std::fprintf(out,
                         "    {\"mode\": \"%s\", \"window_ms\": %lld, "
                         "\"queries\": %zu, \"overhead_pct\": %.4f}%s\n",
                         cell.relative ? "relative" : "absolute",
                         static_cast<long long>(cell.window_ns / kNsPerMs),
                         cell.queries, cell.overhead_pct,
                         i + 1 < cells.size() ? "," : "");
        }
        std::fprintf(out, "  ]\n}\n");
        std::fclose(out);
        std::printf("wrote %s\n", json_path.c_str());
    }
    return 0;
}
