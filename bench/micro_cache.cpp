// Microbenchmarks for the sensor cache: store throughput, the complexity
// split between the two Query Engine view modes — relative views use O(1)
// positioning, absolute views use O(log N) binary search (paper Section
// V-B) — and the copy-free access paths added for the hot data plane:
// fused statsRelative vs view-then-reduce, forEachRelative vs the copying
// viewRelative, and id-keyed CacheStore lookup vs string hashing
// (docs/PERFORMANCE.md).

#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "alloc_counter.h"
#include "sensors/sensor_cache.h"
#include "sensors/topic_table.h"

namespace {

using wm::common::kNsPerSec;
using wm::common::TimestampNs;
using wm::sensors::CacheHandle;
using wm::sensors::CacheStore;
using wm::sensors::RangeStats;
using wm::sensors::Reading;
using wm::sensors::SensorCache;
using wm::sensors::TopicId;

void fillCache(SensorCache& cache, std::size_t n) {
    for (std::size_t i = 1; i <= n; ++i) {
        cache.store({static_cast<TimestampNs>(i) * kNsPerSec, static_cast<double>(i)});
    }
}

void BM_CacheStore(benchmark::State& state) {
    SensorCache cache(static_cast<TimestampNs>(state.range(0)) * kNsPerSec, kNsPerSec);
    TimestampNs t = 0;
    for (auto _ : state) {
        t += kNsPerSec;
        cache.store({t, 1.0});
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CacheStore)->Arg(60)->Arg(600)->Arg(3600);

/// Positioning cost of a relative view: a fixed-size (single-reading) view
/// from caches of growing size. O(1): time should not grow with N.
void BM_CacheViewRelativePositioning(benchmark::State& state) {
    const auto n = static_cast<std::size_t>(state.range(0));
    SensorCache cache(static_cast<TimestampNs>(n + 10) * kNsPerSec, kNsPerSec);
    fillCache(cache, n);
    for (auto _ : state) {
        benchmark::DoNotOptimize(cache.viewRelative(0));
    }
    state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_CacheViewRelativePositioning)
    ->RangeMultiplier(8)
    ->Range(64, 262144)
    ->Complexity(benchmark::o1);

/// Positioning cost of an absolute view: a single-reading range located by
/// binary search in caches of growing size. O(log N).
void BM_CacheViewAbsolutePositioning(benchmark::State& state) {
    const auto n = static_cast<std::size_t>(state.range(0));
    SensorCache cache(static_cast<TimestampNs>(n + 10) * kNsPerSec, kNsPerSec);
    fillCache(cache, n);
    const TimestampNs mid = static_cast<TimestampNs>(n / 2) * kNsPerSec;
    for (auto _ : state) {
        benchmark::DoNotOptimize(cache.viewAbsolute(mid, mid));
    }
    state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_CacheViewAbsolutePositioning)
    ->RangeMultiplier(8)
    ->Range(64, 262144)
    ->Complexity(benchmark::oLogN);

/// Full view extraction including the copy, for paper-sized windows.
void BM_CacheViewRelativeWindow(benchmark::State& state) {
    SensorCache cache(200 * kNsPerSec, kNsPerSec);
    fillCache(cache, 180);
    const TimestampNs window = static_cast<TimestampNs>(state.range(0)) * kNsPerSec;
    const std::uint64_t allocs_before = wm::bench::allocCount();
    for (auto _ : state) {
        benchmark::DoNotOptimize(cache.viewRelative(window));
    }
    state.counters["allocs/op"] = wm::bench::allocsPerOp(
        allocs_before, wm::bench::allocCount(), state.iterations());
}
BENCHMARK(BM_CacheViewRelativeWindow)->Arg(0)->Arg(12)->Arg(25)->Arg(50)->Arg(100);

/// Copy-free counterpart of BM_CacheViewRelativeWindow: visits the same
/// window in place under the shared lock. allocs/op should be 0.
void BM_CacheForEachRelativeWindow(benchmark::State& state) {
    SensorCache cache(200 * kNsPerSec, kNsPerSec);
    fillCache(cache, 180);
    const TimestampNs window = static_cast<TimestampNs>(state.range(0)) * kNsPerSec;
    const std::uint64_t allocs_before = wm::bench::allocCount();
    double sum = 0.0;
    for (auto _ : state) {
        cache.forEachRelative(window, [&sum](const Reading& r) { sum += r.value; });
        benchmark::DoNotOptimize(sum);
    }
    state.counters["allocs/op"] = wm::bench::allocsPerOp(
        allocs_before, wm::bench::allocCount(), state.iterations());
}
BENCHMARK(BM_CacheForEachRelativeWindow)->Arg(0)->Arg(12)->Arg(25)->Arg(50)->Arg(100);

/// The pre-optimisation reduction shape: materialise the window vector,
/// then reduce it. Baseline for BM_CacheStatsRelative.
void BM_CacheViewThenReduce(benchmark::State& state) {
    SensorCache cache(200 * kNsPerSec, kNsPerSec);
    fillCache(cache, 180);
    const TimestampNs window = static_cast<TimestampNs>(state.range(0)) * kNsPerSec;
    const std::uint64_t allocs_before = wm::bench::allocCount();
    for (auto _ : state) {
        const auto readings = cache.viewRelative(window);
        RangeStats stats;
        for (const auto& reading : readings) stats.accumulate(reading);
        benchmark::DoNotOptimize(stats);
    }
    state.counters["allocs/op"] = wm::bench::allocsPerOp(
        allocs_before, wm::bench::allocCount(), state.iterations());
}
BENCHMARK(BM_CacheViewThenReduce)->Arg(12)->Arg(60)->Arg(100);

/// Fused reduction: count/sum/min/max/first/last in one locked pass, no
/// intermediate vector. This is what aggregator/perfmetrics ride.
void BM_CacheStatsRelative(benchmark::State& state) {
    SensorCache cache(200 * kNsPerSec, kNsPerSec);
    fillCache(cache, 180);
    const TimestampNs window = static_cast<TimestampNs>(state.range(0)) * kNsPerSec;
    const std::uint64_t allocs_before = wm::bench::allocCount();
    for (auto _ : state) {
        benchmark::DoNotOptimize(cache.statsRelative(window));
    }
    state.counters["allocs/op"] = wm::bench::allocsPerOp(
        allocs_before, wm::bench::allocCount(), state.iterations());
}
BENCHMARK(BM_CacheStatsRelative)->Arg(12)->Arg(60)->Arg(100);

void BM_CacheAverageRelative(benchmark::State& state) {
    SensorCache cache(200 * kNsPerSec, kNsPerSec);
    fillCache(cache, 180);
    for (auto _ : state) {
        benchmark::DoNotOptimize(cache.averageRelative(60 * kNsPerSec));
    }
}
BENCHMARK(BM_CacheAverageRelative);

/// Populates a store with n sensors named like a cluster topic space.
std::vector<std::string> storeTopics(std::size_t n) {
    std::vector<std::string> topics;
    topics.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        topics.push_back("/rack" + std::to_string(i % 64) + "/chassis" +
                         std::to_string((i / 64) % 8) + "/server" +
                         std::to_string(i / 512) + "/sensor" + std::to_string(i));
    }
    return topics;
}

/// Baseline lookup: hash the topic string under the store's shared lock —
/// what every operator read paid before interned handles.
void BM_CacheStoreFindByString(benchmark::State& state) {
    CacheStore store;
    const auto topics = storeTopics(static_cast<std::size_t>(state.range(0)));
    for (const auto& topic : topics) store.getOrCreate(topic);
    const std::string& probe = topics[topics.size() / 2];
    for (auto _ : state) {
        benchmark::DoNotOptimize(store.find(probe));
    }
    state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_CacheStoreFindByString)->Arg(64)->Arg(1000)->Arg(8192);

/// Id-keyed lookup: two array indexations off atomic loads, no hashing, no
/// lock. The steady-state read path of operators and the pusher.
void BM_CacheStoreFindById(benchmark::State& state) {
    CacheStore store;
    const auto topics = storeTopics(static_cast<std::size_t>(state.range(0)));
    for (const auto& topic : topics) store.getOrCreate(topic);
    const TopicId id = store.idOf(topics[topics.size() / 2]);
    for (auto _ : state) {
        benchmark::DoNotOptimize(store.find(id));
    }
    state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_CacheStoreFindById)->Arg(64)->Arg(1000)->Arg(8192);

/// CacheHandle::resolve after the first (memoising) call: the form the
/// operator hot loop actually uses.
void BM_CacheHandleResolve(benchmark::State& state) {
    CacheStore store;
    const auto topics = storeTopics(static_cast<std::size_t>(state.range(0)));
    for (const auto& topic : topics) store.getOrCreate(topic);
    const CacheHandle handle(topics[topics.size() / 2]);
    benchmark::DoNotOptimize(handle.resolve(store));  // memoise the id
    for (auto _ : state) {
        benchmark::DoNotOptimize(handle.resolve(store));
    }
    state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_CacheHandleResolve)->Arg(64)->Arg(1000)->Arg(8192);

}  // namespace

BENCHMARK_MAIN();
