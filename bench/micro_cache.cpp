// Microbenchmarks for the sensor cache: store throughput and the complexity
// split between the two Query Engine view modes — relative views use O(1)
// positioning, absolute views use O(log N) binary search (paper Section V-B).

#include <benchmark/benchmark.h>

#include "sensors/sensor_cache.h"

namespace {

using wm::common::kNsPerSec;
using wm::common::TimestampNs;
using wm::sensors::SensorCache;

void fillCache(SensorCache& cache, std::size_t n) {
    for (std::size_t i = 1; i <= n; ++i) {
        cache.store({static_cast<TimestampNs>(i) * kNsPerSec, static_cast<double>(i)});
    }
}

void BM_CacheStore(benchmark::State& state) {
    SensorCache cache(static_cast<TimestampNs>(state.range(0)) * kNsPerSec, kNsPerSec);
    TimestampNs t = 0;
    for (auto _ : state) {
        t += kNsPerSec;
        cache.store({t, 1.0});
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CacheStore)->Arg(60)->Arg(600)->Arg(3600);

/// Positioning cost of a relative view: a fixed-size (single-reading) view
/// from caches of growing size. O(1): time should not grow with N.
void BM_CacheViewRelativePositioning(benchmark::State& state) {
    const auto n = static_cast<std::size_t>(state.range(0));
    SensorCache cache(static_cast<TimestampNs>(n + 10) * kNsPerSec, kNsPerSec);
    fillCache(cache, n);
    for (auto _ : state) {
        benchmark::DoNotOptimize(cache.viewRelative(0));
    }
    state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_CacheViewRelativePositioning)
    ->RangeMultiplier(8)
    ->Range(64, 262144)
    ->Complexity(benchmark::o1);

/// Positioning cost of an absolute view: a single-reading range located by
/// binary search in caches of growing size. O(log N).
void BM_CacheViewAbsolutePositioning(benchmark::State& state) {
    const auto n = static_cast<std::size_t>(state.range(0));
    SensorCache cache(static_cast<TimestampNs>(n + 10) * kNsPerSec, kNsPerSec);
    fillCache(cache, n);
    const TimestampNs mid = static_cast<TimestampNs>(n / 2) * kNsPerSec;
    for (auto _ : state) {
        benchmark::DoNotOptimize(cache.viewAbsolute(mid, mid));
    }
    state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_CacheViewAbsolutePositioning)
    ->RangeMultiplier(8)
    ->Range(64, 262144)
    ->Complexity(benchmark::oLogN);

/// Full view extraction including the copy, for paper-sized windows.
void BM_CacheViewRelativeWindow(benchmark::State& state) {
    SensorCache cache(200 * kNsPerSec, kNsPerSec);
    fillCache(cache, 180);
    const TimestampNs window = static_cast<TimestampNs>(state.range(0)) * kNsPerSec;
    for (auto _ : state) {
        benchmark::DoNotOptimize(cache.viewRelative(window));
    }
}
BENCHMARK(BM_CacheViewRelativeWindow)->Arg(0)->Arg(12)->Arg(25)->Arg(50)->Arg(100);

void BM_CacheAverageRelative(benchmark::State& state) {
    SensorCache cache(200 * kNsPerSec, kNsPerSec);
    fillCache(cache, 180);
    for (auto _ : state) {
        benchmark::DoNotOptimize(cache.averageRelative(60 * kNsPerSec));
    }
}
BENCHMARK(BM_CacheAverageRelative);

}  // namespace

BENCHMARK_MAIN();
