// Microbenchmarks for the analytics substrate: the model costs behind the
// case studies — random-forest fit/predict (Case Study 1), decile
// aggregation at PerSyst scale (Case Study 2), and the variational Bayesian
// GMM fit at cluster scale (Case Study 3).

#include <benchmark/benchmark.h>

#include "analytics/bayesian_gmm.h"
#include "analytics/features.h"
#include "analytics/random_forest.h"
#include "analytics/stats.h"
#include "common/rng.h"

namespace {

using namespace wm::analytics;
using wm::common::Rng;

void makeRegressionData(std::size_t n, std::size_t dim,
                        std::vector<std::vector<double>>& x, std::vector<double>& y) {
    Rng rng(17);
    x.clear();
    y.clear();
    for (std::size_t i = 0; i < n; ++i) {
        std::vector<double> row(dim);
        double target = 0.0;
        for (std::size_t d = 0; d < dim; ++d) {
            row[d] = rng.uniform(0.0, 1.0);
            target += (d % 3 == 0 ? 1.0 : -0.5) * row[d];
        }
        x.push_back(std::move(row));
        y.push_back(target + rng.gaussian(0.0, 0.05));
    }
}

void BM_RandomForestFit(benchmark::State& state) {
    std::vector<std::vector<double>> x;
    std::vector<double> y;
    makeRegressionData(static_cast<std::size_t>(state.range(0)), 24, x, y);
    ForestParams params;
    params.num_trees = 16;
    params.tree.max_depth = 10;
    for (auto _ : state) {
        RandomForest forest;
        benchmark::DoNotOptimize(forest.fit(x, y, params));
    }
    state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_RandomForestFit)->Arg(1000)->Arg(4000)->Unit(benchmark::kMillisecond);

void BM_RandomForestPredict(benchmark::State& state) {
    std::vector<std::vector<double>> x;
    std::vector<double> y;
    makeRegressionData(2000, 24, x, y);
    RandomForest forest;
    ForestParams params;
    params.num_trees = 16;
    forest.fit(x, y, params);
    std::size_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(forest.predict(x[i++ % x.size()]));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RandomForestPredict);

void BM_FeatureExtraction(benchmark::State& state) {
    // A typical regressor window: a handful of readings per sensor.
    wm::sensors::ReadingVector window;
    for (int i = 0; i < 8; ++i) {
        window.push_back({i * wm::common::kNsPerSec, 100.0 + i});
    }
    for (auto _ : state) {
        benchmark::DoNotOptimize(extractFeatures(window, true));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FeatureExtraction);

void BM_DecilesPersystScale(benchmark::State& state) {
    // 2048 per-core CPI samples per decile point (32 nodes x 64 cores).
    Rng rng(5);
    std::vector<double> values;
    for (int i = 0; i < 2048; ++i) values.push_back(rng.uniform(1.0, 30.0));
    for (auto _ : state) {
        auto copy = values;
        benchmark::DoNotOptimize(deciles(std::move(copy)));
    }
    state.SetItemsProcessed(state.iterations() * 2048);
}
BENCHMARK(BM_DecilesPersystScale);

void BM_BayesianGmmFit148Nodes(benchmark::State& state) {
    // Fig. 8 scale: 148 three-dimensional points, 10-component cap.
    Rng rng(7);
    std::vector<Vector> points;
    for (int i = 0; i < 148; ++i) {
        const double group = static_cast<double>(i % 3);
        points.push_back({group * 80.0 + rng.gaussian(0.0, 8.0),
                          45.0 + group * 3.0 + rng.gaussian(0.0, 0.4),
                          1400.0 - group * 600.0 + rng.gaussian(0.0, 40.0)});
    }
    BgmmParams params;
    params.max_components = 10;
    for (auto _ : state) {
        BayesianGmm model;
        benchmark::DoNotOptimize(model.fit(points, params));
    }
    state.SetItemsProcessed(state.iterations() * 148);
}
BENCHMARK(BM_BayesianGmmFit148Nodes)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
