// Quickstart: the minimal end-to-end Wintermute setup.
//
// A simulated compute node is monitored by a Pusher; the Wintermute
// framework is hosted inside the Pusher with an aggregator operator that
// averages the node's power over a sliding window. Everything runs on
// virtual time, so the example is deterministic and instant.
//
//   ./quickstart

#include <cstdio>

#include "common/config.h"
#include "common/logging.h"
#include "core/hosting.h"
#include "core/operator_manager.h"
#include "plugins/registry.h"
#include "pusher/plugins/sysfssim_group.h"
#include "pusher/pusher.h"

using namespace wm;
using common::kNsPerSec;

int main() {
    common::Logger::instance().setLevel(common::LogLevel::kWarning);

    // 1. A simulated node running an HPL-like compute workload.
    auto node = std::make_shared<pusher::SimulatedNode>(/*num_cores=*/16, /*seed=*/1);
    node->startApp(simulator::AppKind::kHpl);

    // 2. A Pusher sampling the node's power/temperature sensors.
    pusher::Pusher pusher(pusher::PusherConfig{"/rack0/chassis0/server0"});
    pusher::SysfssimGroupConfig sys;
    sys.node_path = "/rack0/chassis0/server0";
    pusher.addGroup(std::make_unique<pusher::SysfssimGroup>(sys, node));

    // 3. Wintermute hosted in the Pusher: Query Engine over the local cache.
    core::QueryEngine engine;
    engine.setCacheStore(&pusher.cacheStore());
    core::OperatorManager manager(
        core::makeHostContext(engine, &pusher.cacheStore(), nullptr, nullptr));
    plugins::registerBuiltinPlugins(manager);

    // Sample a little history, then let unit resolution see the sensors.
    for (int t = 1; t <= 10; ++t) pusher.sampleOnce(t * kNsPerSec);
    engine.rebuildTree();

    // 4. Configure an aggregator operator from a DCDB-style config block.
    const auto config = common::parseConfig(R"(
operator power-average {
    interval 1s
    window 10s
    operation average
    input {
        sensor "<bottomup>power"
    }
    output {
        sensor "<bottomup>power-avg"
    }
}
)");
    if (!config.ok || manager.loadPlugin("aggregator", config.root) != 1) {
        std::fprintf(stderr, "failed to configure the aggregator plugin\n");
        return 1;
    }

    // 5. Drive the monitoring + analysis loop for 30 virtual seconds.
    std::printf("%6s %12s %12s\n", "t[s]", "power[W]", "avg10s[W]");
    for (int t = 11; t <= 40; ++t) {
        pusher.sampleOnce(t * kNsPerSec);
        manager.tickAll(t * kNsPerSec);
        const auto power = pusher.cacheStore().find("/rack0/chassis0/server0/power");
        const auto avg = pusher.cacheStore().find("/rack0/chassis0/server0/power-avg");
        if (t % 5 == 0 && power != nullptr && avg != nullptr && avg->latest()) {
            std::printf("%6d %12.1f %12.1f\n", t, power->latest()->value,
                        avg->latest()->value);
        }
    }
    std::printf("\nsampled %llu readings across %zu sensors; operator ran %llu times\n",
                static_cast<unsigned long long>(pusher.readingsSampled()),
                pusher.cacheStore().sensorCount(),
                static_cast<unsigned long long>(
                    manager.findOperator("power-average")->computeCount()));
    return 0;
}
