// On-demand operation through the RESTful API (paper Sections IV-B / V-A).
//
// A Collect Agent hosts an on-demand aggregator operator; its computation is
// triggered only by REST requests, and the output data is propagated as the
// response — the workflow a job scheduler would use to query node state at
// submission time. The example starts a real HTTP server on the loopback
// interface and issues client requests against it.
//
//   ./ondemand_rest

#include <cstdio>

#include "collectagent/collect_agent.h"
#include "common/config.h"
#include "common/logging.h"
#include "core/hosting.h"
#include "core/operator_manager.h"
#include "plugins/registry.h"
#include "pusher/plugins/sysfssim_group.h"
#include "pusher/pusher.h"
#include "rest/http_server.h"

using namespace wm;
using common::kNsPerSec;

int main() {
    common::Logger::instance().setLevel(common::LogLevel::kWarning);

    // DCDB data path: two pushers feeding a Collect Agent.
    mqtt::Broker broker;
    storage::StorageBackend storage;
    collectagent::CollectAgent agent({}, broker, storage);
    agent.start();

    std::vector<std::unique_ptr<pusher::Pusher>> pushers;
    for (int n = 0; n < 2; ++n) {
        const std::string node_path = "/rack0/chassis0/server" + std::to_string(n);
        auto node = std::make_shared<pusher::SimulatedNode>(8, 40 + n);
        node->startApp(n == 0 ? simulator::AppKind::kHpl : simulator::AppKind::kIdle);
        auto p = std::make_unique<pusher::Pusher>(pusher::PusherConfig{node_path}, &broker);
        pusher::SysfssimGroupConfig sys;
        sys.node_path = node_path;
        p->addGroup(std::make_unique<pusher::SysfssimGroup>(sys, node));
        pushers.push_back(std::move(p));
    }
    for (int t = 1; t <= 30; ++t) {
        for (auto& p : pushers) p->sampleOnce(t * kNsPerSec);
    }

    // Wintermute in the Collect Agent with an on-demand operator.
    core::QueryEngine engine;
    engine.setCacheStore(&agent.cacheStore());
    engine.setStorage(&storage);
    engine.rebuildTree();
    core::OperatorManager manager(
        core::makeHostContext(engine, &agent.cacheStore(), nullptr, &storage));
    plugins::registerBuiltinPlugins(manager);
    const auto config = common::parseConfig(R"(
operator node-power {
    mode ondemand
    window 30s
    operation average
    input {
        sensor "<bottomup>power"
    }
    output {
        sensor "<bottomup>power-30s"
    }
}
)");
    if (!config.ok || manager.loadPlugin("aggregator", config.root) != 1) {
        std::fprintf(stderr, "aggregator configuration failed\n");
        return 1;
    }

    // REST API over real HTTP on an ephemeral loopback port.
    rest::Router router;
    manager.bindRest(router);
    rest::HttpServer server(router);
    if (!server.start(0)) {
        std::fprintf(stderr, "could not start the HTTP server\n");
        return 1;
    }
    std::printf("REST API listening on 127.0.0.1:%u\n\n", server.port());

    const auto show = [&](const std::string& method, const std::string& target) {
        const auto result = rest::httpRequest("127.0.0.1", server.port(), method, target);
        std::printf(">> %s %s\n<< [%d] %s\n\n", method.c_str(), target.c_str(),
                    result.status, result.body.c_str());
    };

    show("GET", "/wintermute/plugins");
    show("GET", "/wintermute/operators");
    show("GET", "/wintermute/units/node-power");
    // Trigger the on-demand computation for each node unit; the scheduler-
    // style caller receives the aggregate in the response body.
    show("PUT", "/wintermute/compute?operator=node-power&unit=/rack0/chassis0/server0");
    show("PUT", "/wintermute/compute?operator=node-power&unit=/rack0/chassis0/server1");
    // Lifecycle: stop the operator, observe the 404-free toggle.
    show("PUT", "/wintermute/operators/node-power/stop");
    show("GET", "/wintermute/operators");

    server.stop();
    return 0;
}
