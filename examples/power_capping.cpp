// Closed-loop power capping: a runtime-optimization feedback loop (paper
// Sections II and IV-B-d). A controller operator at the end of the analysis
// pipeline compares the node's power with a cap and actuates the node's DVFS
// knob; the loop runs online inside the Pusher. Halfway through, the cap is
// lowered to show the loop re-converging.
//
//   ./power_capping

#include <cstdio>

#include "common/config.h"
#include "common/logging.h"
#include "core/hosting.h"
#include "core/operator_manager.h"
#include "plugins/controller_operator.h"
#include "plugins/registry.h"
#include "pusher/plugins/sysfssim_group.h"
#include "pusher/pusher.h"

using namespace wm;
using common::kNsPerSec;
using common::TimestampNs;

int main() {
    common::Logger::instance().setLevel(common::LogLevel::kWarning);
    const std::string node_path = "/rack0/chassis0/server0";

    auto node = std::make_shared<pusher::SimulatedNode>(16, 5);
    node->startApp(simulator::AppKind::kHpl);  // heavy, steady compute load
    pusher::Pusher pusher(pusher::PusherConfig{node_path});
    pusher::SysfssimGroupConfig sys;
    sys.node_path = node_path;
    pusher.addGroup(std::make_unique<pusher::SysfssimGroup>(sys, node));

    core::QueryEngine engine;
    engine.setCacheStore(&pusher.cacheStore());
    auto context = core::makeHostContext(engine, &pusher.cacheStore(), nullptr, nullptr);
    // The host maps the "dvfs" knob onto the node's frequency scaling.
    context.actuate = [&node, &node_path](const std::string& knob,
                                          const std::string& target, double value) {
        if (knob != "dvfs" || target != node_path) return false;
        node->setFrequencyScale(value);
        return true;
    };
    core::OperatorManager manager(std::move(context));
    plugins::registerBuiltinPlugins(manager);
    pusher.sampleOnce(kNsPerSec);
    engine.rebuildTree();

    const auto config = common::parseConfig(R"(
operator powercap {
    interval 1s
    knob dvfs
    setpoint 220
    gain 0.12
    input {
        sensor "<bottomup>power"
    }
    output {
        sensor "<bottomup>freq-scale"
    }
}
)");
    if (!config.ok || manager.loadPlugin("controller", config.root) != 1) {
        std::fprintf(stderr, "controller configuration failed\n");
        return 1;
    }
    auto controller = std::dynamic_pointer_cast<plugins::ControllerOperator>(
        manager.findOperator("powercap"));

    std::printf("power cap: 220 W for t<90s, then 180 W\n\n");
    std::printf("%6s %12s %12s %12s\n", "t[s]", "power[W]", "cap[W]", "freq-scale");
    double cap = 220.0;
    TimestampNs t = 2 * kNsPerSec;
    for (int i = 0; i < 180; ++i, t += kNsPerSec) {
        if (i == 90) {
            // Tighten the cap mid-run by reloading the operator config —
            // the same path a REST-driven reconfiguration would take.
            cap = 180.0;
            manager.findOperator("powercap")->setEnabled(false);
            const auto tighter = common::parseConfig(R"(
operator powercap2 {
    interval 1s
    knob dvfs
    setpoint 180
    gain 0.12
    input {
        sensor "<bottomup>power"
    }
    output {
        sensor "<bottomup>freq-scale"
    }
}
)");
            manager.loadPlugin("controller", tighter.root);
        }
        pusher.sampleOnce(t);
        manager.tickAll(t);
        if (i % 15 == 0) {
            const auto power = pusher.cacheStore().find(node_path + "/power")->latest();
            std::printf("%6d %12.1f %12.0f %12.3f\n", i, power->value, cap,
                        node->frequencyScale());
        }
    }
    std::printf("\nactuations: %llu (first loop)\n",
                static_cast<unsigned long long>(controller->actuationCount()));
    return 0;
}
