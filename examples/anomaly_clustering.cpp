// Identification of performance anomalies (the paper's Case Study 3,
// condensed). Long-window averages of power, temperature and CPU idle time
// for every compute node are clustered with a variational Bayesian Gaussian
// mixture; the model chooses the number of clusters itself and nodes below
// the density threshold under every component are flagged as outliers. One
// node is injected with a +20% power anomaly, mirroring the suspicious node
// of Fig. 8.
//
//   ./anomaly_clustering

#include <cstdio>
#include <map>

#include "common/config.h"
#include "common/logging.h"
#include "core/hosting.h"
#include "core/operator_manager.h"
#include "plugins/clustering_operator.h"
#include "plugins/registry.h"
#include "simulator/node_model.h"
#include "simulator/topology.h"

using namespace wm;
using common::kNsPerSec;

int main() {
    common::Logger::instance().setLevel(common::LogLevel::kWarning);
    constexpr std::size_t kNodes = 99;
    constexpr std::size_t kAnomalousNode = 20;
    constexpr double kWindowSec = 600.0;

    // Long-term per-node aggregates: simulate each node under a different
    // utilisation mix (some mostly idle, some loaded), then feed the
    // aggregate sensors into a Collect-Agent-style cache.
    sensors::CacheStore caches(2 * 3600 * kNsPerSec);
    simulator::Topology topology = simulator::Topology::tiny();
    topology.racks = 4;
    topology.chassis_per_rack = 4;
    topology.nodes_per_chassis = 3;
    topology.nodes_per_chassis = 7;
    topology.max_nodes = kNodes;

    for (std::size_t n = 0; n < kNodes; ++n) {
        simulator::NodeCharacteristics characteristics;
        if (n == kAnomalousNode) characteristics.anomaly_power_factor = 1.2;
        simulator::NodeModel node(8, 1000 + n, characteristics);
        // Load mix: a third mostly idle, a third on a 50% duty cycle, a
        // third continuously busy — three distinct operating regimes.
        const int regime = static_cast<int>(n % 3);
        node.startApp(regime == 0 ? simulator::AppKind::kIdle
                                  : simulator::AppKind::kHpl);
        const std::string path = topology.nodePath(n);
        auto& power = caches.getOrCreate(path + "/power");
        auto& temp = caches.getOrCreate(path + "/temp");
        auto& idle = caches.getOrCreate(path + "/col_idle");
        int step = 0;
        for (int t = 1; t <= static_cast<int>(kWindowSec); t += 10, ++step) {
            if (regime == 1 && step % 12 == 0) {
                // Duty-cycled nodes alternate between compute and idle.
                node.startApp(node.currentApp() == simulator::AppKind::kIdle
                                  ? simulator::AppKind::kHpl
                                  : simulator::AppKind::kIdle);
            }
            node.advance(10.0);
            const auto& sample = node.sample();
            power.store({t * kNsPerSec, sample.power_w});
            temp.store({t * kNsPerSec, sample.temperature_c});
            idle.store({t * kNsPerSec, sample.idle_time_total});
        }
    }

    core::QueryEngine engine;
    engine.setCacheStore(&caches);
    engine.rebuildTree();
    core::OperatorManager manager(
        core::makeHostContext(engine, &caches, nullptr, nullptr));
    plugins::registerBuiltinPlugins(manager);

    const auto config = common::parseConfig(R"(
operator node-clusters {
    interval 1h
    window 650s
    maxComponents 10
    outlierThreshold 0.001
    input {
        sensor "<bottomup>power"
        sensor "<bottomup>temp"
        sensor "<bottomup>col_idle"
    }
    output {
        sensor "<bottomup>cluster"
    }
}
)");
    if (!config.ok || manager.loadPlugin("clustering", config.root) != 1) {
        std::fprintf(stderr, "clustering configuration failed\n");
        return 1;
    }
    manager.tickAll(static_cast<common::TimestampNs>(kWindowSec) * kNsPerSec);

    auto op = std::dynamic_pointer_cast<plugins::ClusteringOperator>(
        manager.findOperator("node-clusters"));
    std::printf("fitted %zu mixture components\n\n", op->model().effectiveComponents());
    std::printf("%-28s %10s %8s %12s %8s\n", "node", "power[W]", "temp[C]", "idle[cs/s]",
                "cluster");
    std::map<int, int> histogram;
    for (std::size_t n = 0; n < kNodes; ++n) {
        const std::string path = topology.nodePath(n);
        const auto point = op->lastPointOf(path);
        const auto label = caches.find(path + "/cluster")->latest();
        const int cluster = label ? static_cast<int>(label->value) : -99;
        ++histogram[cluster];
        if (point.size() == 3) {
            std::printf("%-28s %10.1f %8.1f %12.1f %8d%s\n", path.c_str(), point[0],
                        point[1], point[2], cluster,
                        n == kAnomalousNode ? "   <-- injected anomaly" : "");
        }
    }
    std::printf("\ncluster histogram:");
    for (const auto& [label, count] : histogram) {
        std::printf("  [%d]=%d", label, count);
    }
    std::printf("   (label -1 = outlier)\n");
    return 0;
}
