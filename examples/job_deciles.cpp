// Job behaviour analysis (the paper's Case Study 2, condensed).
//
// Two pipeline stages split across DCDB entities: perfmetrics operators in
// per-node Pushers derive CPI from raw counters, and a persyst job operator
// in the Collect Agent aggregates the per-core CPI of each running job into
// deciles — the PerSyst quantile transport scheme. Two jobs run different
// applications (LAMMPS and AMG) on two nodes each.
//
//   ./job_deciles

#include <cstdio>

#include "collectagent/collect_agent.h"
#include "common/config.h"
#include "common/logging.h"
#include "core/hosting.h"
#include "core/operator_manager.h"
#include "plugins/registry.h"
#include "pusher/plugins/perfsim_group.h"
#include "pusher/pusher.h"

using namespace wm;
using common::kNsPerSec;
using common::TimestampNs;

int main() {
    common::Logger::instance().setLevel(common::LogLevel::kWarning);
    constexpr std::size_t kNodes = 4;
    constexpr std::size_t kCpus = 8;

    mqtt::Broker broker;
    storage::StorageBackend storage;
    collectagent::CollectAgent agent({}, broker, storage);
    agent.start();
    jobs::JobManager jobs;

    // Per-node pushers with perfmetrics operators (pipeline stage 1).
    std::vector<std::unique_ptr<pusher::Pusher>> pushers;
    std::vector<std::unique_ptr<core::QueryEngine>> engines;
    std::vector<std::unique_ptr<core::OperatorManager>> managers;
    std::vector<std::shared_ptr<pusher::SimulatedNode>> nodes;
    std::vector<std::string> node_paths;
    for (std::size_t n = 0; n < kNodes; ++n) {
        const std::string node_path = "/rack0/chassis0/server" + std::to_string(n);
        node_paths.push_back(node_path);
        auto node = std::make_shared<pusher::SimulatedNode>(kCpus, 10 + n);
        node->startApp(n < 2 ? simulator::AppKind::kLammps : simulator::AppKind::kAmg);
        nodes.push_back(node);
        auto p = std::make_unique<pusher::Pusher>(pusher::PusherConfig{node_path}, &broker);
        pusher::PerfsimGroupConfig perf;
        perf.node_path = node_path;
        p->addGroup(std::make_unique<pusher::PerfsimGroup>(perf, node));
        p->sampleOnce(kNsPerSec);

        auto engine = std::make_unique<core::QueryEngine>();
        engine->setCacheStore(&p->cacheStore());
        engine->rebuildTree();
        auto manager = std::make_unique<core::OperatorManager>(
            core::makeHostContext(*engine, &p->cacheStore(), &broker, nullptr));
        plugins::registerBuiltinPlugins(*manager);
        const auto config = common::parseConfig(R"(
operator pm {
    interval 1s
    window 3s
    input {
        sensor "<bottomup>cpu-cycles"
        sensor "<bottomup>instructions"
    }
    output {
        sensor "<bottomup>cpi"
    }
}
)");
        if (!config.ok || manager->loadPlugin("perfmetrics", config.root) != 1) {
            std::fprintf(stderr, "perfmetrics configuration failed\n");
            return 1;
        }
        pushers.push_back(std::move(p));
        engines.push_back(std::move(engine));
        managers.push_back(std::move(manager));
    }

    // Two jobs, two nodes each.
    jobs::JobRecord lammps_job{"2001", "alice", {node_paths[0], node_paths[1]}, 0, 0,
                               "lammps"};
    jobs::JobRecord amg_job{"2002", "bob", {node_paths[2], node_paths[3]}, 0, 0, "amg"};
    jobs.submit(lammps_job);
    jobs.submit(amg_job);

    // persyst in the Collect Agent (pipeline stage 2).
    core::QueryEngine agent_engine;
    agent_engine.setCacheStore(&agent.cacheStore());
    agent_engine.setStorage(&storage);
    core::OperatorManager agent_manager(core::makeHostContext(
        agent_engine, &agent.cacheStore(), nullptr, &storage, &jobs));
    plugins::registerBuiltinPlugins(agent_manager);
    const auto ps_config = common::parseConfig(R"(
operator ps {
    interval 1s
    window 3s
    metric cpi
}
)");
    if (!ps_config.ok || agent_manager.loadPlugin("persyst", ps_config.root) != 1) {
        std::fprintf(stderr, "persyst configuration failed\n");
        return 1;
    }

    // Drive the cluster; print the decile series every 20 s per job.
    std::printf("%6s %6s %8s %8s %8s %8s %8s\n", "t[s]", "job", "dec0", "dec2", "dec5",
                "dec8", "dec10");
    for (TimestampNs t = 2; t <= 120; ++t) {
        const TimestampNs now = t * kNsPerSec;
        for (std::size_t n = 0; n < kNodes; ++n) {
            pushers[n]->sampleOnce(now);
            managers[n]->tickAll(now);
        }
        if (t == 5) agent_engine.rebuildTree();  // cpi sensors now known
        agent_manager.tickAll(now);
        if (t % 20 == 0) {
            for (const std::string job_id : {"2001", "2002"}) {
                double dec[5] = {};
                const int which[5] = {0, 2, 5, 8, 10};
                for (int i = 0; i < 5; ++i) {
                    const auto reading = storage.latest(
                        "/job/" + job_id + "/cpi-dec" + std::to_string(which[i]));
                    dec[i] = reading ? reading->value : 0.0;
                }
                std::printf("%6lld %6s %8.2f %8.2f %8.2f %8.2f %8.2f\n",
                            static_cast<long long>(t), job_id.c_str(), dec[0], dec[1],
                            dec[2], dec[3], dec[4]);
            }
        }
    }
    std::printf("\njob 2001 = LAMMPS (low CPI, tight deciles); job 2002 = AMG "
                "(network-bound: upper deciles spike)\n");
    return 0;
}
