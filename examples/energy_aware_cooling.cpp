// Energy-aware cooling: infrastructure management (the first taxonomy class
// of the paper's Section II-A, citing warm-water cooling optimisation). The
// facility's cooling circuit is monitored like any other component; a
// controller operator holds the return-water temperature at its design
// point by actuating the inlet setpoint, while the outdoor temperature
// swings over a simulated day and the cluster load changes. The facility
// responds with changing chiller effort, visible as PUE.
//
//   ./energy_aware_cooling

#include <cmath>
#include <cstdio>

#include "common/config.h"
#include "common/logging.h"
#include "core/hosting.h"
#include "core/operator_manager.h"
#include "plugins/registry.h"
#include "pusher/plugins/facilitysim_group.h"
#include "pusher/pusher.h"

using namespace wm;
using common::kNsPerSec;
using common::TimestampNs;

int main() {
    common::Logger::instance().setLevel(common::LogLevel::kWarning);

    // Cluster load profile over the day: night-time lull, daytime peak.
    double it_power_kw = 250.0;
    auto facility = std::make_shared<pusher::SimulatedFacility>(
        simulator::FacilityCharacteristics{}, [&it_power_kw] { return it_power_kw * 1e3; });

    pusher::Pusher pusher(pusher::PusherConfig{"/facility"});
    pusher::FacilitysimGroupConfig group;
    group.interval_ns = 60 * kNsPerSec;  // 1-minute facility sampling
    pusher.addGroup(std::make_unique<pusher::FacilitysimGroup>(group, facility));

    core::QueryEngine engine;
    engine.setCacheStore(&pusher.cacheStore());
    auto context = core::makeHostContext(engine, &pusher.cacheStore(), nullptr, nullptr);
    context.actuate = [&facility](const std::string& knob, const std::string& target,
                                  double value) {
        if (knob != "inlet-setpoint" || target != "/facility") return false;
        facility->setInletSetpoint(value);
        return true;
    };
    core::OperatorManager manager(std::move(context));
    plugins::registerBuiltinPlugins(manager);
    pusher.sampleOnce(60 * kNsPerSec);
    engine.rebuildTree();

    const auto config = common::parseConfig(R"(
operator returnhold {
    interval 5m
    knob inlet-setpoint
    setpoint 46
    gain 25
    knobMin 30
    knobMax 50
    deadband 0.002
    input {
        sensor "<topdown>return-temp"
    }
    output {
        sensor "<topdown>inlet-setpoint"
    }
}
)");
    if (!config.ok || manager.loadPlugin("controller", config.root) != 1) {
        std::fprintf(stderr, "controller configuration failed\n");
        return 1;
    }

    std::printf("%7s %9s %9s %10s %10s %10s %8s\n", "t[h]", "IT[kW]", "outdoor",
                "inlet[C]", "return[C]", "cool[kW]", "PUE");
    for (int minute = 2; minute <= 24 * 60; ++minute) {
        const double hour = minute / 60.0;
        // Load profile: 150 kW at night, ramping to 350 kW mid-day.
        it_power_kw = 250.0 + 100.0 * std::sin(2.0 * M_PI * (hour - 9.0) / 24.0);
        const TimestampNs t = static_cast<TimestampNs>(minute) * 60 * kNsPerSec;
        pusher.sampleOnce(t);
        manager.tickAll(t);
        if (minute % 120 == 0) {
            const auto sample = facility->sampleAt(t);
            std::printf("%7.0f %9.0f %9.1f %10.2f %10.2f %10.1f %8.3f\n", hour,
                        it_power_kw, sample.outdoor_temp_c, sample.inlet_temp_c,
                        sample.return_temp_c, sample.cooling_power_w / 1e3, sample.pue);
        }
    }
    std::printf("\nthe controller holds the return temperature at 46 C across the\n"
                "load/outdoor swings by moving the inlet setpoint; warm-water\n"
                "operation keeps the chiller idle (PUE near the 1.03 overhead floor).\n");
    return 0;
}
