// Power consumption prediction (the paper's Case Study 1, condensed).
//
// A regressor operator inside a Pusher extracts statistical features from a
// simulated node's performance counters and trains a random forest to
// predict node power one interval ahead. After automatic training the
// example evaluates the prediction online and reports the average relative
// error, mirroring Fig. 6.
//
//   ./power_prediction

#include <cmath>
#include <cstdio>

#include "common/config.h"
#include "common/logging.h"
#include "core/hosting.h"
#include "core/operator_manager.h"
#include "plugins/registry.h"
#include "plugins/regressor_operator.h"
#include "pusher/plugins/perfsim_group.h"
#include "pusher/plugins/sysfssim_group.h"
#include "pusher/pusher.h"

using namespace wm;
using common::kNsPerSec;
using common::TimestampNs;

int main() {
    common::Logger::instance().setLevel(common::LogLevel::kWarning);
    const std::string node_path = "/rack0/chassis0/server0";

    auto node = std::make_shared<pusher::SimulatedNode>(/*num_cores=*/16, /*seed=*/3);
    pusher::Pusher pusher(pusher::PusherConfig{node_path});
    pusher::PerfsimGroupConfig perf;
    perf.node_path = node_path;
    pusher.addGroup(std::make_unique<pusher::PerfsimGroup>(perf, node));
    pusher::SysfssimGroupConfig sys;
    sys.node_path = node_path;
    pusher.addGroup(std::make_unique<pusher::SysfssimGroup>(sys, node));

    core::QueryEngine engine;
    engine.setCacheStore(&pusher.cacheStore());
    core::OperatorManager manager(
        core::makeHostContext(engine, &pusher.cacheStore(), nullptr, nullptr));
    plugins::registerBuiltinPlugins(manager);

    pusher.sampleOnce(kNsPerSec);
    engine.rebuildTree();

    const auto config = common::parseConfig(R"(
operator power-regressor {
    interval 1s
    window 4s
    target power
    trainingSamples 400
    trees 24
    maxDepth 10
    input {
        sensor "<bottomup-1>power"
        sensor "<bottomup, filter cpu>cpu-cycles"
        sensor "<bottomup, filter cpu>instructions"
        sensor "<bottomup, filter cpu>cache-misses"
        sensor "<bottomup, filter cpu>vector-ops"
    }
    output {
        sensor "<bottomup-1>power-pred"
    }
}
)");
    if (!config.ok || manager.loadPlugin("regressor", config.root) != 1) {
        std::fprintf(stderr, "failed to configure the regressor plugin\n");
        return 1;
    }
    auto regressor = std::dynamic_pointer_cast<plugins::RegressorOperator>(
        manager.findOperator("power-regressor"));

    // Training phase: run the CORAL-2-style applications while the training
    // set accumulates (the paper trains across Kripke/AMG/Nekbone/LAMMPS).
    const simulator::AppKind apps[] = {simulator::AppKind::kKripke,
                                       simulator::AppKind::kAmg,
                                       simulator::AppKind::kNekbone,
                                       simulator::AppKind::kLammps};
    TimestampNs t = 2 * kNsPerSec;
    std::size_t app_index = 0;
    node->startApp(apps[app_index]);
    int seconds_in_app = 0;
    while (!regressor->modelTrained()) {
        pusher.sampleOnce(t);
        manager.tickAll(t);
        t += kNsPerSec;
        if (++seconds_in_app >= 120) {
            seconds_in_app = 0;
            app_index = (app_index + 1) % 4;
            node->startApp(apps[app_index]);
        }
    }
    std::printf("model trained on %zu samples (OOB RMSE %.2f W)\n\n",
                regressor->trainingSetSize(), regressor->oobRmse());

    // Online evaluation on a fresh application mix.
    node->startApp(simulator::AppKind::kKripke);
    double err_sum = 0.0;
    int samples = 0;
    std::printf("%6s %12s %12s %10s\n", "t[s]", "power[W]", "pred[W]", "err[%]");
    for (int i = 0; i < 120; ++i, t += kNsPerSec) {
        pusher.sampleOnce(t);
        manager.tickAll(t);
        const auto real = pusher.cacheStore().find(node_path + "/power")->latest();
        const auto pred = pusher.cacheStore().find(node_path + "/power-pred")->latest();
        if (!real || !pred) continue;
        const double rel = std::abs(pred->value - real->value) / real->value;
        err_sum += rel;
        ++samples;
        if (i % 12 == 0) {
            std::printf("%6lld %12.1f %12.1f %10.1f\n",
                        static_cast<long long>(t / kNsPerSec), real->value, pred->value,
                        rel * 100.0);
        }
    }
    std::printf("\naverage relative error: %.1f%% over %d intervals\n",
                100.0 * err_sum / samples, samples);
    return 0;
}
