"""Shared subprocess + HTTP polling helpers for the multi-process drivers
(recovery_smoke.py, cluster_driver.py). Stdlib only; wired into CI.

The one rule: never leak a child. Every spawn goes through `Proc`, whose
`reap()` escalates SIGTERM -> SIGKILL with bounded waits, and
`reap_all()` is safe to call from `finally:` regardless of how far a
phase got.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import time
import urllib.error
import urllib.request

POLL_INTERVAL_SEC = 0.1
STARTUP_BUDGET_SEC = 15.0
REAP_GRACE_SEC = 5.0


def fetch_json(port: int, path: str) -> dict | None:
    """GET http://127.0.0.1:port/path as JSON; None on any failure."""
    try:
        with urllib.request.urlopen(
                f"http://127.0.0.1:{port}{path}", timeout=5) as response:
            return json.loads(response.read().decode())
    except (urllib.error.URLError, ConnectionError, TimeoutError,
            json.JSONDecodeError, OSError):
        return None


def fetch_text(port: int, path: str) -> str | None:
    """GET http://127.0.0.1:port/path as text; None on any failure."""
    try:
        with urllib.request.urlopen(
                f"http://127.0.0.1:{port}{path}", timeout=10) as response:
            return response.read().decode()
    except (urllib.error.URLError, ConnectionError, TimeoutError, OSError):
        return None


def fetch_status(port: int) -> dict | None:
    return fetch_json(port, "/status")


def wait_for(predicate, budget_sec: float = STARTUP_BUDGET_SEC):
    """Polls `predicate` until it returns a truthy value or the budget ends."""
    deadline = time.monotonic() + budget_sec
    while time.monotonic() < deadline:
        value = predicate()
        if value:
            return value
        time.sleep(POLL_INTERVAL_SEC)
    return None


class Proc:
    """A supervised child process with hardened teardown."""

    def __init__(self, label: str, argv: list[str], log_path: str | None = None):
        self.label = label
        self.log_path = log_path
        self._log = open(log_path, "ab") if log_path else subprocess.DEVNULL
        self.popen = subprocess.Popen(argv, stdout=self._log, stderr=self._log)

    @property
    def pid(self) -> int:
        return self.popen.pid

    def alive(self) -> bool:
        return self.popen.poll() is None

    def sigkill(self):
        """Hard crash: no handler runs, no shutdown hook, then reap."""
        if self.alive():
            self.popen.send_signal(signal.SIGKILL)
        self.popen.wait()
        self._close_log()

    def sigstop(self):
        if self.alive():
            self.popen.send_signal(signal.SIGSTOP)

    def sigcont(self):
        if self.alive():
            self.popen.send_signal(signal.SIGCONT)

    def terminate(self, budget_sec: float = REAP_GRACE_SEC) -> bool:
        """Graceful stop: SIGTERM, bounded wait, SIGKILL as last resort.
        Returns True when the child exited within the graceful budget."""
        graceful = True
        if self.alive():
            # A SIGSTOPped child cannot handle SIGTERM; wake it first.
            self.popen.send_signal(signal.SIGCONT)
            self.popen.send_signal(signal.SIGTERM)
            try:
                self.popen.wait(timeout=budget_sec)
            except subprocess.TimeoutExpired:
                graceful = False
                print(f"procutil: {self.label} ignored SIGTERM for "
                      f"{budget_sec}s; escalating to SIGKILL", file=sys.stderr)
                self.popen.send_signal(signal.SIGKILL)
                self.popen.wait()
        else:
            self.popen.wait()
        self._close_log()
        return graceful

    def _close_log(self):
        if self._log is not subprocess.DEVNULL and not self._log.closed:
            self._log.close()


def spawn(label: str, argv: list[str], log_path: str | None = None) -> Proc:
    return Proc(label, argv, log_path)


def reap_all(procs: list[Proc]):
    """Terminates every child that is still around; safe from `finally:`."""
    for proc in procs:
        try:
            proc.terminate()
        except OSError:
            pass


def run_phase(label: str, fn, budget_sec: float) -> str | None:
    """Runs `fn()` (returning an error string or None) under a wall-clock
    budget enforced by SIGALRM, so a wedged phase fails instead of hanging
    the whole campaign. Returns fn's verdict, or a timeout message."""

    class _Timeout(Exception):
        pass

    def _on_alarm(_sig, _frame):
        raise _Timeout()

    previous = signal.signal(signal.SIGALRM, _on_alarm)
    signal.alarm(max(1, int(budget_sec)))
    try:
        return fn()
    except _Timeout:
        return f"phase '{label}' exceeded its {budget_sec}s budget"
    finally:
        signal.alarm(0)
        signal.signal(signal.SIGALRM, previous)
