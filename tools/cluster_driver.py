#!/usr/bin/env python3
"""Multi-process chaos harness for the wire transport (stdlib only).

Spawns one ingest-only wintermuted (zero local nodes, `transport { listen
true }`, persistence on) and N wm_pusherd processes as separate OS
processes, each connected through a driver-owned TCP proxy so the driver
can induce netsplits (pause relaying; both sides see a blackholed wire
and time out on heartbeats) and abrupt socket severing without touching
the daemons.

Chaos phases (per campaign), every one against live traffic:
  * SIGKILL a pusherd mid-stream, restart it (fresh epoch, fresh topics);
  * SIGKILL the server, restart it on the same persistence directory --
    WAL/snapshot recovery plus client replay-on-reconnect must reassemble
    the store;
  * netsplit >= 2s through the proxy, then heal;
  * (full) SIGSTOP/SIGCONT a pusherd (a peer that is alive but wedged);
  * (full) sever every proxied socket abruptly;
  * (full) restart the server with `net.frame_read` drop faults armed --
    the dense PUBLISH frame counter must convert silent frame loss into
    connection drops + replay, never into data loss.

Exactly-once oracle: every pusherd intent-logs `PUB topic seq ts value`
lines BEFORE each wire write and `ACK topic seq` cumulative watermark
lines (see src/apps/wm_pusherd.cpp). After quiescing, the driver fetches
the server's full storage dump (`GET /storage/dump`, CSV) and asserts:

  1. no (topic, timestamp) pair appears twice in the store (no duplicate
     deliveries survived dedup -- not across replays, restarts or splits);
  2. every reading whose sequence is covered by its topic's final ACK
     watermark is present in the store (nothing acknowledged was lost);
  3. every stored reading for a pusherd prefix appears in some PUB line
     (nothing materialized out of thin air).

Usage:
  tools/cluster_driver.py --server build/src/apps/wintermuted \\
      --pusherd build/src/apps/wm_pusherd --campaign smoke \\
      [--pushers 2] [--port-base 28700] [--artifacts DIR]
"""

from __future__ import annotations

import argparse
import os
import shutil
import socket
import sys
import tempfile
import threading
import time

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
from procutil import (  # noqa: E402  (path bootstrap above)
    Proc, fetch_json, fetch_text, run_phase, spawn, wait_for)

SERVER_CONFIG = """
cluster {{
    racks 0
    chassisPerRack 0
    nodesPerChassis 0
    cpusPerNode 0
}}
facility {{
    enabled false
}}
transport {{
    listen true
    port {transport_port}
    heartbeatMs 200
}}
collectagent {{
    filter "#"
}}
persistence {{
    directory "{persist_dir}"
    snapshotEvery 256
    checkpointInterval 2s
}}
{faults}
"""

FRAME_DROP_FAULTS = """
faults {
    seed 1337
    point "net.frame_read" {
        spec "drop prob=0.02"
    }
}
"""

PUSHERD_CONFIG = """
cluster {{
    racks 1
    chassisPerRack 1
    nodesPerChassis 2
    cpusPerNode 2
}}
pusher {{
    samplingInterval 100ms
}}
remote {{
    host "127.0.0.1"
    port {proxy_port}
    heartbeatMs 200
    reconnect {{
        initialMs 50
        maxMs 500ms
    }}
}}
"""


class TcpProxy:
    """A relaying TCP proxy the driver can blackhole or sever.

    pause(): stops relaying in both directions without closing sockets --
    to both peers the wire looks partitioned (TCP up, nothing flows), so
    heartbeat dead-peer detection is what notices, exactly like a real
    netsplit. resume() heals it. sever() abruptly closes every proxied
    socket (RST-ish failure). New connections during a pause are accepted
    and immediately dropped, so reconnect attempts keep failing until the
    split heals.
    """

    def __init__(self, listen_port: int, target_port: int):
        self.listen_port = listen_port
        self.target_port = target_port
        self.paused = False
        self._stopping = False
        self._links: list[socket.socket] = []
        self._lock = threading.Lock()
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind(("127.0.0.1", listen_port))
        self._listener.listen(16)
        self._listener.settimeout(0.2)
        self._accept_thread = threading.Thread(target=self._accept_loop,
                                               daemon=True)
        self._accept_thread.start()

    def _accept_loop(self):
        while not self._stopping:
            try:
                client, _addr = self._listener.accept()
            except socket.timeout:
                continue
            except OSError:
                return
            if self.paused or self._stopping:
                client.close()
                continue
            try:
                upstream = socket.create_connection(
                    ("127.0.0.1", self.target_port), timeout=2)
            except OSError:
                client.close()
                continue
            for sock in (client, upstream):
                sock.settimeout(0.1)
            with self._lock:
                self._links.extend((client, upstream))
            threading.Thread(target=self._pump, args=(client, upstream),
                             daemon=True).start()
            threading.Thread(target=self._pump, args=(upstream, client),
                             daemon=True).start()

    def _pump(self, src: socket.socket, dst: socket.socket):
        try:
            while not self._stopping:
                if self.paused:
                    time.sleep(0.05)
                    continue
                try:
                    data = src.recv(65536)
                except socket.timeout:
                    continue
                except OSError:
                    break
                if not data:
                    break
                try:
                    dst.sendall(data)
                except OSError:
                    break
        finally:
            for sock in (src, dst):
                try:
                    sock.close()
                except OSError:
                    pass

    def pause(self):
        self.paused = True

    def resume(self):
        self.paused = False

    def sever(self):
        """Abruptly closes every live proxied socket (both halves)."""
        with self._lock:
            links, self._links = self._links, []
        for sock in links:
            try:
                sock.close()
            except OSError:
                pass

    def stop(self):
        self._stopping = True
        self.sever()
        try:
            self._listener.close()
        except OSError:
            pass


class Cluster:
    """One server + N proxied pusherds, plus their on-disk artifacts."""

    def __init__(self, args, workdir: str):
        self.args = args
        self.workdir = workdir
        self.rest_port = args.port_base
        self.transport_port = args.port_base + 1
        self.persist_dir = os.path.join(workdir, "persist")
        self.server: Proc | None = None
        self.proxies: list[TcpProxy] = []
        self.pushers: list[Proc | None] = [None] * args.pushers
        for i in range(args.pushers):
            self.proxies.append(
                TcpProxy(args.port_base + 10 + i, self.transport_port))

    def server_config(self, faults: str = "") -> str:
        path = os.path.join(self.workdir, "server.cfg")
        with open(path, "w", encoding="utf-8") as out:
            out.write(SERVER_CONFIG.format(transport_port=self.transport_port,
                                           persist_dir=self.persist_dir,
                                           faults=faults))
        return path

    def start_server(self, faults: str = "") -> Proc:
        self.server = spawn(
            "wintermuted",
            [self.args.server, "--config", self.server_config(faults),
             "--port", str(self.rest_port), "--duration", "600"],
            log_path=os.path.join(self.workdir, "server.log"))
        return self.server

    def start_pusher(self, index: int) -> Proc:
        config = os.path.join(self.workdir, f"pusherd{index}.cfg")
        with open(config, "w", encoding="utf-8") as out:
            out.write(PUSHERD_CONFIG.format(
                proxy_port=self.proxies[index].listen_port))
        proc = spawn(
            f"pusherd{index}",
            [self.args.pusherd, "--config", config, "--name", f"p{index}",
             "--prefix", f"/p{index}",
             "--publish-log", os.path.join(self.workdir, f"p{index}.pub"),
             "--duration", "600"],
            log_path=os.path.join(self.workdir, f"p{index}.log"))
        self.pushers[index] = proc
        return proc

    def live_procs(self) -> list[Proc]:
        procs = [p for p in self.pushers if p is not None]
        if self.server is not None:
            procs.append(self.server)
        return procs

    def transport_counter(self, key: str) -> int:
        status = fetch_json(self.rest_port, "/status")
        if status is None:
            return -1
        return status.get("transport", {}).get(key, -1)

    def forwarded(self) -> int:
        return self.transport_counter("publishesForwarded")


def wait_traffic(cluster: Cluster, more: int = 50,
                 budget: float = 20.0) -> str | None:
    """Waits until the server has forwarded `more` additional publishes."""
    base = max(0, cluster.forwarded())
    ok = wait_for(lambda: cluster.forwarded() >= base + more, budget)
    if not ok:
        return (f"traffic stalled: publishesForwarded stuck near {base} "
                f"(wanted +{more})")
    return None


def parse_publish_logs(cluster: Cluster):
    """Returns (pub, acks): pub maps (topic, seq) -> set of "ts value"
    strings; acks maps topic -> highest acked sequence."""
    pub: dict[tuple[str, int], set[str]] = {}
    acks: dict[str, int] = {}
    for i in range(cluster.args.pushers):
        path = os.path.join(cluster.workdir, f"p{i}.pub")
        if not os.path.exists(path):
            continue
        with open(path, encoding="utf-8") as log:
            for line in log:
                parts = line.split()
                # A SIGKILL can truncate the final line; ignore short tails.
                if len(parts) == 5 and parts[0] == "PUB":
                    key = (parts[1], int(parts[2]))
                    pub.setdefault(key, set()).add(f"{parts[3]} {parts[4]}")
                elif len(parts) == 3 and parts[0] == "ACK":
                    seq = int(parts[2])
                    if seq > acks.get(parts[1], 0):
                        acks[parts[1]] = seq
    return pub, acks


def verify_exactly_once(cluster: Cluster) -> str | None:
    """The oracle: storage dump vs ground-truth publish logs."""
    dump = fetch_text(cluster.rest_port, "/storage/dump")
    if dump is None:
        return "GET /storage/dump failed"
    with open(os.path.join(cluster.workdir, "storage_dump.csv"), "w",
              encoding="utf-8") as out:
        out.write(dump)

    prefixes = tuple(f"/p{i}/" for i in range(cluster.args.pushers))
    stored: dict[tuple[str, str], int] = {}
    stored_rows: dict[str, set[str]] = {}
    for line in dump.splitlines()[1:]:  # skip "topic,timestamp,value"
        topic, timestamp, value = line.split(",", 2)
        if not topic.startswith(prefixes):
            continue
        key = (topic, timestamp)
        stored[key] = stored.get(key, 0) + 1
        stored_rows.setdefault(topic, set()).add(f"{timestamp} {value}")

    # 1. No duplicates: per-topic sequence dedup must have caught every
    #    replayed/retried delivery.
    duplicates = [key for key, count in stored.items() if count > 1]
    if duplicates:
        return (f"{len(duplicates)} duplicated (topic, timestamp) rows in "
                f"storage, e.g. {duplicates[:3]}")

    pub, acks = parse_publish_logs(cluster)
    if not pub:
        return "ground-truth publish logs are empty"

    # 2. Acked => stored: a reading covered by its topic's final cumulative
    #    ack watermark must have survived every crash and split.
    missing = []
    for (topic, seq), readings in pub.items():
        if seq > acks.get(topic, 0):
            continue  # never acked; the contract makes no promise
        for reading in readings:
            if reading not in stored_rows.get(topic, set()):
                missing.append((topic, seq, reading))
    if missing:
        return (f"{len(missing)} acked readings missing from storage, "
                f"e.g. {missing[:3]}")

    # 3. Stored => published: nothing in the store lacks a ground-truth
    #    PUB line (intent logging happens before the wire write).
    published_rows: dict[str, set[str]] = {}
    for (topic, _seq), readings in pub.items():
        published_rows.setdefault(topic, set()).update(readings)
    phantom = []
    for topic, rows in stored_rows.items():
        for row in rows - published_rows.get(topic, set()):
            phantom.append((topic, row))
    if phantom:
        return (f"{len(phantom)} stored readings have no ground-truth PUB "
                f"line, e.g. {phantom[:3]}")

    acked_checked = sum(
        len(readings) for (topic, seq), readings in pub.items()
        if seq <= acks.get(topic, 0))
    total_stored = sum(len(rows) for rows in stored_rows.values())
    print(f"exactly-once verified: {total_stored} stored readings, "
          f"{acked_checked} acked ground-truth readings all present, "
          f"0 duplicates, 0 phantoms")
    return None


def campaign_smoke(cluster: Cluster) -> str | None:
    """2 pushers; SIGKILL+restart each side once; one >= 2s netsplit."""
    cluster.start_server()
    if not wait_for(lambda: fetch_json(cluster.rest_port, "/status")):
        return "server did not come up"
    for i in range(cluster.args.pushers):
        cluster.start_pusher(i)
    error = wait_traffic(cluster, more=100)
    if error:
        return f"warmup: {error}"
    print("phase warmup: traffic flowing through the proxies")

    # --- SIGKILL a pusher mid-stream, restart it. -------------------------
    cluster.pushers[0].sigkill()
    error = wait_traffic(cluster, more=30)  # survivors keep publishing
    if error:
        return f"pusher-kill: {error}"
    cluster.start_pusher(0)
    error = wait_traffic(cluster, more=100)
    if error:
        return f"pusher-restart: {error}"
    print("phase pusher-kill: pusherd0 SIGKILLed and restarted, "
          "traffic recovered")

    # --- SIGKILL the server, restart on the same persistence dir. ---------
    cluster.server.sigkill()
    time.sleep(1.0)  # clients notice the dead wire and start retrying
    cluster.start_server()
    if not wait_for(lambda: fetch_json(cluster.rest_port, "/status")):
        return "server did not come back after SIGKILL"
    error = wait_traffic(cluster, more=100)
    if error:
        return f"server-restart: {error}"
    reconnects = sum(
        1 for i in range(cluster.args.pushers))  # cosmetic; logs carry detail
    print(f"phase server-kill: server SIGKILLed and restarted, "
          f"{reconnects} pushers reconnected, traffic recovered")

    # --- Netsplit >= 2s against live traffic, then heal. ------------------
    cluster.proxies[1].pause()
    split_started = time.monotonic()
    error = wait_traffic(cluster, more=30)  # the unsplit pusher still flows
    if error:
        return f"netsplit: {error}"
    remaining = 2.0 - (time.monotonic() - split_started)
    if remaining > 0:
        time.sleep(remaining)
    cluster.proxies[1].resume()
    error = wait_traffic(cluster, more=100)
    if error:
        return f"netsplit-heal: {error}"
    print("phase netsplit: >= 2s blackhole on pusherd1 healed, "
          "traffic recovered")
    return None


def campaign_full(cluster: Cluster) -> str | None:
    """Smoke plus SIGSTOP wedging, abrupt severing, and a frame-dropping
    server restart (the dense frame counter must keep exactly-once)."""
    error = campaign_smoke(cluster)
    if error:
        return error

    # --- SIGSTOP: alive-but-wedged peer; heartbeats must evict it, and it
    # must recover after SIGCONT. -----------------------------------------
    cluster.pushers[0].sigstop()
    time.sleep(1.5)  # > 3x heartbeat: the server declares it dead
    cluster.pushers[0].sigcont()
    error = wait_traffic(cluster, more=100)
    if error:
        return f"sigstop: {error}"
    print("phase sigstop: wedged pusherd evicted and recovered")

    # --- Abrupt socket severing (RST-ish), all links at once. -------------
    for proxy in cluster.proxies:
        proxy.sever()
    error = wait_traffic(cluster, more=100)
    if error:
        return f"sever: {error}"
    print("phase sever: all sockets cut, all pushers reconnected")

    # --- Frame-dropping server: silent in-connection loss must become
    # connection drops + replay (PublishFrame::frame_seq), never data loss.
    cluster.server.terminate()
    cluster.start_server(faults=FRAME_DROP_FAULTS)
    if not wait_for(lambda: fetch_json(cluster.rest_port, "/status")):
        return "server did not come back with frame-drop faults"
    error = wait_traffic(cluster, more=200, budget=60.0)
    if error:
        return f"frame-drop: {error}"
    gaps = cluster.transport_counter("frameGaps")
    if gaps <= 0:
        return f"frame-drop: fault armed but frameGaps={gaps} (never fired)"
    print(f"phase frame-drop: {gaps} dropped frames detected as gaps, "
          "traffic kept flowing")
    # Restart clean so the quiesce phase is not racing armed faults.
    cluster.server.terminate()
    cluster.start_server()
    if not wait_for(lambda: fetch_json(cluster.rest_port, "/status")):
        return "server did not come back after the frame-drop phase"
    error = wait_traffic(cluster, more=50)
    if error:
        return f"frame-drop-heal: {error}"
    return None


CAMPAIGNS = {"smoke": campaign_smoke, "full": campaign_full}
CAMPAIGN_BUDGET_SEC = {"smoke": 180, "full": 420}


def save_artifacts(cluster: Cluster, directory: str):
    os.makedirs(directory, exist_ok=True)
    for name in os.listdir(cluster.workdir):
        if name.endswith((".log", ".pub", ".cfg", ".csv")):
            shutil.copy2(os.path.join(cluster.workdir, name), directory)
    print(f"artifacts saved under {directory}", file=sys.stderr)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--server", required=True, help="wintermuted binary")
    parser.add_argument("--pusherd", required=True, help="wm_pusherd binary")
    parser.add_argument("--campaign", choices=sorted(CAMPAIGNS),
                        default="smoke")
    parser.add_argument("--pushers", type=int, default=2)
    parser.add_argument("--port-base", type=int, default=28700)
    parser.add_argument("--artifacts",
                        help="directory for logs + dump on failure")
    args = parser.parse_args()

    workdir = tempfile.mkdtemp(prefix="wm_cluster_driver_")
    cluster = Cluster(args, workdir)
    error: str | None = None
    try:
        error = run_phase(args.campaign, lambda: CAMPAIGNS[args.campaign](cluster),
                          CAMPAIGN_BUDGET_SEC[args.campaign])
        if error is None:
            # Quiesce: stop the pushers gracefully (drain + final ACK
            # watermarks), let the server absorb the tail, then judge.
            for pusher in cluster.pushers:
                if pusher is not None:
                    pusher.terminate()
            time.sleep(1.0)
            error = run_phase("verify", lambda: verify_exactly_once(cluster),
                              60)
    finally:
        from procutil import reap_all
        reap_all(cluster.live_procs())
        for proxy in cluster.proxies:
            proxy.stop()

    if error:
        print(f"FAIL: {error}", file=sys.stderr)
        if args.artifacts:
            save_artifacts(cluster, args.artifacts)
        return 1
    print(f"cluster driver campaign '{args.campaign}' PASSED")
    shutil.rmtree(workdir, ignore_errors=True)
    return 0


if __name__ == "__main__":
    sys.exit(main())
