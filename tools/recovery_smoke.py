#!/usr/bin/env python3
"""Kill-restart recovery smoke for wintermuted (stdlib only; wired into CI).

Scenario (docs/RESILIENCE.md, "Durability model"):

  1. start wintermuted with a persistence-enabled configuration,
  2. wait until the storage WAL has logged real readings,
  3. SIGKILL the daemon mid-run -- no shutdown hook, no final checkpoint,
  4. restart it on the same directory,
  5. assert via /status that the restarted daemon recovered state: the WAL
     was replayed (and/or a snapshot loaded) and the pipeline is moving
     again (new records are being logged on top of the recovered state).

Then the same kill-restart cycle runs against a SHARDED deployment
(`collectagent { shards 2 }`, docs/PERFORMANCE.md "Sharded ingest and
storage"): the sharded backend fans durability out into per-shard
`shard-NNN/` directories, each with its own WAL, and recovery replays
every shard independently. On top of the single-shard assertions this
phase checks that the shard directories exist on disk, that /status
reports the sharded topology (shards/agents), and that the recovered
store is duplicate-free -- a storage-backed /sensors/series query must
never return the same (timestamp, value) twice for one topic, which is
exactly what a double-replayed or cross-shard-duplicated WAL record
would produce.

Usage:
  tools/recovery_smoke.py --daemon build/src/apps/wintermuted [--port N]
"""

from __future__ import annotations

import argparse
import os
import sys
import tempfile

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
from procutil import (  # noqa: E402  (path bootstrap above)
    Proc, fetch_json, fetch_status, spawn, wait_for)

CONFIG_TEMPLATE = """
cluster {{
    racks 1
    chassisPerRack 1
    nodesPerChassis 2
    cpusPerNode 2
    app lammps
}}
pusher {{
    samplingInterval 100ms
    cacheWindow 60s
}}
persistence {{
    directory "{directory}"
    snapshotEvery 64
    checkpointInterval 2s
}}
supervisor {{
    checkInterval 500ms
}}
plugin smoothing {{
    host collectagent
    operator power-smooth {{
        interval 200ms
        window 5s
        alpha 0.25
        input {{
            sensor "<bottomup-1>power"
        }}
        output {{
            sensor "<bottomup-1>power-smooth"
        }}
    }}
}}
"""


SHARDED_CONFIG_TEMPLATE = """
cluster {{
    racks 2
    chassisPerRack 1
    nodesPerChassis 2
    cpusPerNode 2
    app lammps
}}
pusher {{
    samplingInterval 100ms
    cacheWindow 60s
}}
collectagent {{
    shards 2
}}
persistence {{
    directory "{directory}"
    snapshotEvery 64
    checkpointInterval 2s
}}
"""


def start_daemon(binary: str, config: str, port: int) -> Proc:
    return spawn(f"wintermuted:{port}",
                 [binary, "--config", config, "--port", str(port),
                  "--duration", "120"])


def durability(status: dict) -> dict:
    return status.get("durability", {})


def kill_restart_cycle(binary: str, template: str, port: int, label: str,
                       extra_check=None) -> int:
    """One SIGKILL + restart drill; `extra_check(port, persist_dir)` runs
    against the restarted daemon (return an error string, or None)."""
    workdir = tempfile.mkdtemp(prefix="wm_recovery_smoke_")
    config_path = os.path.join(workdir, "smoke.cfg")
    persist_dir = os.path.join(workdir, "persist")
    with open(config_path, "w", encoding="utf-8") as out:
        out.write(template.format(directory=persist_dir))

    # --- Run until the WAL holds real data, then SIGKILL. ------------------
    first = start_daemon(binary, config_path, port)
    try:
        status = wait_for(lambda: fetch_status(port))
        if status is None:
            print(f"FAIL: {label}: daemon did not come up", file=sys.stderr)
            return 1
        if not durability(status).get("enabled"):
            print(f"FAIL: {label}: durability not enabled: {status}",
                  file=sys.stderr)
            return 1
        status = wait_for(
            lambda: (s := fetch_status(port)) is not None
            and durability(s).get("walRecordsLogged", 0) >= 20 and s)
        if status is None:
            print(f"FAIL: {label}: WAL never accumulated records",
                  file=sys.stderr)
            return 1
        logged_before_kill = durability(status)["walRecordsLogged"]
    finally:
        # Hard crash: no SIGTERM handler runs, no shutdown checkpoint.
        first.sigkill()
    print(f"{label}: killed daemon with {logged_before_kill} "
          "WAL records logged")

    # --- Restart on the same directory and verify recovery. ----------------
    second = start_daemon(binary, config_path, port)
    try:
        status = wait_for(lambda: fetch_status(port))
        if status is None:
            print(f"FAIL: {label}: daemon did not come back up",
                  file=sys.stderr)
            return 1
        recovered = durability(status)
        replayed = recovered.get("walRecordsReplayed", 0)
        from_snapshot = recovered.get("recoveredFromSnapshot", False)
        if replayed == 0 and not from_snapshot:
            print(f"FAIL: {label}: restart recovered nothing: {recovered}",
                  file=sys.stderr)
            return 1
        # The pipeline must keep moving on top of the recovered state.
        status = wait_for(
            lambda: (s := fetch_status(port)) is not None
            and durability(s).get("walRecordsLogged", 0) > 0 and s)
        if status is None:
            print(f"FAIL: {label}: no new WAL records after recovery",
                  file=sys.stderr)
            return 1
        print(f"{label}: recovered (snapshot={from_snapshot}, "
              f"walRecordsReplayed={replayed}); pipeline logging again")
        if extra_check is not None:
            problem = extra_check(port, persist_dir)
            if problem:
                print(f"FAIL: {label}: {problem}", file=sys.stderr)
                return 1
    finally:
        second.terminate()
    return 0


def sharded_recovery_check(port: int, persist_dir: str) -> str | None:
    """Sharded-deployment assertions against the restarted daemon."""
    # Durability must have fanned out into one directory per shard, each
    # carrying its own WAL (replay already proved they parse: the cycle
    # asserted walRecordsReplayed/snapshot above).
    for shard in range(2):
        shard_dir = os.path.join(persist_dir, f"shard-{shard:03d}")
        if not os.path.isdir(shard_dir):
            return f"missing per-shard durability directory {shard_dir}"
        if not any(name.endswith(".wal") or name.endswith(".snap")
                   for name in os.listdir(shard_dir)):
            return f"no WAL/snapshot files under {shard_dir}"
    status = fetch_status(port)
    if status is None:
        return "status endpoint went away"
    if status.get("shards") != 2 or status.get("agents") != 2:
        return (f"expected 2 shards / 2 agents, got "
                f"shards={status.get('shards')} agents={status.get('agents')}")

    # Duplicate-free recovered store: a window wider than the agents' cache
    # forces /sensors/series through the storage fallback, so the response
    # is the recovered (replayed) series plus the live tail. A WAL record
    # replayed twice, or routed into two shards, would surface here as the
    # same (timestamp, value) pair appearing twice for one topic.
    sensors = fetch_json(port, "/sensors")
    if not sensors or not sensors.get("sensors"):
        return "no sensors listed after recovery"
    checked = 0
    for topic in sensors["sensors"]:
        if not topic.endswith(("/power", "/temp")):
            continue
        series = fetch_json(
            port, f"/sensors/series?topic={topic}&window=1h")
        if series is None:
            return f"series query failed for {topic}"
        readings = [(r["t"], r["v"]) for r in series.get("readings", [])]
        if len(readings) != len(set(readings)):
            return (f"duplicate (timestamp, value) pairs in recovered "
                    f"series for {topic}")
        checked += 1
    if checked == 0:
        return "no power/temp series to check for duplicates"
    print(f"phase 3: 2 shard WALs on disk; {checked} recovered series "
          "duplicate-free")
    return None


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--daemon", required=True, help="wintermuted binary")
    parser.add_argument("--port", type=int, default=28517)
    args = parser.parse_args()

    # Phases 1-2: the classic single-shard drill.
    rc = kill_restart_cycle(args.daemon, CONFIG_TEMPLATE, args.port,
                            "phase 1-2 (1 shard)")
    if rc != 0:
        return rc
    # Phase 3: the same crash against a 2-shard deployment; per-shard WAL
    # replay must reassemble a duplicate-free store.
    rc = kill_restart_cycle(args.daemon, SHARDED_CONFIG_TEMPLATE,
                            args.port + 1, "phase 3 (2 shards)",
                            extra_check=sharded_recovery_check)
    if rc != 0:
        return rc

    print("recovery smoke PASSED")
    return 0


if __name__ == "__main__":
    sys.exit(main())
