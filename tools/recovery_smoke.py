#!/usr/bin/env python3
"""Kill-restart recovery smoke for wintermuted (stdlib only; wired into CI).

Scenario (docs/RESILIENCE.md, "Durability model"):

  1. start wintermuted with a persistence-enabled configuration,
  2. wait until the storage WAL has logged real readings,
  3. SIGKILL the daemon mid-run -- no shutdown hook, no final checkpoint,
  4. restart it on the same directory,
  5. assert via /status that the restarted daemon recovered state: the WAL
     was replayed (and/or a snapshot loaded) and the pipeline is moving
     again (new records are being logged on top of the recovered state).

Usage:
  tools/recovery_smoke.py --daemon build/src/apps/wintermuted [--port N]
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import subprocess
import sys
import tempfile
import time
import urllib.error
import urllib.request

POLL_INTERVAL_SEC = 0.1
STARTUP_BUDGET_SEC = 15.0

CONFIG_TEMPLATE = """
cluster {{
    racks 1
    chassisPerRack 1
    nodesPerChassis 2
    cpusPerNode 2
    app lammps
}}
pusher {{
    samplingInterval 100ms
    cacheWindow 60s
}}
persistence {{
    directory "{directory}"
    snapshotEvery 64
    checkpointInterval 2s
}}
supervisor {{
    checkInterval 500ms
}}
plugin smoothing {{
    host collectagent
    operator power-smooth {{
        interval 200ms
        window 5s
        alpha 0.25
        input {{
            sensor "<bottomup-1>power"
        }}
        output {{
            sensor "<bottomup-1>power-smooth"
        }}
    }}
}}
"""


def fetch_status(port: int) -> dict | None:
    try:
        with urllib.request.urlopen(
                f"http://127.0.0.1:{port}/status", timeout=2) as response:
            return json.loads(response.read().decode())
    except (urllib.error.URLError, ConnectionError, TimeoutError,
            json.JSONDecodeError, OSError):
        return None


def wait_for(predicate, budget_sec: float = STARTUP_BUDGET_SEC):
    """Polls `predicate` until it returns a truthy value or the budget ends."""
    deadline = time.monotonic() + budget_sec
    while time.monotonic() < deadline:
        value = predicate()
        if value:
            return value
        time.sleep(POLL_INTERVAL_SEC)
    return None


def start_daemon(binary: str, config: str, port: int) -> subprocess.Popen:
    return subprocess.Popen(
        [binary, "--config", config, "--port", str(port), "--duration", "120"],
        stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL)


def durability(status: dict) -> dict:
    return status.get("durability", {})


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--daemon", required=True, help="wintermuted binary")
    parser.add_argument("--port", type=int, default=28517)
    args = parser.parse_args()

    workdir = tempfile.mkdtemp(prefix="wm_recovery_smoke_")
    config_path = os.path.join(workdir, "smoke.cfg")
    persist_dir = os.path.join(workdir, "persist")
    with open(config_path, "w", encoding="utf-8") as out:
        out.write(CONFIG_TEMPLATE.format(directory=persist_dir))

    # --- Phase 1: run until the WAL holds real data, then SIGKILL. ---------
    first = start_daemon(args.daemon, config_path, args.port)
    try:
        status = wait_for(lambda: fetch_status(args.port))
        if status is None:
            print("FAIL: daemon did not come up", file=sys.stderr)
            return 1
        if not durability(status).get("enabled"):
            print(f"FAIL: durability not enabled: {status}", file=sys.stderr)
            return 1
        status = wait_for(
            lambda: (s := fetch_status(args.port)) is not None
            and durability(s).get("walRecordsLogged", 0) >= 20 and s)
        if status is None:
            print("FAIL: WAL never accumulated records", file=sys.stderr)
            return 1
        logged_before_kill = durability(status)["walRecordsLogged"]
    finally:
        # Hard crash: no SIGTERM handler runs, no shutdown checkpoint.
        first.send_signal(signal.SIGKILL)
        first.wait()
    print(f"phase 1: killed daemon with {logged_before_kill} WAL records logged")

    # --- Phase 2: restart on the same directory and verify recovery. -------
    second = start_daemon(args.daemon, config_path, args.port)
    try:
        status = wait_for(lambda: fetch_status(args.port))
        if status is None:
            print("FAIL: daemon did not come back up", file=sys.stderr)
            return 1
        recovered = durability(status)
        replayed = recovered.get("walRecordsReplayed", 0)
        from_snapshot = recovered.get("recoveredFromSnapshot", False)
        if replayed == 0 and not from_snapshot:
            print(f"FAIL: restart recovered nothing: {recovered}",
                  file=sys.stderr)
            return 1
        # The pipeline must keep moving on top of the recovered state.
        status = wait_for(
            lambda: (s := fetch_status(args.port)) is not None
            and durability(s).get("walRecordsLogged", 0) > 0 and s)
        if status is None:
            print("FAIL: no new WAL records after recovery", file=sys.stderr)
            return 1
        print(f"phase 2: recovered (snapshot={from_snapshot}, "
              f"walRecordsReplayed={replayed}); pipeline logging again")
    finally:
        second.send_signal(signal.SIGTERM)
        second.wait()

    print("recovery smoke PASSED")
    return 0


if __name__ == "__main__":
    sys.exit(main())
