#!/usr/bin/env python3
"""Run the micro benchmark suite and collect one machine-readable report.

Runs the Google-Benchmark micro benches (micro_mqtt, micro_cache,
micro_unitsystem, micro_analytics) with --benchmark_format=json plus the
fig5 query-overhead bench in --quick mode, and merges everything into a
single BENCH_*.json document (see docs/PERFORMANCE.md for how to read it).

Deliberately performs NO wall-clock assertions: the CI box has a single CPU
and shares it with co-tenants, so absolute timings are noise there. The
report carries ops/sec, allocation counters, and derived ratios (e.g.
trie vs linear-scan subscription matching at 1000 subscriptions) for humans
and for offline trend tracking; the only hard failures are benches that
crash or emit unparsable output.

Usage:
    python3 tools/bench_run.py [--build-dir build] [--output BENCH_PR4.json]
                               [--quick] [--skip-fig5]
    python3 tools/bench_run.py --quality [--build-dir build]
                               [--output BENCH_quality.json]
    python3 tools/bench_run.py --shard [--quick] [--build-dir build]
                               [--output BENCH_shard.json]

--quick shortens every benchmark repetition (the default mode used by the
bench-smoke CI job); omit it for locally meaningful numbers on an idle
multi-core machine.

--shard switches to the storage/ingest sharding lane (part of the
`bench-smoke` CI job): it runs bench/micro_shard, which measures ingest
throughput under concurrent whole-store /status-style scans at shard
counts {1, 2, 4, 8}, and HARD-FAILS when 4 shards deliver less than 2.5x
the 1-shard rate. Unlike the wall-clock numbers above, this gate is a
*ratio* between two configurations measured back-to-back on the same box,
so it is meaningful even on the 1-CPU CI runner — the contended baseline
is reader-starved by design, and sharding must relieve that starvation
(docs/PERFORMANCE.md, "Sharded ingest and storage").

--quality switches to the operator-quality lane (the `quality` CI job):
instead of timing benches it runs wm_eval over every campaign under
configs/scenarios/ TWICE, asserts the two wintermute-quality-v1 reports are
byte-identical (the determinism contract of docs/SCENARIOS.md), validates
the schema, and prints per-detector precision/recall/F1 headlines. Unlike
the timing lane, quality failures ARE hard failures: scores are
deterministic, so any drift is a real regression.
"""

import argparse
import json
import pathlib
import subprocess
import sys
import tempfile

MICRO_BENCHES = ["micro_mqtt", "micro_cache", "micro_unitsystem", "micro_analytics"]


def run_micro(binary: pathlib.Path, quick: bool) -> list:
    """Runs one Google-Benchmark binary, returns its benchmark entries."""
    cmd = [str(binary), "--benchmark_format=json"]
    if quick:
        cmd.append("--benchmark_min_time=0.005")
    result = subprocess.run(cmd, capture_output=True, text=True, timeout=1800)
    if result.returncode != 0:
        sys.stderr.write(result.stderr)
        raise RuntimeError(f"{binary.name} exited with {result.returncode}")
    report = json.loads(result.stdout)
    entries = []
    for bench in report.get("benchmarks", []):
        entry = {
            "name": bench["name"],
            "real_time_ns": bench.get("real_time"),
            "cpu_time_ns": bench.get("cpu_time"),
            "iterations": bench.get("iterations"),
        }
        # Google Benchmark flattens user counters into the entry itself.
        for key in ("allocs/op", "matched", "items_per_second"):
            if key in bench:
                entry[key] = bench[key]
        entries.append(entry)
    return entries


def time_of(entries: list, name: str):
    for entry in entries:
        if entry["name"] == name:
            return entry.get("cpu_time_ns") or entry.get("real_time_ns")
    return None


def ratio(numerator, denominator):
    if numerator is None or denominator in (None, 0):
        return None
    return numerator / denominator


def derive_ratios(suites: dict) -> dict:
    """Headline comparisons between the old and the new hot-path shapes."""
    mqtt = suites.get("micro_mqtt", [])
    cache = suites.get("micro_cache", [])
    return {
        # The tentpole number: linear-scan matching vs the trie at >= 1000
        # subscriptions. > 1.0 means the trie is faster.
        "match_linear_vs_trie_1000_subs": ratio(
            time_of(mqtt, "BM_MatchLinearScan/1000"),
            time_of(mqtt, "BM_MatchSubscriptionIndex/1000")),
        "match_linear_vs_trie_4096_subs": ratio(
            time_of(mqtt, "BM_MatchLinearScan/4096"),
            time_of(mqtt, "BM_MatchSubscriptionIndex/4096")),
        # String hashing under the store lock vs the id-keyed lock-free path.
        "store_find_string_vs_id_1000_sensors": ratio(
            time_of(cache, "BM_CacheStoreFindByString/1000"),
            time_of(cache, "BM_CacheStoreFindById/1000")),
        # Copying window extraction vs the in-place visitation, 100 s window.
        "view_vs_foreach_100s_window": ratio(
            time_of(cache, "BM_CacheViewRelativeWindow/100"),
            time_of(cache, "BM_CacheForEachRelativeWindow/100")),
        # Materialise-then-reduce vs the fused statsRelative, 100 s window.
        "view_then_reduce_vs_stats_100s_window": ratio(
            time_of(cache, "BM_CacheViewThenReduce/100"),
            time_of(cache, "BM_CacheStatsRelative/100")),
    }


def validate_quality_report(report: dict) -> list:
    """Schema checks for a wintermute-quality-v1 document."""
    problems = []
    if report.get("schema") != "wintermute-quality-v1":
        problems.append(f"unexpected schema: {report.get('schema')!r}")
    scenarios = report.get("scenarios")
    if not isinstance(scenarios, list) or not scenarios:
        return problems + ["no scenarios in report"]
    for scenario in scenarios:
        name = scenario.get("scenario", "<unnamed>")
        for key in ("seed", "duration_s", "tolerance_s", "ground_truth",
                    "truncated_windows", "operators"):
            if key not in scenario:
                problems.append(f"{name}: missing key '{key}'")
        for detector in scenario.get("operators", []):
            dname = f"{name}/{detector.get('detector', '<unnamed>')}"
            if "classes" not in detector:
                problems.append(f"{dname}: missing per-class scores")
                continue
            for cls in detector["classes"]:
                cls_name = cls.get("class", "<unnamed>")
                for key in ("precision", "recall", "f1", "median_lag_s",
                            "truncated"):
                    if key not in cls:
                        problems.append(f"{dname}/{cls_name}: missing '{key}'")
    return problems


def run_quality(build_dir: pathlib.Path, output: pathlib.Path) -> int:
    root = pathlib.Path(__file__).resolve().parent.parent
    wm_eval = build_dir / "src" / "apps" / "wm_eval"
    if not wm_eval.exists():
        sys.stderr.write(f"bench_run: {wm_eval} not built\n")
        return 2
    scenarios = root / "configs" / "scenarios"

    # Two full runs: the quality report must be byte-stable at fixed seeds.
    texts = []
    for attempt in (1, 2):
        print(f"bench_run: quality run {attempt}/2 over {scenarios} ...",
              flush=True)
        with tempfile.NamedTemporaryFile(suffix=".json", delete=False) as handle:
            out_path = pathlib.Path(handle.name)
        result = subprocess.run(
            [str(wm_eval), "--output", str(out_path), str(scenarios)],
            capture_output=True, text=True, timeout=3600)
        if result.returncode != 0:
            sys.stderr.write(result.stdout)
            sys.stderr.write(result.stderr)
            sys.stderr.write(f"bench_run: wm_eval exited {result.returncode}\n")
            return 1
        texts.append(out_path.read_text())
        out_path.unlink()
    if texts[0] != texts[1]:
        sys.stderr.write("bench_run: FAIL: quality report not byte-stable "
                         "across two runs at the same seeds\n")
        return 1

    report = json.loads(texts[0])
    problems = validate_quality_report(report)
    if problems:
        for problem in problems:
            sys.stderr.write(f"bench_run: schema: {problem}\n")
        return 1

    output.write_text(texts[0])
    print(f"bench_run: wrote {output} (byte-stable across 2 runs)")
    for scenario in report["scenarios"]:
        for detector in scenario["operators"]:
            for cls in detector["classes"]:
                print(f"bench_run: {scenario['scenario']:>24} "
                      f"{detector['detector']:>10} {cls['class']:<18} "
                      f"P={cls['precision']:.2f} R={cls['recall']:.2f} "
                      f"F1={cls['f1']:.2f} lag={cls['median_lag_s']:.1f}s "
                      f"trunc={cls['truncated']}")
    return 0


# The one hard performance gate in the repo: 4 storage/ingest shards must
# deliver at least this multiple of the 1-shard ingest rate under scan
# contention. A ratio, not a wall-clock bound, so it holds on shared CI.
SHARD_SPEEDUP_GATE_4V1 = 2.5


def run_shard(build_dir: pathlib.Path, output: pathlib.Path,
              quick: bool) -> int:
    binary = build_dir / "bench" / "micro_shard"
    if not binary.exists():
        sys.stderr.write(f"bench_run: {binary} not built\n")
        return 2
    with tempfile.NamedTemporaryFile(suffix=".json", delete=False) as handle:
        json_path = pathlib.Path(handle.name)
    cmd = [str(binary), "--json", str(json_path)]
    if quick:
        cmd.append("--quick")
    mode = "quick" if quick else "full"
    print(f"bench_run: running micro_shard ({mode}) ...", flush=True)
    result = subprocess.run(cmd, text=True, timeout=3600)
    if result.returncode != 0:
        json_path.unlink(missing_ok=True)
        sys.stderr.write(f"bench_run: micro_shard exited {result.returncode}\n")
        return 1
    report = json.loads(json_path.read_text())
    json_path.unlink()

    output.write_text(json.dumps(report, indent=2) + "\n")
    print(f"bench_run: wrote {output}")
    for point in report.get("points", []):
        print(f"bench_run: shards={point['shards']:<2} "
              f"{point['msgs_per_sec']:>12.1f} msgs/s "
              f"({point['scans']} scan passes)")
    speedup = report.get("speedup_4v1")
    if speedup is None:
        sys.stderr.write("bench_run: FAIL: report carries no speedup_4v1\n")
        return 1
    print(f"bench_run: 4-shard vs 1-shard ingest speedup: {speedup:.2f}x "
          f"(gate: >= {SHARD_SPEEDUP_GATE_4V1}x)")
    if speedup < SHARD_SPEEDUP_GATE_4V1:
        sys.stderr.write(
            f"bench_run: FAIL: sharding gate: 4-shard speedup {speedup:.2f}x "
            f"< {SHARD_SPEEDUP_GATE_4V1}x — sharding no longer relieves "
            f"scan/ingest lock contention\n")
        return 1
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--build-dir", default="build", type=pathlib.Path)
    parser.add_argument("--output", default=None, type=pathlib.Path)
    parser.add_argument("--quick", action="store_true",
                        help="short repetitions (CI smoke mode)")
    parser.add_argument("--skip-fig5", action="store_true",
                        help="skip the fig5 overhead grid (micro benches only)")
    parser.add_argument("--quality", action="store_true",
                        help="run the wm_eval scenario-quality lane instead "
                             "of the timing benches")
    parser.add_argument("--shard", action="store_true",
                        help="run the micro_shard sharding lane with the "
                             "hard 4-shard >= 2.5x speedup gate")
    args = parser.parse_args()

    if args.quality and args.shard:
        sys.stderr.write("bench_run: --quality and --shard are exclusive\n")
        return 2
    if args.quality:
        return run_quality(args.build_dir,
                           args.output or pathlib.Path("BENCH_quality.json"))
    if args.shard:
        return run_shard(args.build_dir,
                         args.output or pathlib.Path("BENCH_shard.json"),
                         args.quick)
    if args.output is None:
        args.output = pathlib.Path("BENCH_PR4.json")

    bench_dir = args.build_dir / "bench"
    suites = {}
    for name in MICRO_BENCHES:
        binary = bench_dir / name
        if not binary.exists():
            sys.stderr.write(f"bench_run: {binary} not built, skipping\n")
            continue
        print(f"bench_run: running {name} ...", flush=True)
        suites[name] = run_micro(binary, args.quick)

    fig5 = None
    fig5_binary = bench_dir / "fig5_query_overhead"
    if not args.skip_fig5 and fig5_binary.exists():
        print("bench_run: running fig5_query_overhead --quick ...", flush=True)
        with tempfile.NamedTemporaryFile(suffix=".json", delete=False) as handle:
            fig5_path = pathlib.Path(handle.name)
        result = subprocess.run(
            [str(fig5_binary), "--quick", "--json", str(fig5_path)],
            capture_output=True, text=True, timeout=3600)
        if result.returncode != 0:
            sys.stderr.write(result.stderr)
            raise RuntimeError(f"fig5_query_overhead exited with {result.returncode}")
        fig5 = json.loads(fig5_path.read_text())
        fig5_path.unlink()

    ratios = derive_ratios(suites)
    report = {
        "schema": "wintermute-bench-v1",
        "mode": "quick" if args.quick else "full",
        "ratios": ratios,
        "suites": suites,
    }
    if fig5 is not None:
        report["fig5_query_overhead"] = fig5
    args.output.write_text(json.dumps(report, indent=2) + "\n")
    print(f"bench_run: wrote {args.output}")

    headline = ratios.get("match_linear_vs_trie_1000_subs")
    if headline is not None:
        print(f"bench_run: trie vs linear scan @1000 subs: {headline:.1f}x")
        if headline < 1.0:
            # Informational only — never a CI failure (1-CPU box, noisy).
            print("bench_run: WARNING: trie slower than linear scan in this run")
    return 0


if __name__ == "__main__":
    sys.exit(main())
