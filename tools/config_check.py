#!/usr/bin/env python3
"""Configuration corpus gate (stdlib only; wired into CTest and CI).

Runs the wm_check static analyzer binary over two corpora:

  good corpus -- every .cfg under configs/ and examples/, plus every scenario
                 script (.scn) under configs/scenarios/, must analyze with
                 exit status 0 (no errors).
  bad corpus  -- every tests/data/bad_*.cfg and bad_*.scn must fail under
                 `--werror` (exit 1 when only warnings fire, exit 2 when any
                 error fires -- never anything else) and emit EXACTLY the
                 diagnostic codes named in its first-line
                 `# wm-check-expect: WM#### ...` header. Codes are extracted
                 from the --json output, so this also exercises the JSON
                 renderer end to end; the text renderer is checked for the
                 same `[WM####]` markers.

The bad corpus is also re-run WITHOUT --werror to pin the exit-code
contract: errors still exit 2, while warning-only configs exit 0 (warnings
never fail a plain run).

Usage:
  tools/config_check.py --wm-check PATH [--root DIR]
"""

from __future__ import annotations

import argparse
import re
import subprocess
import sys
from pathlib import Path

CODE_RE = re.compile(r'"code":"(WM\d{4})"')
TEXT_CODE_RE = re.compile(r"\[(WM\d{4})\]")
EXPECT_MARKER = "# wm-check-expect:"


def run(wm_check: str, args: list[str]) -> subprocess.CompletedProcess:
    return subprocess.run([wm_check, *args], capture_output=True, text=True)


def check_good(wm_check: str, config: Path) -> list[str]:
    proc = run(wm_check, [str(config)])
    if proc.returncode != 0:
        return [f"{config}: expected clean analysis, exit {proc.returncode}:\n"
                f"{proc.stdout.strip()}"]
    return []


def check_bad(wm_check: str, config: Path) -> list[str]:
    errors: list[str] = []
    first = config.read_text(encoding="utf-8").splitlines()[0]
    if not first.startswith(EXPECT_MARKER):
        return [f"{config}: first line must be '{EXPECT_MARKER} WM#### ...'"]
    expected = sorted(set(first[len(EXPECT_MARKER):].split()))
    if not expected:
        return [f"{config}: wm-check-expect header names no codes"]

    json_proc = run(wm_check, ["--werror", "--json", str(config)])
    if json_proc.returncode not in (1, 2):
        errors.append(f"{config}: expected exit 1 (warnings) or 2 (errors) "
                      f"under --werror, got {json_proc.returncode}")
    got = sorted(set(CODE_RE.findall(json_proc.stdout)))
    if got != expected:
        errors.append(f"{config}: expected codes {expected}, got {got} (json)")

    text_proc = run(wm_check, ["--werror", str(config)])
    if text_proc.returncode not in (1, 2):
        errors.append(f"{config}: expected exit 1 or 2 in text mode under "
                      f"--werror, got {text_proc.returncode}")
    got_text = sorted(set(TEXT_CODE_RE.findall(text_proc.stdout)))
    if got_text != expected:
        errors.append(
            f"{config}: expected codes {expected}, got {got_text} (text)")

    # Exit-code contract without --werror: a run that found errors exits 2,
    # a warnings-only run exits 0. Exit 1 is reserved for --werror.
    plain_proc = run(wm_check, [str(config)])
    want_plain = 2 if json_proc.returncode == 2 else 0
    if plain_proc.returncode != want_plain:
        errors.append(f"{config}: expected exit {want_plain} without "
                      f"--werror, got {plain_proc.returncode}")
    return errors


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--wm-check", required=True,
                        help="path to the built wm_check binary")
    parser.add_argument("--root", default=None,
                        help="repository root (default: parent of tools/)")
    args = parser.parse_args()

    root = Path(args.root) if args.root else Path(__file__).resolve().parent.parent
    wm_check = args.wm_check

    good = sorted([*(root / "configs").glob("*.cfg"),
                   *(root / "configs" / "scenarios").glob("*.scn"),
                   *(root / "examples").glob("*.cfg")])
    bad = sorted([*(root / "tests" / "data").glob("bad_*.cfg"),
                  *(root / "tests" / "data").glob("bad_*.scn")])
    if not good:
        print("config-check: error: no good configs found", file=sys.stderr)
        return 2
    if not bad:
        print("config-check: error: no bad_*.cfg corpus found", file=sys.stderr)
        return 2

    failures: list[str] = []
    for config in good:
        failures.extend(check_good(wm_check, config))
    for config in bad:
        failures.extend(check_bad(wm_check, config))

    for failure in failures:
        print(failure)
    if failures:
        print(f"config-check: {len(failures)} failure(s) over "
              f"{len(good)} good + {len(bad)} bad configs")
        return 1
    print(f"config-check: {len(good)} good and {len(bad)} bad configs behave "
          "as expected")
    return 0


if __name__ == "__main__":
    sys.exit(main())
