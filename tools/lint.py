#!/usr/bin/env python3
"""Repository lint gate (stdlib only; wired into CTest and CI).

Rules:
  raw-lock        -- no raw std::mutex / std::lock_guard / std::unique_lock /
                     std::shared_lock / std::shared_mutex /
                     std::condition_variable outside src/common/ and
                     src/check/. Everything else must use the
                     capability-annotated wrappers in src/common/mutex.h so
                     lock-order checking, clang thread-safety analysis and
                     the wm::sched model checker see every acquisition.
                     (src/check/ implements the model checker itself; its
                     internals must use raw primitives, since going through
                     the wrappers would recurse into its own hooks.)
  raw-thread      -- no raw std::thread / std::jthread / std::this_thread
                     outside src/common/ and src/check/. Spawn through
                     wm::common::Thread (common/thread.h) so threads become
                     controllable schedule points under wm::sched model
                     runs; use Thread::yield/sleepFor/hardwareConcurrency
                     for the std::this_thread equivalents.
  include-cpp     -- no #include of a .cpp file.
  pragma-once     -- every header starts its preprocessor life with
                     #pragma once.
  using-namespace -- no using-namespace directives at namespace scope in
                     headers.
  todo-tag        -- TODO/FIXME comments must carry an issue tag:
                     TODO(#123) or TODO(issue-...).
  diag-doc        -- every "WM####" diagnostic code literal emitted anywhere
                     under src/ must be documented in the code table of
                     docs/CONFIGURATION.md (codes are a stable, append-only
                     vocabulary).
  diag-unique     -- every WM#### code is owned by exactly one source file:
                     the same code emitted from two different files is a
                     collision. WM0404/WM0405 are allowlisted — they are the
                     shared model-plugin validator pair emitted by every
                     operator plugin's config validation.
  diag-corpus     -- every emitted WM#### code must be exercised by at least
                     one golden bad-config corpus file (a
                     `# wm-check-expect:` header in tests/data/bad_*.cfg or
                     bad_*.scn), so no diagnostic can rot untested. WM0001
                     (unreadable config file) is allowlisted: an I/O failure
                     cannot be a checked-in corpus file.

Usage:
  tools/lint.py [--root DIR]     lint the repository (exit 1 on findings)
  tools/lint.py --self-test      run the built-in rule tests
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path

HEADER_SUFFIXES = {".h", ".hpp"}
SOURCE_SUFFIXES = {".h", ".hpp", ".cpp", ".cc"}
SCAN_DIRS = ("src", "tests", "bench", "examples", "tools")
SKIP_DIR_PARTS = {"CMakeFiles"}

RAW_LOCK_RE = re.compile(
    r"\bstd::(mutex|timed_mutex|recursive_mutex|shared_mutex|shared_timed_mutex|"
    r"lock_guard|unique_lock|shared_lock|scoped_lock|condition_variable(_any)?)\b"
)
RAW_THREAD_RE = re.compile(r"\bstd::(thread|jthread|this_thread)\b")
INCLUDE_CPP_RE = re.compile(r'^\s*#\s*include\s+["<][^">]+\.(cpp|cc)[">]')
PRAGMA_ONCE_RE = re.compile(r"^\s*#\s*pragma\s+once\b")
PREPROC_RE = re.compile(r"^\s*#")
USING_NAMESPACE_RE = re.compile(r"^\s*using\s+namespace\b")
TODO_RE = re.compile(r"\b(TODO|FIXME)\b")
TODO_TAGGED_RE = re.compile(r"\b(?:TODO|FIXME)\s*\(\s*(?:#\d+|issue-[\w-]+)\s*\)")

LINE_COMMENT_RE = re.compile(r"//.*$")
STRING_RE = re.compile(r'"(?:[^"\\]|\\.)*"')

# diag-*: quoted WM#### literals (the form the DiagnosticSink emitters take)
# anywhere under src/ must appear in the documentation table, belong to
# exactly one owning source file, and be exercised by the golden corpus.
DIAG_CODE_RE = re.compile(r'"(WM\d{4})"')
DIAG_SCAN_PREFIXES = ("src/",)
DIAG_DOC = "docs/CONFIGURATION.md"
DIAG_CORPUS_GLOBS = ("tests/data/bad_*.cfg", "tests/data/bad_*.scn")
DIAG_EXPECT_MARKER = "# wm-check-expect:"
# The model-plugin validators share one code pair on purpose: every operator
# plugin emits WM0404 (unknown config key) / WM0405 (invalid value).
DIAG_SHARED_CODES = {"WM0404", "WM0405"}
# WM0001 = config file unreadable; an I/O error cannot be a corpus file.
DIAG_NO_CORPUS_CODES = {"WM0001"}


def strip_comments_and_strings(line: str, in_block_comment: bool) -> tuple[str, bool]:
    """Removes string literals, // comments and /* */ comments from one line.

    Returns the stripped code and whether a block comment continues past the
    end of the line. Good enough for the regex rules here; not a C++ lexer.
    """
    out = []
    i = 0
    n = len(line)
    while i < n:
        if in_block_comment:
            end = line.find("*/", i)
            if end < 0:
                return "".join(out), True
            i = end + 2
            in_block_comment = False
            continue
        ch = line[i]
        nxt = line[i + 1] if i + 1 < n else ""
        if ch == "/" and nxt == "/":
            break
        if ch == "/" and nxt == "*":
            in_block_comment = True
            i += 2
            continue
        if ch == '"':
            match = STRING_RE.match(line, i)
            if match:
                out.append('""')
                i = match.end()
                continue
        if ch == "'":
            # Char literal; skip a possible escape.
            j = i + 1
            if j < n and line[j] == "\\":
                j += 1
            j += 1
            if j < n and line[j] == "'":
                i = j + 1
                continue
        out.append(ch)
        i += 1
    return "".join(out), in_block_comment


class Finding:
    def __init__(self, path: str, line: int, rule: str, message: str):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def lint_file(rel_path: str, text: str) -> list[Finding]:
    findings: list[Finding] = []
    posix_path = rel_path.replace("\\", "/")
    suffix = "." + posix_path.rsplit(".", 1)[-1] if "." in posix_path else ""
    is_header = suffix in HEADER_SUFFIXES
    in_src = posix_path.startswith("src/")
    # src/common/ owns the primitives; src/check/ implements the model
    # checker on top of raw primitives (the wrappers would recurse into the
    # checker's own hooks).
    in_primitive_layer = (posix_path.startswith("src/common/") or
                          posix_path.startswith("src/check/"))

    lines = text.splitlines()

    # pragma-once: the first preprocessor directive of a header must be
    # #pragma once (include guards and late pragmas both fail).
    if is_header:
        ok = False
        for line in lines:
            if PREPROC_RE.match(line):
                ok = bool(PRAGMA_ONCE_RE.match(line))
                break
        if not ok:
            findings.append(Finding(rel_path, 1, "pragma-once",
                                    "header must start with '#pragma once'"))

    in_block = False
    for lineno, line in enumerate(lines, start=1):
        # TODO tagging is checked on the raw line: TODOs live in comments.
        todo = TODO_RE.search(line)
        if todo and not TODO_TAGGED_RE.search(line):
            findings.append(Finding(
                rel_path, lineno, "todo-tag",
                f"{todo.group(1)} must reference an issue, e.g. TODO(#42)"))

        code, in_block = strip_comments_and_strings(line, in_block)
        if not code.strip():
            continue

        # The include path is a string literal, so match the raw line — the
        # stripped code gates on the directive being real (not commented out).
        if code.lstrip().startswith("#") and INCLUDE_CPP_RE.match(line):
            findings.append(Finding(rel_path, lineno, "include-cpp",
                                    "do not #include implementation files"))

        if is_header and USING_NAMESPACE_RE.match(code):
            findings.append(Finding(
                rel_path, lineno, "using-namespace",
                "no 'using namespace' in headers; qualify or alias instead"))

        if in_src and not in_primitive_layer:
            match = RAW_LOCK_RE.search(code)
            if match:
                findings.append(Finding(
                    rel_path, lineno, "raw-lock",
                    f"raw {match.group(0)} outside src/common/; use "
                    "wm::common::Mutex/MutexLock (common/mutex.h)"))
            match = RAW_THREAD_RE.search(code)
            if match:
                findings.append(Finding(
                    rel_path, lineno, "raw-thread",
                    f"raw {match.group(0)} outside src/common/; spawn through "
                    "wm::common::Thread (common/thread.h) so wm::sched can "
                    "schedule it"))

    return findings


def collect_diag_codes(rel_path: str,
                       text: str) -> dict[str, list[tuple[str, int]]]:
    """Maps each WM#### code literal in `text` to all its (path, line) sites."""
    sites: dict[str, list[tuple[str, int]]] = {}
    if not rel_path.replace("\\", "/").startswith(DIAG_SCAN_PREFIXES):
        return sites
    for lineno, line in enumerate(text.splitlines(), start=1):
        for match in DIAG_CODE_RE.finditer(line):
            sites.setdefault(match.group(1), []).append((rel_path, lineno))
    return sites


def diag_doc_findings(code_sites: dict[str, list[tuple[str, int]]],
                      doc_text: str) -> list[Finding]:
    """diag-doc rule: every emitted code must appear in the doc table."""
    documented = set(re.findall(r"WM\d{4}", doc_text))
    findings = []
    for code in sorted(code_sites):
        if code not in documented:
            path, line = code_sites[code][0]
            findings.append(Finding(
                path, line, "diag-doc",
                f"diagnostic code {code} is emitted but missing from the "
                f"code table in {DIAG_DOC}"))
    return findings


def diag_unique_findings(
        code_sites: dict[str, list[tuple[str, int]]]) -> list[Finding]:
    """diag-unique rule: one owning source file per code.

    Re-emitting a code within its owning file is fine (many diagnostics have
    several emission points); the same code appearing in a second file means
    two subsystems claim the same slot of the append-only vocabulary.
    """
    findings = []
    for code in sorted(code_sites):
        if code in DIAG_SHARED_CODES:
            continue
        files = sorted({path for path, _ in code_sites[code]})
        if len(files) > 1:
            path, line = code_sites[code][0]
            findings.append(Finding(
                path, line, "diag-unique",
                f"diagnostic code {code} is emitted from multiple files "
                f"({', '.join(files)}); codes are owned by one file"))
    return findings


def diag_corpus_findings(code_sites: dict[str, list[tuple[str, int]]],
                         corpus_codes: set[str]) -> list[Finding]:
    """diag-corpus rule: every emitted code has a golden-corpus expectation."""
    findings = []
    for code in sorted(code_sites):
        if code in DIAG_NO_CORPUS_CODES:
            continue
        if code not in corpus_codes:
            path, line = code_sites[code][0]
            findings.append(Finding(
                path, line, "diag-corpus",
                f"diagnostic code {code} is emitted but no tests/data/bad_* "
                f"corpus file expects it ('{DIAG_EXPECT_MARKER} ...' header)"))
    return findings


def collect_corpus_codes(root: Path) -> set[str]:
    """All WM#### codes named by `# wm-check-expect:` corpus headers."""
    codes: set[str] = set()
    for pattern in DIAG_CORPUS_GLOBS:
        for path in sorted(root.glob(pattern)):
            try:
                first = path.read_text(encoding="utf-8",
                                       errors="replace").splitlines()
            except OSError:
                continue
            if first and first[0].startswith(DIAG_EXPECT_MARKER):
                codes.update(re.findall(
                    r"WM\d{4}", first[0][len(DIAG_EXPECT_MARKER):]))
    return codes


def iter_files(root: Path):
    for top in SCAN_DIRS:
        base = root / top
        if not base.is_dir():
            continue
        for path in sorted(base.rglob("*")):
            if not path.is_file() or path.suffix not in SOURCE_SUFFIXES:
                continue
            parts = set(path.parts)
            if parts & SKIP_DIR_PARTS:
                continue
            if any(part.startswith("build") for part in path.parts):
                continue
            yield path


def lint_tree(root: Path) -> list[Finding]:
    findings: list[Finding] = []
    code_sites: dict[str, list[tuple[str, int]]] = {}
    for path in iter_files(root):
        rel = path.relative_to(root).as_posix()
        try:
            text = path.read_text(encoding="utf-8", errors="replace")
        except OSError as err:
            findings.append(Finding(rel, 0, "io", f"unreadable: {err}"))
            continue
        findings.extend(lint_file(rel, text))
        for code, sites in collect_diag_codes(rel, text).items():
            code_sites.setdefault(code, []).extend(sites)

    doc_path = root / DIAG_DOC
    doc_text = ""
    if doc_path.is_file():
        doc_text = doc_path.read_text(encoding="utf-8", errors="replace")
    findings.extend(diag_doc_findings(code_sites, doc_text))
    findings.extend(diag_unique_findings(code_sites))
    findings.extend(diag_corpus_findings(code_sites, collect_corpus_codes(root)))
    return findings


def self_test() -> int:
    def rules_of(rel_path, text):
        return sorted({f.rule for f in lint_file(rel_path, text)})

    cases = [
        # (name, path, content, expected rules)
        ("raw mutex in src", "src/core/x.cpp",
         "#include <mutex>\nstd::mutex m;\n", ["raw-lock"]),
        ("raw lock_guard in src", "src/core/x.cpp",
         "void f() { std::lock_guard lock(m); }\n", ["raw-lock"]),
        ("raw mutex allowed in common", "src/common/mutex.h",
         "#pragma once\nstd::mutex m;\n", []),
        ("raw mutex allowed in check", "src/check/scheduler.cpp",
         "std::unique_lock<std::mutex> lk(mu_);\n", []),
        ("raw mutex allowed in tests", "tests/t.cpp",
         "std::mutex m;\n", []),
        ("raw thread in src", "src/core/x.cpp",
         "#include <thread>\nstd::thread t([] {});\n", ["raw-thread"]),
        ("raw jthread in src", "src/mqtt/x.cpp",
         "std::jthread t([] {});\n", ["raw-thread"]),
        ("this_thread sleep in src", "src/rest/x.cpp",
         "std::this_thread::sleep_for(d);\n", ["raw-thread"]),
        ("hardware_concurrency via std::thread in src", "src/pusher/x.cpp",
         "auto n = std::thread::hardware_concurrency();\n", ["raw-thread"]),
        ("raw thread allowed in common", "src/common/thread.h",
         "#pragma once\nstd::thread thread_;\n", []),
        ("raw thread allowed in check", "src/check/scheduler.cpp",
         "std::thread real([] {});\n", []),
        ("raw thread allowed in tests", "tests/t.cpp",
         "std::thread t([] {});\n", []),
        ("raw thread in comment ignored", "src/core/x.cpp",
         "// std::thread is banned here\nint x;\n", []),
        ("wrapped thread ok in src", "src/core/x.cpp",
         "common::Thread t([] {}, \"x\");\n", []),
        ("raw mutex in comment ignored", "src/core/x.cpp",
         "// std::mutex is banned here\nint x;\n", []),
        ("raw mutex in string ignored", "src/core/x.cpp",
         'const char* s = "std::mutex";\n', []),
        ("include cpp", "src/core/x.cpp",
         '#include "other.cpp"\n', ["include-cpp"]),
        ("include cpp angle", "tests/t.cpp",
         "#include <impl.cc>\n", ["include-cpp"]),
        ("header missing pragma once", "src/core/x.h",
         "#ifndef X_H\n#define X_H\n#endif\n", ["pragma-once"]),
        ("header with pragma once", "src/core/x.h",
         "// comment first is fine\n#pragma once\nint x;\n", []),
        ("cpp needs no pragma once", "src/core/x.cpp",
         "int x;\n", []),
        ("using namespace in header", "src/core/x.h",
         "#pragma once\nusing namespace std;\n", ["using-namespace"]),
        ("using namespace ok in cpp", "src/core/x.cpp",
         "using namespace std::chrono_literals;\n", []),
        ("using declaration ok in header", "src/core/x.h",
         "#pragma once\nusing wm::common::Mutex;\n", []),
        ("untagged TODO", "src/core/x.cpp",
         "// TODO: fix this\n", ["todo-tag"]),
        ("untagged FIXME in header", "src/core/x.h",
         "#pragma once\n/* FIXME later */\n", ["todo-tag"]),
        ("tagged TODO ok", "src/core/x.cpp",
         "// TODO(#42): fix this\n", []),
        ("tagged issue TODO ok", "src/core/x.cpp",
         "// TODO(issue-lock-order): revisit\n", []),
        ("block comment spans lines", "src/core/x.cpp",
         "/*\nstd::mutex m;\n*/\nint x;\n", []),
    ]

    failures = 0
    for name, path, text, expected in cases:
        got = rules_of(path, text)
        if got != sorted(expected):
            print(f"SELF-TEST FAIL: {name}: expected {expected}, got {got}")
            failures += 1

    # diag-doc is a tree-level rule; exercise the helper pair directly.
    diag_cases = [
        ("documented code ok",
         'sink.error("WM0103", "msg");\n', "| WM0103 | error | ... |\n", []),
        ("undocumented code flagged",
         'sink.error("WM9999", "msg");\n', "| WM0103 | error | ... |\n",
         ["diag-doc"]),
        ("codes outside scanned trees ignored",
         "", "", []),
        ("unquoted mention not collected",
         "// WM0777 discussed in a comment\n", "", []),
    ]
    for name, src, doc, expected in diag_cases:
        sites = collect_diag_codes("src/analysis/analyzer.cpp", src)
        if name == "codes outside scanned trees ignored":
            sites = collect_diag_codes("tests/t.cpp",
                                       'sink.error("WM9999", "msg");\n')
        got = sorted({f.rule for f in diag_doc_findings(sites, doc)})
        if got != sorted(expected):
            print(f"SELF-TEST FAIL: {name}: expected {expected}, got {got}")
            failures += 1

    def merged_sites(*file_texts):
        merged: dict[str, list[tuple[str, int]]] = {}
        for rel, text in file_texts:
            for code, sites in collect_diag_codes(rel, text).items():
                merged.setdefault(code, []).extend(sites)
        return merged

    # diag-unique: cross-file collisions flagged, intra-file repeats and the
    # shared validator pair allowed.
    unique_cases = [
        ("cross-file collision flagged",
         [("src/analysis/a.cpp", 'sink.error("WM0150", "x");\n'),
          ("src/scenario/b.cpp", 'sink.error("WM0150", "y");\n')],
         ["diag-unique"]),
        ("same-file repeat allowed",
         [("src/analysis/a.cpp",
           'sink.error("WM0150", "x");\nsink.error("WM0150", "y");\n')],
         []),
        ("shared validator pair allowlisted",
         [("src/plugins/a_operator.cpp", 'sink.error("WM0404", "x");\n'),
          ("src/plugins/b_operator.cpp", 'sink.error("WM0404", "y");\n')],
         []),
    ]
    for name, files, expected in unique_cases:
        got = sorted({f.rule for f in diag_unique_findings(merged_sites(*files))})
        if got != sorted(expected):
            print(f"SELF-TEST FAIL: {name}: expected {expected}, got {got}")
            failures += 1

    # diag-corpus: emitted codes need a wm-check-expect entry; WM0001 exempt.
    corpus_cases = [
        ("covered code ok",
         'sink.error("WM0150", "x");\n', {"WM0150"}, []),
        ("uncovered code flagged",
         'sink.error("WM0150", "x");\n', set(), ["diag-corpus"]),
        ("unreadable-file code exempt",
         'sink.error("WM0001", "x");\n', set(), []),
    ]
    for name, src, corpus, expected in corpus_cases:
        sites = collect_diag_codes("src/analysis/analyzer.cpp", src)
        got = sorted({f.rule for f in diag_corpus_findings(sites, corpus)})
        if got != sorted(expected):
            print(f"SELF-TEST FAIL: {name}: expected {expected}, got {got}")
            failures += 1

    total = len(cases) + len(diag_cases) + len(unique_cases) + len(corpus_cases)
    if failures:
        print(f"self-test: {failures}/{total} cases failed")
        return 1
    print(f"self-test: all {total} cases passed")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--root", default=None,
                        help="repository root (default: parent of tools/)")
    parser.add_argument("--self-test", action="store_true",
                        help="run the built-in rule tests and exit")
    args = parser.parse_args()

    if args.self_test:
        return self_test()

    root = Path(args.root) if args.root else Path(__file__).resolve().parent.parent
    if not root.is_dir():
        print(f"lint: error: root is not a directory: {root}", file=sys.stderr)
        return 2
    findings = lint_tree(root)
    for finding in findings:
        print(finding)
    if findings:
        print(f"lint: {len(findings)} finding(s)")
        return 1
    print("lint: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
